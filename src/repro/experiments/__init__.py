"""Declarative, parallel, cached experiment runs.

Every number this repository reports flows through simulated runs over
(algorithm, layout, n, M) and (n, block, P) grids.  This package is
the substrate that executes those grids as *experiments* rather than
ad-hoc for-loops:

``repro.experiments.spec``
    :class:`ExperimentSpec` — a declarative grid, expanded into frozen
    :class:`SpecPoint` records with deterministically derived
    per-point seeds.

``repro.experiments.cache``
    :class:`ResultCache` — a content-addressed on-disk store keyed on
    (point, code version), so re-runs and overlapping benches serve
    measurements from disk instead of re-simulating.

``repro.experiments.engine``
    :class:`ExperimentEngine` / :func:`run_experiment` — fan cache
    misses out over a process pool, collect unified
    :class:`~repro.results.Measurement` values in spec order, and emit
    JSON artifacts with per-point wall time.

See ``docs/EXPERIMENTS_API.md`` for the full guide and migration notes
from the old ``measure``/``sweep_n`` call shapes.
"""

from repro.experiments.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    code_version,
    default_cache_dir,
)
from repro.experiments.engine import (
    ExperimentEngine,
    ExperimentResult,
    PointResult,
    execute_point,
    run_experiment,
)
from repro.experiments.spec import ExperimentSpec, SpecPoint, derive_seed

__all__ = [
    "ExperimentSpec",
    "SpecPoint",
    "derive_seed",
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "CACHE_DIR_ENV",
    "ExperimentEngine",
    "ExperimentResult",
    "PointResult",
    "execute_point",
    "run_experiment",
]
