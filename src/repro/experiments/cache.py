"""Content-addressed on-disk cache for experiment results.

A cache entry is one JSON file per :class:`~repro.experiments.spec.SpecPoint`,
addressed by ``sha256(point + code version)``:

* the **point** part means any change to the configuration — n, M,
  seed, params, verify flag — is a different key (spec-change
  invalidation is automatic);
* the **code version** part is a digest over every ``.py`` source file
  of the ``repro`` package, so editing any simulator/algorithm code
  invalidates the whole cache rather than serving stale counters.

Layout on disk::

    <cache-dir>/<key[:2]>/<key>.json

Each file holds ``{"key", "code_version", "point", "measurement",
"wall_time", "created", "digest"}``.  Writes are atomic (temp file +
rename), so a concurrent reader never sees a torn entry.  ``digest`` is
a SHA-256 over the canonical JSON of the rest of the entry: a reader
recomputes it on every ``get``, so bit-level corruption (truncated
file, flipped byte, hand-edited counters) is *detected* rather than
served — the entry is logged, counted under the ``corrupt`` metric
label, and treated as a miss, which means the engine recomputes the
point and the next ``put`` overwrites the damaged file.

The default location is ``$REPRO_CACHE_DIR`` or ``.repro-cache/`` next
to the repository root.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from functools import lru_cache

from repro.experiments.spec import SpecPoint
from repro.observability.metrics import METRICS
from repro.util.serialization import atomic_write_json

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

logger = logging.getLogger("repro.experiments.cache")


def entry_digest(entry: dict) -> str:
    """SHA-256 over the canonical JSON of an entry (sans its digest)."""
    body = {k: v for k, v in entry.items() if k != "digest"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the ``repro`` package sources (plus its version string).

    Computed once per process; any change to any ``.py`` file under
    the installed package changes the digest and thereby every cache
    key.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            path = os.path.join(dirpath, fn)
            h.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                h.update(fh.read())
    h.update(repro.__version__.encode("utf-8"))
    return h.hexdigest()[:16]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` at the repo root."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.normpath(os.path.join(here, "..", "..", ".."))
    if os.path.isdir(repo):
        return os.path.join(repo, ".repro-cache")
    return os.path.join(os.getcwd(), ".repro-cache")


class ResultCache:
    """Persistent point → measurement store with hit/miss accounting.

    Parameters
    ----------
    directory:
        Root of the cache tree (created lazily on first ``put``).
    version:
        Code-version token mixed into every key; defaults to
        :func:`code_version`.  Tests inject fixed tokens to exercise
        invalidation without editing source files.
    """

    def __init__(self, directory: str | os.PathLike, *, version: str | None = None):
        self.directory = str(directory)
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    @classmethod
    def default(cls) -> "ResultCache":
        """The cache at :func:`default_cache_dir`."""
        return cls(default_cache_dir())

    def key_for(self, point: SpecPoint) -> str:
        """Content-address of a point under the current code version."""
        blob = json.dumps(
            {"version": self.version, "point": point.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, point: SpecPoint) -> str:
        """On-disk path the point's entry lives at."""
        key = self.key_for(point)
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def get(self, point: SpecPoint) -> dict | None:
        """Load the entry for ``point``; ``None`` (a miss) if absent/corrupt.

        Every hit is digest-verified: an entry whose stored ``digest``
        is missing or does not match its recomputed content hash is
        corrupt (truncation, bit flip, manual edit) and is demoted to a
        logged miss — the caller recomputes and the write-back
        overwrites the damaged file.  Corruption never crashes a run.
        """
        path = self.path_for(point)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict) or "measurement" not in entry:
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.misses += 1
            METRICS.counter("repro_cache_lookups_total", result="miss").inc()
            return None
        except (OSError, ValueError):
            self.misses += 1
            METRICS.counter("repro_cache_lookups_total", result="corrupt").inc()
            logger.warning(
                "unreadable cache entry at %s; treating as a miss", path
            )
            return None
        if entry.get("digest") != entry_digest(entry):
            self.misses += 1
            METRICS.counter("repro_cache_lookups_total", result="corrupt").inc()
            logger.warning(
                "cache entry digest mismatch at %s (corrupt or tampered); "
                "treating as a miss",
                path,
            )
            return None
        self.hits += 1
        METRICS.counter("repro_cache_lookups_total", result="hit").inc()
        return entry

    def put(
        self,
        point: SpecPoint,
        measurement,
        wall_time: float,
        *,
        extra: dict | None = None,
    ) -> str:
        """Atomically store a computed measurement; returns the path.

        ``measurement`` may be a :class:`~repro.results.Measurement`
        (serialized via ``to_dict``) or an already-serialized mapping.
        ``extra`` is an optional JSON-ready provenance dict stored
        verbatim under the entry's ``"extra"`` key (and covered by its
        digest) — the serving cluster's shared result store records the
        producing shard there so cross-shard hits are attributable.
        """
        path = self.path_for(point)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        serialized = (
            measurement.to_dict()
            if hasattr(measurement, "to_dict")
            else dict(measurement)
        )
        entry = {
            "key": self.key_for(point),
            "code_version": self.version,
            "point": point.to_dict(),
            "measurement": serialized,
            "wall_time": float(wall_time),
            "created": time.time(),
        }
        if extra:
            entry["extra"] = dict(extra)
        entry["digest"] = entry_digest(entry)
        return atomic_write_json(path, entry, sort_keys=True)

    def __len__(self) -> int:
        """Number of entries currently on disk (all versions)."""
        count = 0
        if not os.path.isdir(self.directory):
            return 0
        for dirpath, _dirs, files in os.walk(self.directory):
            count += sum(1 for f in files if f.endswith(".json"))
        return count


__all__ = [
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "entry_digest",
    "CACHE_DIR_ENV",
]
