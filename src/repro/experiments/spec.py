"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a grid of simulation configurations —
algorithm × layout × n × M (plus per-parameter grids) for sequential
runs, (n, block, P) configs for parallel PxPOTRF runs — expanded once,
at construction, into an ordered tuple of :class:`SpecPoint` records.
The engine (:mod:`repro.experiments.engine`) executes points; the cache
(:mod:`repro.experiments.cache`) keys on them.

Seed plumbing: a spec carries **one** root seed, and every point gets
its own seed derived deterministically from the root plus the point's
identity (:func:`derive_seed`).  This decorrelates sweep points — the
old behaviour of every ``measure`` call defaulting to ``seed=0`` made
all points share one input matrix — while staying reproducible: the
same spec always yields the same per-point seeds, independent of
execution order or process placement.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.abft import AbftConfig
from repro.faults.plan import FaultPlan
from repro.results import freeze_params

SEQUENTIAL = "sequential"
PARALLEL = "parallel"


def _freeze_faults(faults) -> tuple:
    """Canonicalize a fault plan (or dict / frozen tuple / None) for a point."""
    if faults is None:
        return ()
    if isinstance(faults, FaultPlan):
        plan = faults
    elif isinstance(faults, tuple):
        plan = FaultPlan.from_frozen(faults)
    else:
        plan = FaultPlan.from_dict(faults)
    return () if plan.is_empty() else plan.freeze()


def _freeze_abft(abft) -> tuple:
    """Canonicalize an ABFT config (config/dict/bool/frozen/None) for a point."""
    if isinstance(abft, tuple):
        return () if not abft else AbftConfig.from_frozen(abft).freeze()
    cfg = AbftConfig.coerce(abft)
    return () if cfg is None else cfg.freeze()


def derive_seed(root: int, *parts: object) -> int:
    """Deterministically derive a 32-bit seed from a root and identity parts.

    Stable across processes and Python versions (SHA-256, not
    ``hash()``), so a spec's per-point seeds never depend on where or
    when the point runs.
    """
    text = ":".join([str(int(root)), *(repr(p) for p in parts)])
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:4], "big")


@dataclass(frozen=True)
class SpecPoint:
    """One fully-resolved configuration of an experiment grid.

    ``kind`` selects the execution path: ``"sequential"`` points run
    :func:`repro.analysis.sweeps.measure` (and use ``M`` + ``params``),
    ``"parallel"`` points run
    :func:`repro.analysis.sweeps.measure_parallel` (and use ``P`` +
    ``block``).  Points are frozen, hashable and picklable — they cross
    process boundaries and are the unit the result cache keys on.
    """

    kind: str
    algorithm: str
    layout: str
    n: int
    seed: int
    verify: bool = True
    M: int | None = None
    P: int | None = None
    block: int | None = None
    params: tuple = ()
    #: Record a phase-span profile alongside the counters.  Part of
    #: the cache key: an observed and an unobserved run store
    #: different payloads (the former carries the span tree).
    observe: bool = False
    #: Frozen :class:`~repro.faults.FaultPlan` (``FaultPlan.freeze()``),
    #: or ``()`` for a failure-free point.  Part of the cache key:
    #: a faulty run and a clean run of the same configuration report
    #: different counters, so they must never share an entry.
    faults: tuple = ()
    #: Frozen :class:`~repro.abft.AbftConfig` (``AbftConfig.freeze()``),
    #: or ``()`` for an unprotected point.  Part of the cache key — a
    #: protected run carries checksum overhead in its counters plus the
    #: ``abft`` record — but *omitted* from the canonical dict when
    #: off, so every pre-ABFT cache entry keeps its key.
    abft: tuple = ()

    @property
    def fault_plan(self) -> "FaultPlan | None":
        """The point's fault plan as a live object (``None`` if clean)."""
        return FaultPlan.from_frozen(self.faults) if self.faults else None

    @property
    def abft_config(self) -> "AbftConfig | None":
        """The point's ABFT config as a live object (``None`` if off)."""
        return AbftConfig.from_frozen(self.abft) if self.abft else None

    def to_dict(self) -> dict:
        """JSON-ready canonical dict (the cache-key input)."""
        d = {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "layout": self.layout,
            "n": int(self.n),
            "seed": int(self.seed),
            "verify": bool(self.verify),
            "M": None if self.M is None else int(self.M),
            "P": None if self.P is None else int(self.P),
            "block": None if self.block is None else int(self.block),
            "params": [[k, v] for k, v in self.params],
            "observe": bool(self.observe),
            "faults": None if not self.faults else self.fault_plan.to_dict(),
        }
        if self.abft:
            d["abft"] = self.abft_config.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SpecPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        return cls(
            kind=d["kind"],
            algorithm=d["algorithm"],
            layout=d["layout"],
            n=int(d["n"]),
            seed=int(d["seed"]),
            verify=bool(d.get("verify", True)),
            M=None if d.get("M") is None else int(d["M"]),
            P=None if d.get("P") is None else int(d["P"]),
            block=None if d.get("block") is None else int(d["block"]),
            params=tuple((str(k), v) for k, v in (d.get("params") or ())),
            observe=bool(d.get("observe", False)),
            faults=_freeze_faults(d.get("faults")),
            abft=_freeze_abft(d.get("abft")),
        )

    def key(self) -> str:
        """Content hash of the point (code version is added by the cache)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        chaos = " +faults" if self.faults else ""
        chaos += " +abft" if self.abft else ""
        if self.kind == PARALLEL:
            return (
                f"{self.algorithm} n={self.n} b={self.block} P={self.P}{chaos}"
            )
        return f"{self.algorithm}/{self.layout} n={self.n} M={self.M}{chaos}"


def _point_seed(root: int, explicit: int | None, *identity: object) -> int:
    return derive_seed(root, *identity) if explicit is None else int(explicit)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, ordered collection of sweep points.

    Construct via the classmethods — :meth:`sequential` for full
    grids, :meth:`from_cases` for explicit case lists (the Table 1
    census shape), :meth:`parallel` for PxPOTRF configs — rather than
    assembling ``points`` by hand.
    """

    name: str
    points: "tuple[SpecPoint, ...]"
    seed: int = 0

    @classmethod
    def sequential(
        cls,
        name: str,
        *,
        algorithms: Sequence[str],
        ns: Sequence[int],
        Ms: Sequence[int],
        layouts: Sequence[str] = ("column-major",),
        params: Mapping[str, Any] | None = None,
        param_grid: Mapping[str, Sequence[Any]] | None = None,
        seed: int = 0,
        verify: bool = True,
        observe: bool = False,
        faults: "FaultPlan | None" = None,
        abft=None,
    ) -> "ExperimentSpec":
        """Cross an algorithm × layout × n × M (× param) grid.

        ``params`` are fixed keywords applied to every point;
        ``param_grid`` maps parameter names to value sequences and is
        expanded as an extra cross-product dimension (e.g.
        ``{"block": [4, 16, 64]}`` for a block-size sweep).
        ``observe=True`` records a phase-span profile for every point
        (stored in the artifact next to the counters).  ``faults``
        applies one deterministic fault plan to every point (part of
        each point's cache key).  ``abft`` (config/dict/``True``) runs
        every point checksum-protected (also part of the cache key).
        """
        base = dict(params or {})
        grid_names = sorted(param_grid or {})
        grid_values = [list((param_grid or {})[k]) for k in grid_names]
        frozen_faults = _freeze_faults(faults)
        frozen_abft = _freeze_abft(abft)
        pts = []
        for algo, layout, n, M in itertools.product(algorithms, layouts, ns, Ms):
            for combo in itertools.product(*grid_values) if grid_names else [()]:
                p = dict(base)
                p.update(zip(grid_names, combo))
                frozen = freeze_params(p)
                pts.append(
                    SpecPoint(
                        kind=SEQUENTIAL,
                        algorithm=algo,
                        layout=layout,
                        n=int(n),
                        M=int(M),
                        params=frozen,
                        verify=verify,
                        observe=observe,
                        faults=frozen_faults,
                        abft=frozen_abft,
                        seed=derive_seed(seed, algo, layout, n, M, frozen),
                    )
                )
        return cls(name=name, points=tuple(pts), seed=seed)

    @classmethod
    def from_cases(
        cls,
        name: str,
        cases: Iterable[Mapping[str, Any]],
        *,
        seed: int = 0,
        verify: bool = True,
        observe: bool = False,
        faults: "FaultPlan | None" = None,
        abft=None,
    ) -> "ExperimentSpec":
        """Build a spec from explicit case dicts (census-style lists).

        Each case needs ``algorithm``, ``n`` and either ``M`` (+
        optional ``layout``/``params``) for a sequential point or
        ``P`` + ``block`` for a parallel one.  A case may pin its own
        ``seed``, ``observe``, ``faults`` (a
        :class:`~repro.faults.FaultPlan` or its dict form) or ``abft``;
        otherwise the spec-wide values apply.
        """
        spec_faults = _freeze_faults(faults)
        spec_abft = _freeze_abft(abft)
        pts = []
        for case in cases:
            algo = case["algorithm"]
            n = int(case["n"])
            explicit = case.get("seed")
            vfy = bool(case.get("verify", verify))
            obs = bool(case.get("observe", observe))
            flt = (
                _freeze_faults(case["faults"])
                if "faults" in case
                else spec_faults
            )
            abf = (
                _freeze_abft(case["abft"]) if "abft" in case else spec_abft
            )
            if case.get("P") is not None:
                P, block = int(case["P"]), int(case["block"])
                pts.append(
                    SpecPoint(
                        kind=PARALLEL,
                        algorithm=algo,
                        layout=case.get("layout", "block-cyclic"),
                        n=n,
                        P=P,
                        block=block,
                        verify=vfy,
                        observe=obs,
                        faults=flt,
                        abft=abf,
                        seed=_point_seed(seed, explicit, algo, n, block, P),
                    )
                )
            else:
                layout = case.get("layout", "column-major")
                M = int(case["M"])
                frozen = freeze_params(case.get("params"))
                pts.append(
                    SpecPoint(
                        kind=SEQUENTIAL,
                        algorithm=algo,
                        layout=layout,
                        n=n,
                        M=M,
                        params=frozen,
                        verify=vfy,
                        observe=obs,
                        faults=flt,
                        abft=abf,
                        seed=_point_seed(seed, explicit, algo, layout, n, M, frozen),
                    )
                )
        return cls(name=name, points=tuple(pts), seed=seed)

    @classmethod
    def parallel(
        cls,
        name: str,
        configs: Iterable[Sequence[int]],
        *,
        seed: int = 0,
        verify: bool = True,
        observe: bool = False,
        faults: "FaultPlan | None" = None,
        abft=None,
    ) -> "ExperimentSpec":
        """Spec over PxPOTRF configurations ``(n, block, P)``."""
        cases = [
            {"algorithm": "pxpotrf", "n": n, "block": b, "P": P}
            for n, b, P in configs
        ]
        return cls.from_cases(
            name, cases, seed=seed, verify=verify, observe=observe,
            faults=faults, abft=abft,
        )

    def to_dict(self) -> dict:
        """JSON-ready dict (used by the engine's artifact output)."""
        return {
            "name": self.name,
            "seed": int(self.seed),
            "points": [p.to_dict() for p in self.points],
        }

    def __len__(self) -> int:
        """Number of sweep points."""
        return len(self.points)


__all__ = [
    "ExperimentSpec",
    "SpecPoint",
    "derive_seed",
    "SEQUENTIAL",
    "PARALLEL",
]
