"""The parallel, cached experiment engine.

Executes the points of an :class:`~repro.experiments.spec.ExperimentSpec`
and returns an :class:`ExperimentResult` with one
:class:`~repro.results.Measurement` per point, in spec order, plus
per-point wall time and cache provenance.

Execution model:

* every point is first looked up in the :class:`ResultCache`; hits are
  served without simulating;
* misses run through :func:`repro.analysis.sweeps.measure` (sequential
  points) or :func:`~repro.analysis.sweeps.measure_parallel` (PxPOTRF
  points) — serially for ``jobs=1``, fanned out over a
  ``concurrent.futures.ProcessPoolExecutor`` otherwise;
* computed measurements are written back to the cache, so overlapping
  benches and re-runs converge to pure cache reads.

Because each point's seed is fixed by the spec and the simulators are
deterministic, a ``jobs=N`` run produces measurements identical to a
serial run — the engine asserts nothing about scheduling, only about
configurations.  Points carrying a frozen
:class:`~repro.faults.FaultPlan` run their simulation under that plan
(the plan is part of the point, so the derived schedule is identical
under any job count).

Hardened execution: a point that raises is retried with exponential
backoff (``retries``/``retry_backoff``); a pool that makes no progress
for ``point_timeout`` seconds is declared stalled and its unfinished
points failed; a worker-process crash (``BrokenProcessPool``) demotes
the affected points to an in-process serial retry instead of killing
the run.  With ``salvage=True`` (default) failed points are recorded
as error-carrying :class:`PointResult` rows — the artifact keeps every
completed measurement plus the failure reasons — rather than
discarding a whole sweep over one bad point.
"""

from __future__ import annotations

import os
import re
import sys
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments.cache import ResultCache, code_version
from repro.experiments.spec import PARALLEL, ExperimentSpec, SpecPoint
from repro.observability.metrics import METRICS
from repro.results import Measurement

ProgressFn = Callable[[int, int, "PointResult"], None]


def execute_point(
    point: SpecPoint, guard=None
) -> "tuple[Measurement, float]":
    """Run one spec point from scratch; returns (measurement, seconds).

    This is the process-pool worker: it takes only a picklable
    :class:`SpecPoint` and returns a detached (``run``-free)
    measurement, so results cross process boundaries cleanly.

    ``guard`` (serving layer, in-process only) arms the simulators with
    a live :class:`~repro.serving.budget.BudgetGuard`; the run then
    aborts with :class:`~repro.serving.budget.BudgetExceeded` when the
    job's simulated-cost quota is crossed.
    """
    # Imported here, not at module top: sweeps imports the engine for
    # its thin wrappers, and the lazy import breaks the cycle.
    from repro.analysis.sweeps import measure, measure_parallel

    t0 = time.perf_counter()
    plan = point.fault_plan
    abft = point.abft_config
    if point.kind == PARALLEL:
        m = measure_parallel(
            point.n,
            point.block,
            point.P,
            seed=point.seed,
            verify=point.verify,
            observe=point.observe,
            faults=plan,
            guard=guard,
            abft=abft,
        )
    else:
        kwargs = dict(point.params)
        layout_block = kwargs.pop("layout_block", None)
        m = measure(
            point.algorithm,
            point.n,
            point.M,
            layout=point.layout,
            layout_block=layout_block,
            seed=point.seed,
            verify=point.verify,
            observe=point.observe,
            faults=plan,
            guard=guard,
            abft=abft,
            **kwargs,
        )
    return m.without_run(), time.perf_counter() - t0


@dataclass(frozen=True)
class PointResult:
    """One executed (or cache-served, or failed) spec point.

    A failed-but-salvaged point carries ``measurement=None`` and a
    human-readable ``error``; everything else about the row (point
    identity, wall time) is still recorded so the artifact shows *what*
    failed and *why*, next to the points that succeeded.
    """

    point: SpecPoint
    measurement: "Measurement | None"
    wall_time: float
    cached: bool
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """True when the point produced a measurement."""
        return self.measurement is not None

    def to_dict(self) -> dict:
        """JSON-ready dict for artifact output."""
        return {
            "point": self.point.to_dict(),
            "measurement": (
                None if self.measurement is None else self.measurement.to_dict()
            ),
            "wall_time": float(self.wall_time),
            "cached": bool(self.cached),
            "error": self.error,
        }


@dataclass(frozen=True)
class ExperimentResult:
    """All point results of one spec run, in spec order."""

    spec: ExperimentSpec
    points: "tuple[PointResult, ...]"
    wall_time: float

    @property
    def measurements(self) -> "list[Measurement]":
        """The successful measurements, in spec order (failures skipped)."""
        return [p.measurement for p in self.points if p.measurement is not None]

    @property
    def failures(self) -> "list[PointResult]":
        """The salvaged failed points, in spec order."""
        return [p for p in self.points if p.error is not None]

    @property
    def cache_hits(self) -> int:
        """How many points were served from the cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def cache_misses(self) -> int:
        """How many points were simulated fresh."""
        return sum(1 for p in self.points if not p.cached)

    def to_dict(self) -> dict:
        """JSON-ready dict: spec, code version, per-point results."""
        return {
            "spec": self.spec.to_dict(),
            "code_version": code_version(),
            "wall_time": float(self.wall_time),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failed": len(self.failures),
            "points": [p.to_dict() for p in self.points],
        }

    def save(self, directory: str | None = None) -> str:
        """Write the JSON artifact; returns the path.

        Defaults to ``reports/experiments/<spec-name>.json`` next to
        the text reports.  The write is atomic (temp file +
        ``os.replace``), so a worker killed mid-save never leaves a
        truncated artifact behind.
        """
        from repro.analysis.report import default_reports_dir
        from repro.util.serialization import atomic_write_json

        directory = directory or os.path.join(default_reports_dir(), "experiments")
        os.makedirs(directory, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", self.spec.name) or "experiment"
        path = os.path.join(directory, f"{safe}.json")
        atomic_write_json(path, self.to_dict(), indent=1, sort_keys=True)
        return path


class ExperimentEngine:
    """Runs specs with a shared cache, job count and progress stream.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss points; ``1`` (default) runs
        serially in-process.
    cache:
        ``"default"`` for the shared on-disk cache, ``None`` to
        disable caching, or an explicit :class:`ResultCache`.
    progress:
        Optional callback ``(done, total, point_result)`` invoked as
        each point resolves.
    verbose:
        Emit per-point progress lines and a summary to stderr.
    point_timeout:
        Stall guard for the process pool: if *no* point completes
        within this many seconds, the pool is declared stalled, its
        unfinished points are failed (salvaged or raised per
        ``salvage``), and the run moves on.  ``None`` (default) waits
        indefinitely.
    retries:
        How many times a raising point is re-attempted (after the
        first try) before it counts as failed.
    retry_backoff:
        Base of the exponential retry delay: attempt *k* waits
        ``retry_backoff · 2^(k-1)`` seconds before re-running.
    salvage:
        ``True`` (default) records failed points as error rows in the
        result instead of raising — one bad point no longer discards a
        whole sweep.  ``False`` restores fail-fast.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: "ResultCache | str | None" = "default",
        progress: Optional[ProgressFn] = None,
        verbose: bool = False,
        point_timeout: "float | None" = None,
        retries: int = 2,
        retry_backoff: float = 0.5,
        salvage: bool = True,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError(f"point_timeout must be positive, got {point_timeout}")
        self.jobs = int(jobs)
        if cache == "default":
            cache = ResultCache.default()
        elif isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache: ResultCache | None = cache
        self.progress = progress
        self.verbose = verbose
        self.point_timeout = point_timeout
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.salvage = bool(salvage)
        self.results: "list[ExperimentResult]" = []

    def _notify(self, done: int, total: int, pr: PointResult, name: str) -> None:
        if self.verbose:
            if pr.error is not None:
                tag = f"FAILED: {pr.error}"
            else:
                tag = "cache" if pr.cached else f"{pr.wall_time:.2f}s"
            print(
                f"[engine] {name}: {done}/{total} {pr.point.label()} ({tag})",
                file=sys.stderr,
            )
        if self.progress is not None:
            self.progress(done, total, pr)

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute every point of ``spec`` (cache first, then compute)."""
        t0 = time.perf_counter()
        total = len(spec.points)
        out: "list[PointResult | None]" = [None] * total
        pending: "list[tuple[int, SpecPoint]]" = []
        done = 0
        for i, pt in enumerate(spec.points):
            entry = self.cache.get(pt) if self.cache is not None else None
            if entry is not None:
                try:
                    m = Measurement.from_dict(entry["measurement"])
                except (KeyError, TypeError, ValueError):
                    pending.append((i, pt))
                    continue
                out[i] = PointResult(pt, m, float(entry.get("wall_time", 0.0)), True)
                done += 1
                METRICS.counter("repro_engine_points_total", source="cache").inc()
                self._notify(done, total, out[i], spec.name)
            else:
                pending.append((i, pt))

        def record(i: int, pt: SpecPoint, m: Measurement, dt: float) -> None:
            nonlocal done
            if self.cache is not None:
                self.cache.put(pt, m.to_dict(), dt)
            out[i] = PointResult(pt, m, dt, False)
            done += 1
            METRICS.counter("repro_engine_points_total", source="computed").inc()
            METRICS.histogram("repro_point_wall_seconds", kind=pt.kind).observe(dt)
            self._notify(done, total, out[i], spec.name)

        def fail(i: int, pt: SpecPoint, err: str, dt: float) -> None:
            nonlocal done
            out[i] = PointResult(pt, None, dt, False, error=err)
            done += 1
            METRICS.counter("repro_engine_failures_total", kind=pt.kind).inc()
            self._notify(done, total, out[i], spec.name)

        def run_serial(i: int, pt: SpecPoint) -> None:
            """Execute one point in-process with bounded backoff retries."""
            t0p = time.perf_counter()
            for attempt in range(1, self.retries + 2):
                try:
                    m, dt = execute_point(pt)
                except Exception as exc:  # noqa: BLE001 - salvage boundary
                    if attempt > self.retries:
                        if not self.salvage:
                            raise
                        fail(
                            i,
                            pt,
                            f"{type(exc).__name__}: {exc}",
                            time.perf_counter() - t0p,
                        )
                        return
                    METRICS.counter(
                        "repro_engine_retries_total", kind=pt.kind
                    ).inc()
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                else:
                    record(i, pt, m, dt)
                    return

        if pending and self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            # Points whose worker raised (including a crashed worker
            # process, which surfaces as BrokenProcessPool on every
            # outstanding future) are retried serially in-process after
            # the pool is gone.
            leftovers: "list[tuple[int, SpecPoint]]" = []
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {
                pool.submit(execute_point, pt): (i, pt) for i, pt in pending
            }
            not_done = set(futures)
            stalled = False
            while not_done:
                finished, not_done = wait(
                    not_done,
                    timeout=self.point_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    stalled = True
                    break
                for fut in finished:
                    i, pt = futures[fut]
                    try:
                        m, dt = fut.result()
                    except Exception:  # noqa: BLE001 - retried serially
                        leftovers.append((i, pt))
                    else:
                        record(i, pt, m, dt)
            if stalled:
                # Nothing finished for a whole point_timeout window:
                # give up on the unfinished points without blocking on
                # the (possibly hung) workers.
                for fut in not_done:
                    fut.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                for fut in sorted(not_done, key=lambda f: futures[f][0]):
                    i, pt = futures[fut]
                    METRICS.counter(
                        "repro_engine_timeouts_total", kind=pt.kind
                    ).inc()
                    err = (
                        f"no progress for {self.point_timeout:.1f}s; "
                        "point abandoned as stalled"
                    )
                    if not self.salvage:
                        raise TimeoutError(f"{pt.label()}: {err}")
                    fail(i, pt, err, float(self.point_timeout))
            else:
                pool.shutdown(wait=True)
            for i, pt in sorted(leftovers):
                run_serial(i, pt)
        else:
            for i, pt in pending:
                run_serial(i, pt)

        result = ExperimentResult(
            spec=spec,
            points=tuple(out),  # type: ignore[arg-type]
            wall_time=time.perf_counter() - t0,
        )
        self.results.append(result)
        return result

    def summary(self) -> str:
        """One-line account of everything this engine ran."""
        from repro.schedule import default_cache

        total = sum(len(r.points) for r in self.results)
        hits = sum(r.cache_hits for r in self.results)
        failed = sum(len(r.failures) for r in self.results)
        secs = sum(r.wall_time for r in self.results)
        tail = f", {failed} failed" if failed else ""
        sched = default_cache().stats()
        sched_hits = sched["hits_memory"] + sched["hits_disk"]
        sched_tail = (
            f", schedules {sched_hits} replayed/{sched['misses']} compiled"
            if sched_hits or sched["misses"]
            else ""
        )
        return (
            f"[engine] {total} points across {len(self.results)} spec(s): "
            f"{hits} from cache, {total - hits} computed{tail}, "
            f"jobs={self.jobs}, {secs:.2f}s{sched_tail}"
        )

    def save_artifacts(self, directory: str | None = None) -> "list[str]":
        """Write one JSON artifact per spec run so far; returns paths."""
        return [r.save(directory) for r in self.results]


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    cache: "ResultCache | str | None" = "default",
    progress: Optional[ProgressFn] = None,
    verbose: bool = False,
    point_timeout: "float | None" = None,
    retries: int = 2,
    retry_backoff: float = 0.5,
    salvage: bool = True,
) -> ExperimentResult:
    """One-shot convenience: build an engine, run one spec."""
    engine = ExperimentEngine(
        jobs=jobs,
        cache=cache,
        progress=progress,
        verbose=verbose,
        point_timeout=point_timeout,
        retries=retries,
        retry_backoff=retry_backoff,
        salvage=salvage,
    )
    return engine.run(spec)


__all__ = [
    "ExperimentEngine",
    "ExperimentResult",
    "PointResult",
    "execute_point",
    "run_experiment",
]
