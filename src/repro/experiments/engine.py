"""The parallel, cached experiment engine.

Executes the points of an :class:`~repro.experiments.spec.ExperimentSpec`
and returns an :class:`ExperimentResult` with one
:class:`~repro.results.Measurement` per point, in spec order, plus
per-point wall time and cache provenance.

Execution model:

* every point is first looked up in the :class:`ResultCache`; hits are
  served without simulating;
* misses run through :func:`repro.analysis.sweeps.measure` (sequential
  points) or :func:`~repro.analysis.sweeps.measure_parallel` (PxPOTRF
  points) — serially for ``jobs=1``, fanned out over a
  ``concurrent.futures.ProcessPoolExecutor`` otherwise;
* computed measurements are written back to the cache, so overlapping
  benches and re-runs converge to pure cache reads.

Because each point's seed is fixed by the spec and the simulators are
deterministic, a ``jobs=N`` run produces measurements identical to a
serial run — the engine asserts nothing about scheduling, only about
configurations.
"""

from __future__ import annotations

import os
import re
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments.cache import ResultCache, code_version
from repro.experiments.spec import PARALLEL, ExperimentSpec, SpecPoint
from repro.observability.metrics import METRICS
from repro.results import Measurement

ProgressFn = Callable[[int, int, "PointResult"], None]


def execute_point(point: SpecPoint) -> "tuple[Measurement, float]":
    """Run one spec point from scratch; returns (measurement, seconds).

    This is the process-pool worker: it takes only a picklable
    :class:`SpecPoint` and returns a detached (``run``-free)
    measurement, so results cross process boundaries cleanly.
    """
    # Imported here, not at module top: sweeps imports the engine for
    # its thin wrappers, and the lazy import breaks the cycle.
    from repro.analysis.sweeps import measure, measure_parallel

    t0 = time.perf_counter()
    if point.kind == PARALLEL:
        m = measure_parallel(
            point.n,
            point.block,
            point.P,
            seed=point.seed,
            verify=point.verify,
            observe=point.observe,
        )
    else:
        kwargs = dict(point.params)
        layout_block = kwargs.pop("layout_block", None)
        m = measure(
            point.algorithm,
            point.n,
            point.M,
            layout=point.layout,
            layout_block=layout_block,
            seed=point.seed,
            verify=point.verify,
            observe=point.observe,
            **kwargs,
        )
    return m.without_run(), time.perf_counter() - t0


@dataclass(frozen=True)
class PointResult:
    """One executed (or cache-served) spec point."""

    point: SpecPoint
    measurement: Measurement
    wall_time: float
    cached: bool

    def to_dict(self) -> dict:
        """JSON-ready dict for artifact output."""
        return {
            "point": self.point.to_dict(),
            "measurement": self.measurement.to_dict(),
            "wall_time": float(self.wall_time),
            "cached": bool(self.cached),
        }


@dataclass(frozen=True)
class ExperimentResult:
    """All point results of one spec run, in spec order."""

    spec: ExperimentSpec
    points: "tuple[PointResult, ...]"
    wall_time: float

    @property
    def measurements(self) -> "list[Measurement]":
        """The measurements alone, in spec order."""
        return [p.measurement for p in self.points]

    @property
    def cache_hits(self) -> int:
        """How many points were served from the cache."""
        return sum(1 for p in self.points if p.cached)

    @property
    def cache_misses(self) -> int:
        """How many points were simulated fresh."""
        return sum(1 for p in self.points if not p.cached)

    def to_dict(self) -> dict:
        """JSON-ready dict: spec, code version, per-point results."""
        return {
            "spec": self.spec.to_dict(),
            "code_version": code_version(),
            "wall_time": float(self.wall_time),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "points": [p.to_dict() for p in self.points],
        }

    def save(self, directory: str | None = None) -> str:
        """Write the JSON artifact; returns the path.

        Defaults to ``reports/experiments/<spec-name>.json`` next to
        the text reports.
        """
        import json

        from repro.analysis.report import default_reports_dir

        directory = directory or os.path.join(default_reports_dir(), "experiments")
        os.makedirs(directory, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", self.spec.name) or "experiment"
        path = os.path.join(directory, f"{safe}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
        return path


class ExperimentEngine:
    """Runs specs with a shared cache, job count and progress stream.

    Parameters
    ----------
    jobs:
        Worker processes for cache-miss points; ``1`` (default) runs
        serially in-process.
    cache:
        ``"default"`` for the shared on-disk cache, ``None`` to
        disable caching, or an explicit :class:`ResultCache`.
    progress:
        Optional callback ``(done, total, point_result)`` invoked as
        each point resolves.
    verbose:
        Emit per-point progress lines and a summary to stderr.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: "ResultCache | str | None" = "default",
        progress: Optional[ProgressFn] = None,
        verbose: bool = False,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        if cache == "default":
            cache = ResultCache.default()
        elif isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache: ResultCache | None = cache
        self.progress = progress
        self.verbose = verbose
        self.results: "list[ExperimentResult]" = []

    def _notify(self, done: int, total: int, pr: PointResult, name: str) -> None:
        if self.verbose:
            tag = "cache" if pr.cached else f"{pr.wall_time:.2f}s"
            print(
                f"[engine] {name}: {done}/{total} {pr.point.label()} ({tag})",
                file=sys.stderr,
            )
        if self.progress is not None:
            self.progress(done, total, pr)

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute every point of ``spec`` (cache first, then compute)."""
        t0 = time.perf_counter()
        total = len(spec.points)
        out: "list[PointResult | None]" = [None] * total
        pending: "list[tuple[int, SpecPoint]]" = []
        done = 0
        for i, pt in enumerate(spec.points):
            entry = self.cache.get(pt) if self.cache is not None else None
            if entry is not None:
                try:
                    m = Measurement.from_dict(entry["measurement"])
                except (KeyError, TypeError, ValueError):
                    pending.append((i, pt))
                    continue
                out[i] = PointResult(pt, m, float(entry.get("wall_time", 0.0)), True)
                done += 1
                METRICS.counter("repro_engine_points_total", source="cache").inc()
                self._notify(done, total, out[i], spec.name)
            else:
                pending.append((i, pt))

        def record(i: int, pt: SpecPoint, m: Measurement, dt: float) -> None:
            nonlocal done
            if self.cache is not None:
                self.cache.put(pt, m.to_dict(), dt)
            out[i] = PointResult(pt, m, dt, False)
            done += 1
            METRICS.counter("repro_engine_points_total", source="computed").inc()
            METRICS.histogram("repro_point_wall_seconds", kind=pt.kind).observe(dt)
            self._notify(done, total, out[i], spec.name)

        if pending and self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_point, pt): (i, pt) for i, pt in pending
                }
                for fut in as_completed(futures):
                    i, pt = futures[fut]
                    m, dt = fut.result()
                    record(i, pt, m, dt)
        else:
            for i, pt in pending:
                m, dt = execute_point(pt)
                record(i, pt, m, dt)

        result = ExperimentResult(
            spec=spec,
            points=tuple(out),  # type: ignore[arg-type]
            wall_time=time.perf_counter() - t0,
        )
        self.results.append(result)
        return result

    def summary(self) -> str:
        """One-line account of everything this engine ran."""
        total = sum(len(r.points) for r in self.results)
        hits = sum(r.cache_hits for r in self.results)
        secs = sum(r.wall_time for r in self.results)
        return (
            f"[engine] {total} points across {len(self.results)} spec(s): "
            f"{hits} from cache, {total - hits} computed, "
            f"jobs={self.jobs}, {secs:.2f}s"
        )

    def save_artifacts(self, directory: str | None = None) -> "list[str]":
        """Write one JSON artifact per spec run so far; returns paths."""
        return [r.save(directory) for r in self.results]


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    cache: "ResultCache | str | None" = "default",
    progress: Optional[ProgressFn] = None,
    verbose: bool = False,
) -> ExperimentResult:
    """One-shot convenience: build an engine, run one spec."""
    engine = ExperimentEngine(
        jobs=jobs, cache=cache, progress=progress, verbose=verbose
    )
    return engine.run(spec)


__all__ = [
    "ExperimentEngine",
    "ExperimentResult",
    "PointResult",
    "execute_point",
    "run_experiment",
]
