"""The checksum guardian: ABFT protection for sequential runs.

One :class:`ChecksumGuardian` is armed on the machine
(``machine.abft``) for the duration of one protected ``run_algorithm``
attempt.  It tiles the tracked matrix into ``t × t`` protection tiles,
each carrying exact row/column bit-checksums
(:mod:`repro.abft.checksums`), and advances through *checkpoint
boundaries*:

1. **commit** — the algorithm (via its ``phase`` hooks) declares the
   rectangle it legitimately modified since the last boundary; every
   overlapping tile's checksums are recomputed and written back;
2. **inject** — the seeded silent-fault schedule
   (``FaultPlan.silent`` / ``silent_double``) decides, as a pure
   SHA-256 function of ``(seed, attempt, boundary)``, whether to flip
   a bit somewhere in the matrix — modelling corruption that struck
   the resident working set during the preceding compute phase;
3. **verify** — every tile is re-summed against its stored checksums.
   A single corrupted element is localized by its (row, column)
   syndrome pair and corrected bit-identically in place; a double
   fault in one tile raises
   :class:`~repro.abft.SilentCorruptionError`, which the registry
   escalates to its retry ladder (snapshot restore + attempt-salted
   re-run).

Because injection happens *only* at boundaries and every boundary
verifies immediately, no corruption ever flows into a compute phase —
the factor an ABFT run returns is exactly the factor a clean run
produces.  Algorithms without interior ``phase`` hooks (the naïve
family) still get initialize/finalize protection: their silent strikes
land only at those two boundaries.

Charging: every checksum vector lives in a reserved slow-memory region
and its traffic goes through the machine's *normal* chokepoints —
commits ``allocate + write + release`` the tile's ``h + w`` checksum
words, verifies ``read + release`` them, and the re-summing arithmetic
is charged as flops.  Re-reading the tile data itself is not
re-charged: verification scrubs data the algorithm's own transfers
already paid for (see MODEL.md).  All overhead is additionally
reported in the separate ``abft`` counter group
(:class:`AbftStats`).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

import numpy as np

from repro.abft.checksums import (
    SilentCorruptionError,
    block_checksums,
    flip_bit,
    verify_block,
)
from repro.faults.plan import FaultPlan, fault_unit
from repro.util.intervals import IntervalSet


def default_tile(M: int, n: int) -> int:
    """The default protection-tile size: the natural block ``√(M/3)``.

    Matches :func:`repro.sequential.lapack_blocked.default_block_size`
    so the checksum-vector overhead per tile (``2t`` words against a
    ``t²``-word tile transfer) is the lower-order ``O(1/t)`` the
    Huang–Abraham construction promises.
    """
    t = max(2, math.isqrt(max(M, 12) // 3))
    return max(1, min(int(n), t))


@dataclass(frozen=True)
class AbftConfig:
    """Per-run ABFT protection settings.

    Parameters
    ----------
    block:
        Protection-tile size; ``None`` derives :func:`default_tile`
        from the machine at arming time.
    max_attempts:
        Bound on end-to-end re-runs after uncorrectable double faults
        before the :class:`~repro.abft.SilentCorruptionError`
        propagates to the caller.
    plan:
        Optional silent-fault schedule carrier.  Normally the silent
        probabilities ride the run's ordinary
        :class:`~repro.faults.FaultPlan`; this field exists because a
        silent-*only* plan arms neither the machine's read-fault
        injector nor the network transport, so the guardian would
        otherwise never see it.
    """

    block: "int | None" = None
    max_attempts: int = 3
    plan: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.block is not None:
            object.__setattr__(self, "block", int(self.block))
            if self.block < 1:
                raise ValueError(f"block must be >= 1, got {self.block}")
        if int(self.max_attempts) < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        object.__setattr__(self, "max_attempts", int(self.max_attempts))

    @classmethod
    def coerce(cls, value: "AbftConfig | Mapping | bool | None") -> "AbftConfig | None":
        """Normalize the user-facing ``abft=`` argument.

        ``None``/``False`` → off; ``True`` → defaults; a mapping →
        :meth:`from_dict`; a config → itself.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise TypeError(f"cannot interpret abft={value!r}")

    def with_plan(self, plan: "FaultPlan | None") -> "AbftConfig":
        """This config carrying ``plan`` (existing plan wins)."""
        if self.plan is not None or plan is None:
            return self
        return replace(self, plan=plan)

    # -- serialization (the plan rides the point's ``faults`` field) ----

    def to_dict(self) -> dict:
        """JSON-ready canonical dict (spec/cache-key input).

        Deliberately excludes :attr:`plan` — in specs the silent
        schedule is part of the point's ``faults`` field, and keying
        it twice would let the two copies drift.
        """
        return {"block": self.block, "max_attempts": self.max_attempts}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AbftConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(d).items() if k in known})

    def freeze(self) -> tuple:
        """Hashable canonical form (spec points embed this)."""
        return tuple(sorted(self.to_dict().items()))

    @classmethod
    def from_frozen(cls, frozen) -> "AbftConfig":
        return cls.from_dict({k: v for k, v in frozen})


@dataclass
class AbftStats:
    """The ``abft`` counter group of one protected run.

    ``checksum_*`` is the overhead the protection itself charged
    through the machine/network chokepoints; the injection/detection
    counters describe the realized silent-fault schedule and what the
    syndromes did about it.
    """

    injected_single: int = 0
    injected_double: int = 0
    detected: int = 0
    corrected: int = 0
    double_faults: int = 0
    attempts: int = 1
    boundaries: int = 0
    checksum_words: int = 0
    checksum_messages: int = 0
    checksum_flops: int = 0
    verified: bool = False

    def any_injected(self) -> bool:
        return bool(self.injected_single or self.injected_double)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "AbftStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(d).items() if k in known})


class SilentInjector:
    """Seeded silent-fault decisions, pure functions of identity.

    Every decision hashes ``(seed, kind, attempt, identity)`` through
    :func:`~repro.faults.plan.fault_unit` — content-independent, so
    schedules are byte-identical across runs, processes, and
    ``jobs=1`` vs ``jobs=N``.  The ``attempt`` salt is what makes the
    registry's double-fault retry ladder terminate: a re-run after an
    uncorrectable fault draws a *different* (deterministic) schedule
    instead of replaying the same catastrophe forever.
    """

    def __init__(self, plan: "FaultPlan | None", attempt: int = 0) -> None:
        self.plan = plan
        self.attempt = int(attempt)

    @property
    def armed(self) -> bool:
        return self.plan is not None and self.plan.has_silent()

    def _unit(self, kind: str, *parts: object) -> float:
        return fault_unit(self.plan.seed, kind, self.attempt, *parts)

    def _strikes(
        self, parts: tuple, h: int, w: int, tile: int
    ) -> "list[tuple[int, int, int]]":
        """The ``(i, j, bit)`` flips for one boundary/payload identity."""
        if not self.armed:
            return []
        if self._unit("silent", *parts) >= self.plan.silent:
            return []
        i = min(h - 1, int(self._unit("silent-i", *parts) * h))
        j = min(w - 1, int(self._unit("silent-j", *parts) * w))
        bit = min(63, int(self._unit("silent-bit", *parts) * 64))
        strikes = [(i, j, bit)]
        double = (
            self.plan.silent_double
            and self._unit("silent-double", *parts) < self.plan.silent_double
        )
        if double:
            # the second flip lands in the SAME protection tile, which
            # is what makes the pair uncorrectable by construction
            r0, c0 = (i // tile) * tile, (j // tile) * tile
            th = min(tile, h - r0)
            tw = min(tile, w - c0)
            if th * tw > 1:
                i2 = r0 + min(th - 1, int(self._unit("silent-i2", *parts) * th))
                j2 = c0 + min(tw - 1, int(self._unit("silent-j2", *parts) * tw))
                if (i2, j2) == (i, j):
                    j2 = c0 + (j2 - c0 + 1) % tw
                    if (i2, j2) == (i, j):
                        i2 = r0 + (i2 - r0 + 1) % th
                bit2 = min(63, int(self._unit("silent-bit2", *parts) * 64))
                strikes.append((i2, j2, bit2))
        return strikes

    def matrix_strikes(
        self, boundary: int, n: int, tile: int
    ) -> "list[tuple[int, int, int]]":
        """Strikes against the tracked matrix at checkpoint ``boundary``."""
        return self._strikes(("matrix", boundary), n, n, tile)

    def payload_strikes(
        self, key: tuple, h: int, w: int
    ) -> "list[tuple[int, int, int]]":
        """Strikes against one delivered message payload.

        Keyed by the message's logical identity (broadcast key +
        receiving rank), never by delivery order — the transport's
        detection path (drops/corrupt draws) is untouched.
        """
        return self._strikes(("payload",) + tuple(key), h, w, max(h, w))


class ChecksumGuardian:
    """Tile checksums + checkpoint boundaries for one protected run."""

    def __init__(
        self,
        matrix,
        config: AbftConfig,
        plan: "FaultPlan | None" = None,
        *,
        attempt: int = 0,
        stats: "AbftStats | None" = None,
    ) -> None:
        self.matrix = matrix
        self.machine = matrix.machine
        self.config = config
        self.stats = stats if stats is not None else AbftStats()
        self.injector = SilentInjector(
            plan if plan is not None else config.plan, attempt
        )
        n = int(matrix.layout.n)
        self.n = n
        self.t = config.block or default_tile(self.machine.M, n)
        self.nt = -(-n // self.t)
        # one (rows, cols) checksum pair per tile; edge tiles use a prefix
        self._rows = np.zeros((self.nt, self.nt, self.t), dtype=np.uint64)
        self._cols = np.zeros((self.nt, self.nt, self.t), dtype=np.uint64)
        #: slow-memory region holding the checksum vectors — real
        #: addresses so their traffic is modeled like any other data
        self._cs_base = self.machine.reserve_address_space(
            self.nt * self.nt * 2 * self.t
        )
        self.depth = 0
        self.boundary = 0

    # -- tiling ---------------------------------------------------------

    def _bounds(self, bi: int, bj: int) -> "tuple[int, int, int, int]":
        t = self.t
        return (
            bi * t,
            min(self.n, (bi + 1) * t),
            bj * t,
            min(self.n, (bj + 1) * t),
        )

    def _cs_ivs(self, bi: int, bj: int, h: int, w: int) -> IntervalSet:
        start = self._cs_base + (bi * self.nt + bj) * 2 * self.t
        return IntervalSet.single(start, start + h + w)

    def _charge(self, ivs: IntervalSet, *, write: bool, flops: int) -> None:
        machine = self.machine
        if write:
            # freshly computed checksums: allocate, write back, evict
            machine.allocate(ivs)
            machine.write(ivs)
            machine.release(ivs)
        else:
            machine.read(ivs)
            machine.release(ivs)
        machine.add_flops(flops)
        self.stats.checksum_words += ivs.words
        self.stats.checksum_messages += ivs.messages(cap=machine.M)
        self.stats.checksum_flops += flops

    # -- the three boundary steps --------------------------------------

    def _commit_tile(self, bi: int, bj: int) -> None:
        r0, r1, c0, c1 = self._bounds(bi, bj)
        h, w = r1 - r0, c1 - c0
        rows, cols = block_checksums(self.matrix.data[r0:r1, c0:c1])
        self._rows[bi, bj, :h] = rows
        self._cols[bi, bj, :w] = cols
        self._charge(self._cs_ivs(bi, bj, h, w), write=True, flops=2 * h * w)

    def commit(self, r0: int, r1: int, c0: int, c1: int) -> None:
        """Refresh the checksums of every tile the rect touches."""
        if r1 <= r0 or c1 <= c0:
            return
        t = self.t
        for bi in range(max(0, r0 // t), -(-min(r1, self.n) // t)):
            for bj in range(max(0, c0 // t), -(-min(c1, self.n) // t)):
                self._commit_tile(bi, bj)

    def _inject(self) -> None:
        strikes = self.injector.matrix_strikes(self.boundary, self.n, self.t)
        for i, j, bit in strikes:
            flip_bit(self.matrix.data, i, j, bit)
        if len(strikes) == 1:
            self.stats.injected_single += 1
        elif len(strikes) == 2:
            self.stats.injected_double += 1

    def verify_all(self) -> int:
        """Re-sum every tile; correct single faults; escalate doubles."""
        corrected = 0
        for bi in range(self.nt):
            for bj in range(self.nt):
                r0, r1, c0, c1 = self._bounds(bi, bj)
                h, w = r1 - r0, c1 - c0
                block = self.matrix.data[r0:r1, c0:c1]
                self._charge(
                    self._cs_ivs(bi, bj, h, w), write=False, flops=2 * h * w
                )
                try:
                    fixed = verify_block(
                        block,
                        self._rows[bi, bj, :h],
                        self._cols[bi, bj, :w],
                        tile=(bi, bj),
                    )
                except SilentCorruptionError:
                    self.stats.detected += 1
                    self.stats.double_faults += 1
                    raise
                if fixed:
                    self.stats.detected += fixed
                    self.stats.corrected += fixed
                    corrected += fixed
        return corrected

    def checkpoint(self) -> None:
        """One inject + verify boundary (commit is the caller's part)."""
        self._inject()
        self.boundary += 1
        self.stats.boundaries += 1
        self.verify_all()

    # -- the algorithm-facing hooks ------------------------------------

    def enter(self) -> None:
        """A recursive algorithm entered one recursion level."""
        self.depth += 1

    def exit(self) -> None:
        self.depth -= 1

    def phase(self, r0: int, r1: int, c0: int, c1: int) -> None:
        """Block boundary: the algorithm finished modifying a rect.

        Recursive algorithms call this at every level; only depth-1
        calls act (the top level commits each child's whole footprint
        after the child returns), so the boundary schedule — and with
        it the injection schedule — is independent of recursion shape.
        """
        if self.depth > 1:
            return
        self.commit(r0, r1, c0, c1)
        self.checkpoint()

    def initialize(self) -> None:
        """Arm: checksum the whole input, then run one boundary."""
        self.commit(0, self.n, 0, self.n)
        self.checkpoint()

    def finalize(self) -> None:
        """Disarm: commit the final state, verify end-to-end."""
        self.commit(0, self.n, 0, self.n)
        self.checkpoint()
        self.stats.verified = True


__all__ = [
    "AbftConfig",
    "AbftStats",
    "ChecksumGuardian",
    "SilentInjector",
    "default_tile",
]
