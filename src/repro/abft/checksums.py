"""Exact Huang–Abraham checksums over float64 *bit patterns*.

Classical ABFT maintains floating-point row/column sums and tolerates
rounding with an epsilon — which can neither promise bit-identical
correction nor zero false positives, the two properties this stack's
determinism contracts demand.  So the carrier here is exact integer
arithmetic instead: every float64 element is viewed as its IEEE-754
``uint64`` bit pattern and the checksums are modular sums (mod 2^64)
of those patterns.  Consequences:

* **zero false positives** — a clean block's recomputed sums equal the
  stored sums exactly, no tolerance involved;
* **exact localization** — a single corrupted element produces exactly
  one nonzero entry in the row-syndrome and one in the column-syndrome
  (the classic Huang–Abraham geometry), and the two syndrome values
  agree;
* **bit-identical correction** — adding the row syndrome back to the
  corrupted element's bit pattern (mod 2^64) restores the original
  bits, whatever they were, including NaN payloads;
* **structured escalation** — any other nonzero-syndrome shape (two
  rows, two columns, disagreeing values) is an uncorrectable multiple
  fault and raises :class:`SilentCorruptionError`.

These functions verify data *at rest* at checkpoint boundaries — they
are not carried through floating-point arithmetic, so no numerical
drift can ever masquerade as corruption.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SilentCorruptionError(RuntimeError):
    """Corruption the checksums detected but could not correct.

    Raised when a protection tile's syndrome is inconsistent with a
    single-element fault (a double fault in one tile, or worse).  The
    caller is expected to escalate to the retry/recovery ladder: the
    sequential registry restores the input snapshot and re-runs, the
    parallel drivers rebuild the network and re-factor.
    """

    def __init__(
        self,
        message: str,
        *,
        tile: "tuple[int, int] | None" = None,
        row_hits: int = 0,
        col_hits: int = 0,
    ) -> None:
        super().__init__(message)
        self.tile = tile
        self.row_hits = int(row_hits)
        self.col_hits = int(col_hits)


def bit_view(block: np.ndarray) -> np.ndarray:
    """The ``uint64`` bit-pattern view of a float64 array (no copy)."""
    return block.view(np.uint64)


def block_checksums(block: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """``(row_sums, col_sums)`` of a 2-D float64 block, mod 2^64."""
    bits = bit_view(np.ascontiguousarray(block))
    # uint64 accumulation wraps mod 2^64 — exactly the modular carrier
    return bits.sum(axis=1, dtype=np.uint64), bits.sum(axis=0, dtype=np.uint64)


def flip_bit(block: np.ndarray, i: int, j: int, bit: int) -> None:
    """Flip one bit of element ``(i, j)`` in place (the silent fault)."""
    bits = bit_view(block)
    bits[i, j] = bits[i, j] ^ np.uint64(1 << int(bit))


def verify_block(
    block: np.ndarray,
    row_sums: np.ndarray,
    col_sums: np.ndarray,
    *,
    tile: "tuple[int, int] | None" = None,
) -> int:
    """Check ``block`` against its reference checksums; heal in place.

    Returns the number of elements corrected (0 for a clean block, 1
    for a located-and-corrected single fault).  Any syndrome that is
    not explainable by a single corrupted element raises
    :class:`SilentCorruptionError` — detection is still exact, but
    correction must escalate.
    """
    cur_rows, cur_cols = block_checksums(block)
    with np.errstate(over="ignore"):
        # uint64 arithmetic wrapping mod 2^64 is the modular carrier,
        # not an accident — silence the overflow warning
        dr = row_sums - cur_rows
        dc = col_sums - cur_cols
    rows = np.nonzero(dr)[0]
    cols = np.nonzero(dc)[0]
    if rows.size == 0 and cols.size == 0:
        return 0
    if rows.size == 1 and cols.size == 1 and dr[rows[0]] == dc[cols[0]]:
        i, j = int(rows[0]), int(cols[0])
        bits = bit_view(block)
        # corrupted bits + (original − corrupted) ≡ original, mod 2^64
        with np.errstate(over="ignore"):
            bits[i, j] = bits[i, j] + dr[i]
        return 1
    raise SilentCorruptionError(
        f"uncorrectable corruption in tile {tile}: syndrome names "
        f"{rows.size} row(s) and {cols.size} column(s) — not a single "
        "element",
        tile=tile,
        row_hits=int(rows.size),
        col_hits=int(cols.size),
    )


def factor_attestation(run) -> str:
    """Content digest of a factor's exact bit patterns.

    The end-to-end attestation carried in ``Measurement.abft``: the
    shard recomputes this digest when a stored result is read back, so
    a bit flip in a stored payload whose structural envelope still
    validates is caught as a counted miss and healed by recompute.
    """
    a = np.ascontiguousarray(np.asarray(run, dtype=np.float64))
    return hashlib.sha256(a.tobytes()).hexdigest()


__all__ = [
    "SilentCorruptionError",
    "bit_view",
    "block_checksums",
    "factor_attestation",
    "flip_bit",
    "verify_block",
]
