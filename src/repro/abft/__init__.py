"""Algorithm-based fault tolerance: checksum-protected Cholesky.

Huang–Abraham row/column checksums over exact float64 *bit patterns*
(:mod:`~repro.abft.checksums`), a per-run checkpoint guardian for the
sequential algorithms (:mod:`~repro.abft.guardian`), and sealed
message payloads for the parallel drivers (:mod:`~repro.abft.sealing`).
Armed via ``run_algorithm(..., abft=...)`` / ``pxpotrf(..., abft=...)``
and a ``FaultPlan`` with ``silent > 0``; overhead is charged through
the normal machine/network chokepoints and reported as the ``abft``
counter group.
"""

from repro.abft.checksums import (
    SilentCorruptionError,
    bit_view,
    block_checksums,
    factor_attestation,
    flip_bit,
    verify_block,
)
from repro.abft.guardian import (
    AbftConfig,
    AbftStats,
    ChecksumGuardian,
    SilentInjector,
    default_tile,
)
from repro.abft.sealing import SealedBlock, open_sealed, seal

__all__ = [
    "AbftConfig",
    "AbftStats",
    "ChecksumGuardian",
    "SealedBlock",
    "SilentCorruptionError",
    "SilentInjector",
    "bit_view",
    "block_checksums",
    "default_tile",
    "factor_attestation",
    "flip_bit",
    "open_sealed",
    "seal",
    "verify_block",
]
