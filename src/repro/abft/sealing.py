"""Checksum-sealed message payloads for the parallel drivers.

SUMMA and pxpotrf move blocks between ranks as raw arrays; the
reliable transport (PR 3) catches *detected* corruption — its own
seeded ``corrupt`` draws perturb a payload and the stop-and-wait layer
retries — but a silent flip that bypasses that path would be computed
on as if it were data.  A :class:`SealedBlock` closes the gap: the
sender attaches the block's exact bit-checksums
(:func:`~repro.abft.checksums.block_checksums`), the receiver re-sums
on open, corrects a single flipped element from the syndrome pair, and
escalates doubles as :class:`~repro.abft.SilentCorruptionError`.

The extra ``h + w`` checksum words ride the same broadcast the block
does (the drivers add them to the charged message volume), and the
receiver-side re-summing flops go through the network's per-rank
compute clock — lower-order against the ``h·w`` payload itself.

Silent payload strikes are injected at *open* time, keyed by the
message's logical identity (broadcast key + receiving rank), never by
delivery order — so the schedule is byte-identical however the
simulated delivery interleaves.  Because the simulated broadcast
aliases one payload object into every inbox, a struck receiver first
copies the block and flips the copy: corruption at one rank must never
leak into another rank's (or the sender's) view.
"""

from __future__ import annotations

import numpy as np

from repro.abft.checksums import block_checksums, flip_bit, verify_block
from repro.abft.guardian import AbftStats, SilentInjector


class SealedBlock:
    """One block payload plus its exact row/column bit-checksums."""

    __slots__ = ("data", "row_sums", "col_sums")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.row_sums, self.col_sums = block_checksums(self.data)

    @property
    def shape(self) -> "tuple[int, int]":
        return self.data.shape

    @property
    def overhead_words(self) -> int:
        """Checksum words carried on top of the payload (``h + w``)."""
        h, w = self.data.shape
        return h + w

    def __repr__(self) -> str:
        return f"SealedBlock(shape={self.data.shape})"


def seal(data: np.ndarray) -> SealedBlock:
    """Seal a block for transmission."""
    return SealedBlock(data)


def open_sealed(
    sealed: SealedBlock,
    *,
    injector: "SilentInjector | None" = None,
    stats: "AbftStats | None" = None,
    key: tuple = (),
) -> np.ndarray:
    """Verify (and if necessary heal) a sealed payload at the receiver.

    ``key`` is the message's logical identity — it seeds the silent
    strike decision and labels any escalation.  Returns the verified
    block; the returned array is a private copy only when a strike
    actually landed (the clean path stays zero-copy).
    """
    data = sealed.data
    h, w = data.shape
    strikes = (
        injector.payload_strikes(key, h, w)
        if injector is not None and injector.armed
        else []
    )
    if strikes:
        # the broadcast aliases this array into every inbox: flip a
        # private copy, never the shared payload
        data = np.array(data, copy=True)
        for i, j, bit in strikes:
            flip_bit(data, i, j, bit)
        if stats is not None:
            if len(strikes) == 1:
                stats.injected_single += 1
            else:
                stats.injected_double += 1
    try:
        fixed = verify_block(
            data, sealed.row_sums, sealed.col_sums, tile=("payload",) + key
        )
    except Exception:
        if stats is not None:
            stats.detected += 1
            stats.double_faults += 1
        raise
    if stats is not None:
        stats.boundaries += 1
        stats.checksum_words += sealed.overhead_words
        stats.checksum_messages += 1
        stats.checksum_flops += 2 * h * w
        if fixed:
            stats.detected += fixed
            stats.corrected += fixed
    if data is not sealed.data and np.array_equal(
        data.view(np.uint64), sealed.data.view(np.uint64)
    ):
        # A healed strike restored the exact original bits, so hand
        # back the *shared* payload object rather than the private
        # scratch copy: numpy special-cases aliased operands (``a @
        # a.T`` dispatches to syrk, distinct-buffer operands to gemm),
        # so preserving object identity with every other opener keeps
        # a corrected run bit-identical to a failure-free one.
        return sealed.data
    return data


__all__ = ["SealedBlock", "open_sealed", "seal"]
