"""Algorithm 8: cache-oblivious recursive triangular solve.

Computes ``X = A · U^{-1}`` in place over ``A``, with ``U`` upper
triangular (in the Cholesky recursions, ``U = L11ᵀ`` is a transposed
view of an already-factored lower-triangular block).  Splitting into
quadrants yields four recursive solves and two recursive
multiplications; charging through ideal-cache scopes gives the
paper's recurrences (15)–(16):

    B(n) = O(n³/√M + n²),    L(n) = O(n³/M^{3/2})

on block-contiguous storage.  The implementation generalizes to
rectangular ``A`` (``m × n``) as the Cholesky recursions need; for
``m = n`` it performs exactly the paper's quadrant recursion.
"""

from __future__ import annotations

from repro.machine.core import ModelError
from repro.matrices.tracked import BlockRef, footprint
from repro.sequential.flops import trsm_flops
from repro.sequential.kernels import solve_upper_right
from repro.sequential.rmatmul import _rmatmul
from repro.util.imath import split_point


def rtrsm(A: BlockRef, U: BlockRef) -> None:
    """Overwrite ``A`` (``m × n``) with ``A · U^{-1}`` (``U`` upper ``n × n``).

    Only the upper triangle of ``U`` is referenced; passing ``L.T``
    for a lower-triangular factor ``L`` is the intended usage.
    """
    m, n = A.shape
    if U.shape != (n, n):
        raise ValueError(f"U{U.shape} must be {n}x{n} to solve A{A.shape}")
    if A.matrix.machine is not U.matrix.machine:
        raise ValueError("rtrsm operands must share one machine")
    _rtrsm(A, U)


def _rtrsm(A: BlockRef, U: BlockRef) -> None:
    machine = A.matrix.machine
    m, n = A.shape
    reads = footprint([A, U])
    # Batched leaf vs interpreted scope: see _rsyrk for the contract.
    if machine.batched:
        with machine.profiler.span("trsm"):
            if machine.leaf_charge(reads, A.intervals, write_covered=True):
                A.poke(solve_upper_right(A.peek(), U.peek()))
                machine.add_flops(trsm_flops(m, n))
                return
            with machine.scope(reads, A.intervals, write_covered=True):
                _rtrsm_recurse(A, U, machine, m, n)
        return
    with machine.profiler.span("trsm"), machine.scope(
        reads, A.intervals, write_covered=True
    ) as sc:
        if sc.fits:
            A.poke(solve_upper_right(A.peek(), U.peek()))
            machine.add_flops(trsm_flops(m, n))
            return
        _rtrsm_recurse(A, U, machine, m, n)


def _rtrsm_recurse(A: BlockRef, U: BlockRef, machine, m: int, n: int) -> None:
    """Split a too-big triangular solve (shared by both charge paths)."""
    if m >= n and m > 1:
        # tall A: the two row halves solve independently
        h = split_point(m)
        a_top, a_bot = A.split_rows(h)
        _rtrsm(a_top, U)
        _rtrsm(a_bot, U)
        return
    if n == 1:
        raise ModelError(
            f"fast memory (M={machine.M}) cannot hold a single "
            "column triangular-solve working set"
        )
    # wide A: forward substitution over U's column blocks
    h = split_point(n)
    a_left, a_right = A.split_cols(h)
    u11, u12, _u21, u22 = U.quadrants(h, h)
    _rtrsm(a_left, u11)
    _rmatmul(a_right, a_left, u12, -1.0)
    _rtrsm(a_right, u22)
