"""Solving SPD systems with a tracked factor.

The paper's introduction motivates Cholesky as the factorization "used
for solving dense symmetric positive definite linear systems"; this
module completes that use case on the same machine model: triangular
substitution sweeps whose column reads are charged like every other
access, and an end-to-end :func:`cholesky_solve` (factor + two
substitutions) so the examples can show where the communication in a
full solve actually goes (answer: overwhelmingly the factorization —
substitution moves Θ(n²/2) words against the factorization's
Θ(n³/√M)).

The right-hand side lives in its own slow-memory region and is held
resident through a sweep, so the model requirement is ``M >= 2n + 1``
(one column + the RHS + the pivot), mirroring the naïve algorithms'
whole-column regime.
"""

from __future__ import annotations

import numpy as np

from repro.machine.core import ModelError
from repro.matrices.tracked import TrackedMatrix
from repro.sequential.registry import run_algorithm
from repro.util.intervals import IntervalSet


def _as_rhs(b: np.ndarray, n: int) -> np.ndarray:
    arr = np.asarray(b, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] != n:
        raise ValueError(f"rhs must have {n} rows, got shape {arr.shape}")
    return arr.copy()


def _hold_rhs(machine, words: int) -> IntervalSet:
    base = machine.reserve_address_space(words)
    ivs = IntervalSet.single(base, base + words)
    machine.read(ivs)
    return ivs


def forward_substitution(L: TrackedMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` with ``L`` the lower triangle of a tracked factor.

    Sweeps columns left to right, reading each column of L once:
    n(n+1)/2 words, one message per column on column-major storage.
    """
    n, machine = L.n, L.machine
    y = _as_rhs(b, n)
    if machine.M < 2 * n + 1:
        raise ModelError(
            f"forward substitution needs M >= 2n+1 = {2 * n + 1}, got {machine.M}"
        )
    rhs_ivs = _hold_rhs(machine, y.size)
    for j in range(n):
        col_ref = L.block(j, n, j, j + 1)
        col = col_ref.load()
        y[j] /= col[0, 0]
        machine.add_flops(y.shape[1])
        if j + 1 < n:
            y[j + 1 :] -= col[1:] * y[j]
            machine.add_flops(2 * (n - j - 1) * y.shape[1])
        col_ref.release()
    machine.write(rhs_ivs)
    machine.release(rhs_ivs)
    return y if np.asarray(b).ndim == 2 else y[:, 0]


def back_substitution(L: TrackedMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``Lᵀ x = y`` with ``L`` the lower triangle of a tracked factor.

    Sweeps columns right to left; each column of L is again read once.
    """
    n, machine = L.n, L.machine
    x = _as_rhs(y, n)
    if machine.M < 2 * n + 1:
        raise ModelError(
            f"back substitution needs M >= 2n+1 = {2 * n + 1}, got {machine.M}"
        )
    rhs_ivs = _hold_rhs(machine, x.size)
    for j in range(n - 1, -1, -1):
        col_ref = L.block(j, n, j, j + 1)
        col = col_ref.load()
        if j + 1 < n:
            x[j] -= col[1:, 0] @ x[j + 1 :]
            machine.add_flops(2 * (n - j - 1) * x.shape[1])
        x[j] /= col[0, 0]
        machine.add_flops(x.shape[1])
        col_ref.release()
    machine.write(rhs_ivs)
    machine.release(rhs_ivs)
    return x if np.asarray(y).ndim == 2 else x[:, 0]


def cholesky_solve(
    A: TrackedMatrix,
    b: np.ndarray,
    *,
    algorithm: str = "square-recursive",
    **params,
) -> np.ndarray:
    """Solve ``A x = b`` end to end: factor, then two substitutions.

    ``A`` is overwritten with its factor (like the in-place algorithms
    of Section 3); all communication lands on ``A``'s machine.  Phase
    costs can be recovered with counter snapshots — see
    ``examples/pde_solver.py``.
    """
    run_algorithm(algorithm, A, **params)
    y = forward_substitution(A, b)
    return back_substitution(A, y)
