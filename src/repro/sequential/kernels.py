"""In-fast-memory numerical kernels.

Once a block (or a recursion's working set) is resident in fast
memory, arithmetic is free in the communication model; these helpers
do that arithmetic with NumPy/SciPy so the simulated algorithms
produce real factors.

A recurring wrinkle: our algorithms, like LAPACK's, reference only the
*lower* triangle of symmetric blocks, so the strictly-upper part of a
diagonal block may hold stale values by the time it is factored.
``sym_from_lower`` rebuilds the symmetric operand the mathematics
refers to before handing it to a dense kernel.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.util.validation import NotPositiveDefiniteError


def sym_from_lower(c: np.ndarray) -> np.ndarray:
    """Symmetric matrix whose lower triangle is ``tril(c)``."""
    low = np.tril(c)
    return low + np.tril(c, -1).T


def dense_cholesky(c: np.ndarray, *, stage: str = "potf2") -> np.ndarray:
    """Lower Cholesky factor of the symmetric operand in ``tril(c)``.

    Raises :class:`~repro.util.validation.NotPositiveDefiniteError`
    (carrying ``stage``) if the operand is not positive definite — the
    loud, structured failure mode the paper's no-pivoting setting
    implies, instead of a bare LAPACK error bubbling out of the middle
    of a simulation.
    """
    try:
        return np.linalg.cholesky(sym_from_lower(c))
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"operand is not positive definite in stage {stage!r}: {exc}",
            stage=stage,
        ) from exc


def solve_lower_transposed_right(a: np.ndarray, l: np.ndarray) -> np.ndarray:
    """``X = A · L^{-T}`` with ``L`` lower triangular (TRSM 'RLT').

    Reads only ``tril(l)``.  This is the panel update of Algorithm 4
    (line 6) and Algorithm 6 (line 5): ``X Lᵀ = A``.
    """
    # X Lᵀ = A  ⇔  L Xᵀ = Aᵀ
    return solve_triangular(l, a.T, lower=True, trans="N").T


def solve_upper_right(a: np.ndarray, u: np.ndarray) -> np.ndarray:
    """``X = A · U^{-1}`` with ``U`` upper triangular (Algorithm 8).

    Reads only ``triu(u)``.
    """
    # X U = A  ⇔  Uᵀ Xᵀ = Aᵀ
    return solve_triangular(u, a.T, lower=False, trans="T").T
