"""Algorithm 4: LAPACK POTRF — the blocked left-looking algorithm.

The matrix is processed in ``b × b`` blocks with at most three blocks
resident at a time (the paper's ``b <= sqrt(M/3)`` assumption, which
the machine's capacity enforcement actually checks).  Per panel ``j``:

1. SYRK   — stream the ``j-1`` panel blocks through fast memory to
            update the diagonal block;
2. POTF2  — factor the diagonal block in fast memory;
3. GEMM   — stream pairs of history blocks to update each block of
            the column panel;
4. TRSM   — triangular-solve each panel block against the diagonal
            factor.

Bandwidth is Θ(n³/b + n²): optimal at ``b = Θ(sqrt(M))``, degenerating
to the naïve algorithm's Θ(n³) at ``b = 1`` (Conclusion 2).  Latency
is bandwidth/b messages on a block-contiguous layout — hitting the
Θ(n³/M^{3/2}) lower bound when ``b = Θ(sqrt(M))`` — but b-times worse
on column-major storage (Conclusion 3).
"""

from __future__ import annotations

import numpy as np

from repro.machine.core import ModelError
from repro.matrices.tracked import TrackedMatrix
from repro.sequential.flops import (
    cholesky_flops,
    gemm_flops,
    syrk_flops,
    trsm_flops,
)
from repro.sequential.kernels import dense_cholesky, solve_lower_transposed_right
from repro.util.imath import ceil_div, largest_fitting_block
from repro.util.validation import check_positive_int


def default_block_size(M: int) -> int:
    """The paper's optimal tuning: the largest b with ``3b² <= M``."""
    return largest_fitting_block(M, matrices=3)


def lapack_blocked(A: TrackedMatrix, block: int | None = None) -> np.ndarray:
    """Blocked left-looking Cholesky (LAPACK POTRF, Algorithm 4).

    Parameters
    ----------
    A:
        The tracked operand (overwritten with ``L`` in its lower
        triangle).
    block:
        Block size ``b``; defaults to the bandwidth-optimal
        ``floor(sqrt(M/3))``.  Must satisfy ``3b² <= M`` — three
        resident blocks is what the streaming pattern needs, and the
        machine enforces it.

    Returns the lower factor ``L``.
    """
    n, machine, M = A.n, A.machine, A.machine.M
    b = default_block_size(M) if block is None else check_positive_int("block", block)
    b = min(b, n)
    if machine.enforce_capacity and 3 * b * b > M:
        raise ModelError(
            f"block size b={b} needs 3b²={3 * b * b} words resident "
            f"but M={M}; choose b <= sqrt(M/3)"
        )
    nb = ceil_div(n, b)

    def edge(k: int) -> tuple[int, int]:
        """Row/column range of block index k."""
        return k * b, min((k + 1) * b, n)

    prof = machine.profiler
    batched = machine.batched
    guard = machine.abft
    for J in range(nb):
        j0, j1 = edge(J)
        w = j1 - j0

        with prof.span("panel", J=J):
            # --- SYRK: A22 <- A22 - A21 A21^T, streaming history blocks ---
            with prof.span("syrk"):
                diag_ref = A.block(j0, j1, j0, j1)
                diag = diag_ref.load()
                if batched:
                    if J:
                        machine.read_batch(
                            A.rect_batch(
                                [(j0, j1, *edge(K)) for K in range(J)]
                            )
                        )
                        hist = A.data[j0:j1, :j0]
                        diag -= hist @ hist.T
                        machine.add_flops(syrk_flops(w, j0))
                else:
                    for K in range(J):
                        k0, k1 = edge(K)
                        hist_ref = A.block(j0, j1, k0, k1)
                        hist = hist_ref.load()
                        diag -= hist @ hist.T
                        machine.add_flops(syrk_flops(w, k1 - k0))
                        hist_ref.release()

            # --- POTF2: factor the diagonal block in fast memory ---
            with prof.span("potf2"):
                ldiag = dense_cholesky(diag)
                machine.add_flops(cholesky_flops(w))
                diag_ref.store(ldiag)
                diag_ref.release()

            # --- GEMM: panel blocks <- panel - A31 A21^T, streaming pairs ---
            with prof.span("gemm"):
                if batched:
                    if J + 1 < nb:
                        _gemm_phase_batched(A, machine, edge, nb, J, j0, j1, w)
                else:
                    for I in range(J + 1, nb):
                        i0, i1 = edge(I)
                        panel_ref = A.block(i0, i1, j0, j1)
                        panel = panel_ref.load()
                        for K in range(J):
                            k0, k1 = edge(K)
                            left_ref = A.block(i0, i1, k0, k1)
                            right_ref = A.block(j0, j1, k0, k1)
                            left = left_ref.load()
                            right = right_ref.load()
                            panel -= left @ right.T
                            machine.add_flops(gemm_flops(i1 - i0, k1 - k0, w))
                            left_ref.release()
                            right_ref.release()
                        panel_ref.store(panel)
                        panel_ref.release()

            if J + 1 == nb:
                if guard is not None:
                    # last panel is the diagonal block alone
                    guard.phase(j0, j1, j0, j1)
                break  # no panel below the last diagonal block

            # --- TRSM: panel blocks <- panel * L22^{-T} ---
            with prof.span("trsm"):
                diag_ref2 = A.block(j0, j1, j0, j1)
                ldiag = diag_ref2.load()
                if batched:
                    rects = []
                    flags = []
                    for I in range(J + 1, nb):
                        i0, i1 = edge(I)
                        rects.append((i0, i1, j0, j1))
                        rects.append((i0, i1, j0, j1))
                        flags.extend((False, True))
                    sub = A.data[j1:n, j0:j1]
                    sub[...] = solve_lower_transposed_right(sub.copy(), ldiag)
                    machine.charge_intervals(A.rect_batch(rects, is_write=flags))
                    machine.add_flops(trsm_flops(n - j1, w))
                else:
                    for I in range(J + 1, nb):
                        i0, i1 = edge(I)
                        panel_ref = A.block(i0, i1, j0, j1)
                        panel = panel_ref.load()
                        panel = solve_lower_transposed_right(panel, ldiag)
                        machine.add_flops(trsm_flops(i1 - i0, w))
                        panel_ref.store(panel)
                        panel_ref.release()
                diag_ref2.release()

            if guard is not None:
                # panel J finished: everything modified since the last
                # boundary lives in [j0, n) × [j0, j1)
                guard.phase(j0, n, j0, j1)

    machine.release_all()
    return A.lower()


def _gemm_phase_batched(A, machine, edge, nb, J, j0, j1, w):
    """One batch for the whole GEMM phase of panel ``J``.

    Per panel block ``I`` (in order): read the block, read the
    ``(left, right)`` history pair for each ``K < J``, write the block
    back — the element-wise transfer sequence, coalesced.  The
    element-wise loop holds the panel block plus one history pair, so
    ``peak_extra`` is the largest such triple rather than the largest
    single set.
    """
    rects = []
    flags = []
    for I in range(J + 1, nb):
        i0, i1 = edge(I)
        rects.append((i0, i1, j0, j1))
        flags.append(False)
        for K in range(J):
            k0, k1 = edge(K)
            rects.append((i0, i1, k0, k1))
            rects.append((j0, j1, k0, k1))
            flags.extend((False, False))
        rects.append((i0, i1, j0, j1))
        flags.append(True)
    batch = A.rect_batch(rects, is_write=flags)
    peak = 0
    if batch.nsets:
        sw = batch.set_words()
        per_block = 2 * J + 2  # read + J pairs + write
        pos = 0
        for I in range(J + 1, nb):
            group = sw[pos : pos + per_block]
            pair_peak = 0
            if J:
                pairs = group[1:-1]
                pair_peak = int((pairs[0::2] + pairs[1::2]).max())
            peak = max(peak, int(group[0]) + pair_peak)
            pos += per_block
    n = A.n
    if J:
        A.data[j1:n, j0:j1] -= A.data[j1:n, :j0] @ A.data[j0:j1, :j0].T
        machine.add_flops(gemm_flops(n - j1, j0, w))
    machine.charge_intervals(batch, peak_extra=peak)
