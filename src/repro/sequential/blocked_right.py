"""Blocked *right*-looking Cholesky — the sequential PxPOTRF.

Algorithm 4 in the paper is LAPACK's left-looking POTRF; ScaLAPACK's
PxPOTRF (Algorithm 9) is right-looking: factor the diagonal block,
solve the panel, then eagerly update the entire trailing matrix.  The
sequential version of that schedule is implemented here as an
ablation the paper's Table 1 implies but does not tabulate:

* the flops are identical (same scalar operations, reordered);
* the bandwidth is still Θ(n³/b) — optimal at b = Θ(√M) — but with a
  roughly 2× constant over left-looking, because every trailing block
  is read *and written back* once per panel instead of the history
  being read-only (exactly the naïve left/right asymmetry of
  §3.1.4–3.1.5, lifted to block granularity);
* at most three blocks are resident (``b <= sqrt(M/3)``, enforced).
"""

from __future__ import annotations

import numpy as np

from repro.machine.core import ModelError
from repro.matrices.tracked import TrackedMatrix
from repro.sequential.flops import (
    cholesky_flops,
    gemm_flops,
    syrk_flops,
    trsm_flops,
)
from repro.sequential.kernels import dense_cholesky, solve_lower_transposed_right
from repro.sequential.lapack_blocked import default_block_size
from repro.util.imath import ceil_div
from repro.util.validation import check_positive_int


def lapack_blocked_right(A: TrackedMatrix, block: int | None = None) -> np.ndarray:
    """Blocked right-looking Cholesky (sequential PxPOTRF schedule).

    Parameters mirror :func:`repro.sequential.lapack_blocked`; returns
    the lower factor ``L``.
    """
    n, machine, M = A.n, A.machine, A.machine.M
    b = default_block_size(M) if block is None else check_positive_int("block", block)
    b = min(b, n)
    if machine.enforce_capacity and 3 * b * b > M:
        raise ModelError(
            f"block size b={b} needs 3b²={3 * b * b} words resident "
            f"but M={M}; choose b <= sqrt(M/3)"
        )
    nb = ceil_div(n, b)

    def edge(k: int) -> tuple[int, int]:
        return k * b, min((k + 1) * b, n)

    prof = machine.profiler
    batched = machine.batched
    for J in range(nb):
        j0, j1 = edge(J)
        w = j1 - j0

        with prof.span("panel", J=J):
            # factor the (already fully updated) diagonal block
            with prof.span("potf2"):
                diag_ref = A.block(j0, j1, j0, j1)
                ldiag = dense_cholesky(diag_ref.load())
                machine.add_flops(cholesky_flops(w))
                diag_ref.store(ldiag)

            # panel solve, diagonal factor kept resident (2 blocks)
            with prof.span("trsm"):
                if batched:
                    if J + 1 < nb:
                        rects = []
                        flags = []
                        for I in range(J + 1, nb):
                            i0, i1 = edge(I)
                            rects.append((i0, i1, j0, j1))
                            rects.append((i0, i1, j0, j1))
                            flags.extend((False, True))
                        sub = A.data[j1:n, j0:j1]
                        sub[...] = solve_lower_transposed_right(sub.copy(), ldiag)
                        machine.charge_intervals(
                            A.rect_batch(rects, is_write=flags)
                        )
                        machine.add_flops(trsm_flops(n - j1, w))
                else:
                    for I in range(J + 1, nb):
                        i0, i1 = edge(I)
                        panel_ref = A.block(i0, i1, j0, j1)
                        panel = solve_lower_transposed_right(panel_ref.load(), ldiag)
                        machine.add_flops(trsm_flops(i1 - i0, w))
                        panel_ref.store(panel)
                        panel_ref.release()
                diag_ref.release()

            # eager trailing update: every remaining block, right now
            with prof.span("update"):
                for K in range(J + 1, nb):
                    k0, k1 = edge(K)
                    if batched:
                        _trailing_update_batched(
                            A, machine, edge, nb, K, j0, j1, k0, k1, w
                        )
                        continue
                    right_ref = A.block(k0, k1, j0, j1)  # L(K,J)
                    right = right_ref.load()
                    for I in range(K, nb):
                        i0, i1 = edge(I)
                        left_ref = A.block(i0, i1, j0, j1)  # L(I,J)
                        left = left_ref.load()
                        target_ref = A.block(i0, i1, k0, k1)
                        target = target_ref.load()
                        target -= left @ right.T
                        if I == K:
                            machine.add_flops(syrk_flops(i1 - i0, w))
                        else:
                            machine.add_flops(gemm_flops(i1 - i0, w, k1 - k0))
                        target_ref.store(target)
                        target_ref.release()
                        left_ref.release()
                    right_ref.release()

    machine.release_all()
    return A.lower()


def _trailing_update_batched(A, machine, edge, nb, K, j0, j1, k0, k1, w):
    """Batch block column ``K`` of the eager trailing update.

    Transfer order per the element-wise loop: read ``L(K, J)``, then
    per target row ``I``: read ``L(I, J)``, read/update/write the
    target.  The element-wise peak has a wrinkle: at ``I == K`` the
    left operand aliases ``L(K, J)``, so releasing it also evicts the
    right operand — later rows hold only a (left, target) pair.
    ``peak_extra`` reproduces that exactly.
    """
    rects = [(k0, k1, j0, j1)]  # right operand L(K,J)
    flags = [False]
    for I in range(K, nb):
        i0, i1 = edge(I)
        rects.append((i0, i1, j0, j1))
        rects.append((i0, i1, k0, k1))
        rects.append((i0, i1, k0, k1))
        flags.extend((False, False, True))
    batch = A.rect_batch(rects, is_write=flags)
    sw = batch.set_words()
    lefts, targets = sw[1::3], sw[2::3]
    peak = int(sw[0]) + int(targets[0])  # right + diagonal target
    if len(lefts) > 1:
        peak = max(peak, int((lefts[1:] + targets[1:]).max()))
    n = A.n
    A.data[k0:n, k0:k1] -= A.data[k0:n, j0:j1] @ A.data[k0:k1, j0:j1].T
    machine.charge_intervals(batch, peak_extra=peak)
    machine.add_flops(
        syrk_flops(k1 - k0, w) + gemm_flops(n - k1, w, k1 - k0)
    )
