"""Algorithm 5: the rectangular recursive Cholesky (Toledo-style).

The Cholesky specialization of Toledo's recursive LU [Tol97]: recurse
on the *column* dimension only, with a per-column base case that
explicitly reads, scales, and writes one column of the (rectangular)
panel.  The trailing update is performed with the cache-oblivious
multiplication/symmetric-update kernels.

The per-column base case is the algorithm's signature and its
weakness: its I/O is explicit (it happens at every level of the
hierarchy regardless of cache size), producing

* the ``+ mn log n`` bandwidth term of Claim 3.1
  — B(n,n) = Θ(n³/√M + n² log n), bandwidth-optimal except in the
  narrow range M > n²/log²n;
* latency Ω(n³/M) on column-major storage and Ω(n²) on recursive
  block storage (a column of a Morton matrix is Θ(m) runs), so it is
  *never* latency-optimal for M > n^{2/3} (Conclusion 4).

When a column is longer than fast memory the base case streams it in
pivot-pinned segments, unchanged in total words.
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.core import ModelError
from repro.matrices.tracked import BlockRef, TrackedMatrix
from repro.sequential.flops import column_scale_flops
from repro.sequential.rmatmul import _rmatmul
from repro.sequential.rsyrk import _rsyrk
from repro.util.imath import split_point
from repro.util.intervals import RunBatch


def toledo(A: TrackedMatrix) -> np.ndarray:
    """Rectangular recursive Cholesky (Algorithm 5).

    Returns the lower factor ``L`` (left in ``A``'s lower triangle).
    """
    _rect_rchol(A.whole())
    A.machine.release_all()
    return A.lower()


def _rect_rchol(A: BlockRef) -> None:
    """Factor an ``m × n`` panel (``m >= n``) of the global matrix.

    The panel is the lower-left part of a positive definite matrix:
    its top ``n × n`` block is factored, the rest of the panel is
    transformed into the corresponding rows of ``L``.
    """
    machine = A.matrix.machine
    guard = machine.abft
    if guard is not None:
        guard.enter()
    try:
        _rect_rchol_body(A, guard)
    finally:
        if guard is not None:
            guard.exit()


def _rect_rchol_body(A: BlockRef, guard) -> None:
    m, n = A.shape
    if m < n:
        raise ValueError(f"panel must be at least as tall as wide, got {m}x{n}")
    with A.matrix.machine.profiler.span("chol"):
        if n == 1:
            _factor_column(A)
            if guard is not None:
                guard.phase(A.r0, A.r1, A.c0, A.c1)
            return
        k = split_point(n)
        left, right = A.split_cols(k)       # left: m×k, right: m×(n−k)
        _rect_rchol(left)                   # L(:, :k)
        if guard is not None:
            guard.phase(left.r0, left.r1, left.c0, left.c1)
        # trailing update of the lower-right (m−k)×(n−k) panel:
        #   A22 (diagonal block) gets a symmetric update,
        #   A32 (below it) a general one — together the paper's line 5.
        l21 = left.sub(k, n, 0, k)          # (n−k)×k
        a22 = right.sub(k, n, 0, n - k)     # (n−k)×(n−k), diagonal block
        _rsyrk(a22, l21)
        if guard is not None:
            guard.phase(a22.r0, a22.r1, a22.c0, a22.c1)
        if m > n:
            l31 = left.sub(n, m, 0, k)      # (m−n)×k
            a32 = right.sub(n, m, 0, n - k) # (m−n)×(n−k)
            _rmatmul(a32, l31, l21.T, -1.0)
            if guard is not None:
                guard.phase(a32.r0, a32.r1, a32.c0, a32.c1)
        tail = right.sub(k, m, 0, n - k)
        _rect_rchol(tail)
        if guard is not None:
            guard.phase(tail.r0, tail.r1, tail.c0, tail.c1)


def _factor_column(A: BlockRef) -> None:
    """Base case: explicitly read/scale/write one column (2m words).

    This I/O is charged at *every* hierarchy level — it is real
    traffic the algorithm issues whether or not the column is cached,
    which is exactly how Claim 3.1's recurrence charges it.
    """
    machine = A.matrix.machine
    m = A.rows
    M = machine.M
    if machine.batched:
        _factor_column_batched(A, machine, m, M)
        return
    with machine.profiler.span("column"):
        if m + 1 <= M:
            col = A.load()
            _scale(col, float(col[0, 0]), machine, with_sqrt=True)
            A.store(col)
            A.release()
            return
        # column longer than fast memory: stream pivot-pinned segments
        if M < 2:
            raise ModelError(f"toledo base case needs M >= 2, got M={M}")
        seg = M - 1
        pivot_ref = A.sub(0, 1, 0, 1)
        pivot_vals = pivot_ref.load()
        if pivot_vals[0, 0] <= 0:
            raise np.linalg.LinAlgError("non-positive pivot: matrix is not SPD")
        pivot = math.sqrt(float(pivot_vals[0, 0]))
        pivot_vals[0, 0] = pivot
        machine.add_flops(1)
        pivot_ref.store(pivot_vals)
        for r in range(1, m, seg):
            re = min(r + seg, m)
            seg_ref = A.sub(r, re, 0, 1)
            vals = seg_ref.load()
            vals /= pivot
            machine.add_flops(re - r)
            seg_ref.store(vals)
            seg_ref.release()
        pivot_ref.release()


def _factor_column_batched(A: BlockRef, machine, m: int, M: int) -> None:
    """Batched twin of :func:`_factor_column` — same counts, one batch.

    Issues the identical explicit transfers (same sets, same order,
    same peaks) through :meth:`~repro.machine.core.HierarchicalMachine.
    charge_intervals`, so the golden trace/counter equality against
    the element-wise base case holds while the per-column Python loop
    collapses into O(#runs) array work that the schedule recorder can
    capture wholesale.
    """
    with machine.profiler.span("column"):
        ivs = A.intervals
        if m + 1 <= M:
            machine.charge_intervals(
                RunBatch.from_sets([ivs]), peak_extra=ivs.words
            )
            col = A.peek()
            _scale(col, float(col[0, 0]), machine, with_sqrt=True)
            A.poke(col)
            machine.charge_intervals(
                RunBatch.from_sets([ivs], is_write=True), peak_extra=ivs.words
            )
            return
        # column longer than fast memory: stream pivot-pinned segments
        if M < 2:
            raise ModelError(f"toledo base case needs M >= 2, got M={M}")
        seg = M - 1
        piv_ivs = A.sub(0, 1, 0, 1).intervals
        machine.charge_intervals(RunBatch.from_sets([piv_ivs]), peak_extra=1)
        col = A.peek()
        if col[0, 0] <= 0:
            raise np.linalg.LinAlgError(
                "non-positive pivot: matrix is not SPD"
            )
        pivot = math.sqrt(float(col[0, 0]))
        col[0, 0] = pivot
        machine.add_flops(1)
        sets = [piv_ivs]
        flags = [True]
        for r in range(1, m, seg):
            re = min(r + seg, m)
            col[r:re] /= pivot
            machine.add_flops(re - r)
            seg_ivs = A.sub(r, re, 0, 1).intervals
            sets.append(seg_ivs)  # read the segment ...
            sets.append(seg_ivs)  # ... and write it back scaled
            flags += [False, True]
        A.poke(col)
        machine.charge_intervals(
            RunBatch.from_sets(sets, is_write=flags),
            peak_extra=1 + min(seg, m - 1),
        )


def _scale(col: np.ndarray, pivot: float, machine, *, with_sqrt: bool) -> None:
    if pivot <= 0:
        raise np.linalg.LinAlgError("non-positive pivot: matrix is not SPD")
    if with_sqrt:
        col[0, 0] = math.sqrt(pivot)
        if col.shape[0] > 1:
            col[1:] /= col[0, 0]
        machine.add_flops(column_scale_flops(col.shape[0]))
