"""Algorithm 7: cache-oblivious recursive matrix multiplication.

The FLPR99 divide-and-conquer: split the largest of the three
dimensions until the working set (all three operands) fits in fast
memory, then multiply there.  Communication is charged through
ideal-cache scopes, so a single run yields the traffic at *every*
level of a hierarchical machine — which is the whole point of the
cache-oblivious construction.

Theorem 3 gives the bandwidth Θ(mnr/√M + mn + nr + mr) (all four
size regimes of its proof are exercised in the benches), and
Claim 3.3 the latency Θ(n³/M^{3/2}) on recursive block storage vs
Θ(n³/M) on column-major storage.
"""

from __future__ import annotations

from repro.machine.core import ModelError
from repro.matrices.tracked import BlockRef, footprint
from repro.sequential.flops import gemm_flops
from repro.util.imath import split_point


def rmatmul(C: BlockRef, A: BlockRef, B: BlockRef, *, subtract: bool = False) -> None:
    """``C += A·B`` (or ``-=`` with ``subtract``), cache-obliviously.

    All three blocks must live on the same machine.  ``C`` is both
    read (accumulated into) and written; overlapping ``A``/``B``
    operands (e.g. a symmetric update's two views of one block) are
    handled naturally because footprints are address-set unions.
    """
    m, k = A.shape
    k2, r = B.shape
    cm, cr = C.shape
    if k != k2 or cm != m or cr != r:
        raise ValueError(
            f"shape mismatch: C{C.shape} += A{A.shape} · B{B.shape}"
        )
    if C.matrix.machine is not A.matrix.machine or C.matrix.machine is not B.matrix.machine:
        raise ValueError("rmatmul operands must share one machine")
    _rmatmul(C, A, B, -1.0 if subtract else 1.0)


def _rmatmul(C: BlockRef, A: BlockRef, B: BlockRef, sign: float) -> None:
    machine = C.matrix.machine
    m, k = A.shape
    r = B.shape[1]
    reads = footprint([A, B, C])
    # Batched leaf vs interpreted scope: see _rsyrk for the contract.
    if machine.batched:
        with machine.profiler.span("matmul"):
            if machine.leaf_charge(reads, C.intervals, write_covered=True):
                c = C.peek()
                c += sign * (A.peek() @ B.peek())
                C.poke(c)
                machine.add_flops(gemm_flops(m, k, r))
                return
            with machine.scope(reads, C.intervals, write_covered=True):
                _rmatmul_recurse(C, A, B, sign, machine, m, k, r)
        return
    with machine.profiler.span("matmul"), machine.scope(
        reads, C.intervals, write_covered=True
    ) as sc:
        if sc.fits:
            c = C.peek()
            c += sign * (A.peek() @ B.peek())
            C.poke(c)
            machine.add_flops(gemm_flops(m, k, r))
            return
        _rmatmul_recurse(C, A, B, sign, machine, m, k, r)


def _rmatmul_recurse(
    C: BlockRef, A: BlockRef, B: BlockRef, sign: float, machine,
    m: int, k: int, r: int,
) -> None:
    """Split a too-big multiplication (shared by both charge paths)."""
    big = max(m, k, r)
    if big == 1:
        raise ModelError(
            f"fast memory (M={machine.M}) cannot hold even a "
            "1x1x1 multiplication working set"
        )
    if m == big:
        h = split_point(m)
        a_top, a_bot = A.split_rows(h)
        c_top, c_bot = C.split_rows(h)
        _rmatmul(c_top, a_top, B, sign)
        _rmatmul(c_bot, a_bot, B, sign)
    elif k == big:
        h = split_point(k)
        a_left, a_right = A.split_cols(h)
        b_top, b_bot = B.split_rows(h)
        _rmatmul(C, a_left, b_top, sign)
        _rmatmul(C, a_right, b_bot, sign)
    else:
        h = split_point(r)
        b_left, b_right = B.split_cols(h)
        c_left, c_right = C.split_cols(h)
        _rmatmul(c_left, A, b_left, sign)
        _rmatmul(c_right, A, b_right, sign)
