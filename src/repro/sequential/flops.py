"""Exact arithmetic-operation counts (paper §3.1.3).

All the sequential algorithms perform *the same* scalar operations, up
to reordering (Equations 5–6): entry ``L(i, j)`` (0-based, ``i >= j``)
costs ``j`` multiplications, ``j`` subtractions and one division (one
square root on the diagonal) — ``2j + 1`` flops.  Summing gives the
exact total

    A(n) = (n³ − n)/3 + (n² + n)/2  =  n³/3 + Θ(n²),

and because the blocked/recursive algorithms perform exactly the same
scalar work partitioned into kernels, the kernel counts below are
exact too — the test suite checks that every algorithm's counted
flops equal ``cholesky_flops(n)`` to the word.
"""

from __future__ import annotations

from repro.util.validation import check_nonnegative_int


def cholesky_flops(n: int) -> int:
    """Exact flops of an ``n × n`` Cholesky factorization.

    ``sum_{j=0}^{n-1} (n - j)(2j + 1) = (n³ − n)/3 + (n² + n)/2``.
    """
    n = check_nonnegative_int("n", n)
    return (n**3 - n) // 3 + (n**2 + n) // 2


def gemm_flops(m: int, k: int, r: int) -> int:
    """Exact flops of ``C -= A·B`` with A ``m×k``, B ``k×r``.

    Each of the ``m·r`` output entries takes ``k`` multiplications and
    ``k`` additions/subtractions (fused accumulate into C).
    """
    return 2 * m * k * r


def syrk_flops(m: int, k: int) -> int:
    """Exact flops of the symmetric update ``C -= A·Aᵀ`` (lower only).

    ``m(m+1)/2`` stored entries, ``2k`` flops each.
    """
    return m * (m + 1) * k


def trsm_flops(m: int, b: int) -> int:
    """Exact flops of ``X = A·L^{-T}`` with A ``m×b``, L ``b×b``.

    Each of the ``m`` rows performs a length-``b`` triangular back
    substitution: ``sum_{j=0}^{b-1} (2j + 1) = b²`` flops.
    """
    return m * b * b


def column_scale_flops(m: int) -> int:
    """Exact flops of finishing one column: one sqrt + ``m−1`` divisions."""
    if m < 1:
        raise ValueError("column length must be >= 1")
    return m


def column_update_flops(m: int) -> int:
    """Exact flops of one rank-1 column update of length ``m``
    (``m`` multiplications + ``m`` subtractions)."""
    return 2 * m
