"""Registry of the sequential Cholesky algorithms.

Single mapping from the names used in Table 1 and the reports to the
callables, so the benchmark harness, the CLI and the tests all sweep
the same census.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.abft import (
    AbftConfig,
    ChecksumGuardian,
    SilentCorruptionError,
    factor_attestation,
)
from repro.abft.guardian import AbftStats
from repro.matrices.tracked import TrackedMatrix
from repro.results import RunResult, freeze_params
from repro.schedule import compiled_session, note_run_mode
from repro.sequential.blocked_right import lapack_blocked_right
from repro.sequential.lapack_blocked import lapack_blocked
from repro.sequential.naive import (
    naive_left_looking,
    naive_right_looking,
    naive_up_looking,
)
from repro.sequential.square_recursive import square_recursive
from repro.sequential.toledo import toledo
from repro.util.validation import NotPositiveDefiniteError, check_finite

Algorithm = Callable[..., np.ndarray]

ALGORITHMS: Dict[str, Algorithm] = {
    "naive-left": naive_left_looking,
    "naive-right": naive_right_looking,
    "naive-up": naive_up_looking,
    "lapack": lapack_blocked,
    "lapack-right": lapack_blocked_right,
    "toledo": toledo,
    "square-recursive": square_recursive,
}
"""Name → algorithm map (Table 1 census)."""


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`run_algorithm`."""
    return tuple(sorted(ALGORITHMS))


def run_algorithm(
    name: str,
    A: TrackedMatrix,
    *,
    spd_shift: float | None = None,
    abft: "AbftConfig | dict | bool | None" = None,
    **params,
) -> RunResult:
    """Run a registered algorithm on a tracked matrix.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms`.
    A:
        The tracked operand (overwritten with its factor).  Validated
        up front: an operand containing NaN or Inf is rejected with a
        :class:`~repro.util.validation.ValidationError` *before* any
        simulation charges accrue — a poisoned input would otherwise
        surface as an opaque failure deep inside a panel factorization.
    spd_shift:
        Optional non-SPD degradation path.  A Cholesky on an input
        that is not positive definite raises a structured
        :class:`~repro.util.validation.NotPositiveDefiniteError`
        (carrying the failing stage); with ``spd_shift=s`` the run is
        retried **once** on ``A + s·I`` (machine counters reset, so the
        measurement reflects only the successful attempt) and the
        result records the shift in its params.  A common choice is a
        small multiple of the largest diagonal entry.
    abft:
        Checksum protection (:class:`~repro.abft.AbftConfig`, a config
        dict, or ``True`` for defaults).  The run is guarded by a
        :class:`~repro.abft.ChecksumGuardian`: single silent faults
        are corrected in place, uncorrectable double faults restore
        the input snapshot and re-run (counters reset, attempt-salted
        fault schedule) up to ``max_attempts`` times before the
        :class:`~repro.abft.SilentCorruptionError` propagates.
        Protected runs bypass the schedule JIT — a compiled replay
        could never observe (let alone heal) an injected silent fault.
        The result carries ``verified=True`` and the ``abft`` counter
        group including a factor attestation digest.
    params:
        Algorithm-specific keywords (e.g. ``block=`` for ``"lapack"``).

    Returns the lower factor ``L`` as a
    :class:`~repro.results.RunResult` — an ``np.ndarray`` subclass, so
    every pre-existing array-shaped use keeps working, with the run's
    machine handle, configuration and ``.measurement`` attached.
    """
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    # Direct array check, not a tracked read: validation is free in the
    # communication model.
    check_finite("A", A.data)
    recorded = dict(params)
    cfg = AbftConfig.coerce(abft)
    if cfg is not None:
        return _run_protected(name, A, cfg, spd_shift, recorded, params)
    snapshot = A.data.copy() if spd_shift is not None else None
    note_run_mode("off")

    def invoke() -> np.ndarray:
        # Normalize the failure shape: some algorithms raise the
        # structured error themselves (via dense_cholesky), the naive
        # ones surface numpy's bare LinAlgError at the failing pivot.
        # An eligible (pristine, unobserved) run goes through the
        # schedule JIT: replay a cached same-shape schedule, or run
        # interpreted under capture.  Re-checked per attempt — the
        # spd_shift retry resets the machine back to eligibility.
        session = compiled_session(name, A, params)
        try:
            if session is not None:
                return session.run(lambda: ALGORITHMS[name](A, **params))
            return ALGORITHMS[name](A, **params)
        except NotPositiveDefiniteError:
            raise
        except np.linalg.LinAlgError as exc:
            raise NotPositiveDefiniteError(str(exc), stage=name) from exc

    try:
        L = invoke()
    except NotPositiveDefiniteError:
        if snapshot is None or spd_shift <= 0:
            raise
        A.data[:] = snapshot
        A.data[np.diag_indices_from(A.data)] += float(spd_shift)
        A.machine.reset()
        L = invoke()
        recorded["spd_shift"] = float(spd_shift)
    return RunResult(
        L,
        algorithm=name,
        layout=A.layout.name,
        n=A.layout.n,
        params=freeze_params(recorded),
        machine=A.machine,
    )


def _run_protected(
    name: str,
    A: TrackedMatrix,
    cfg: AbftConfig,
    spd_shift: "float | None",
    recorded: dict,
    params: dict,
) -> RunResult:
    """The checksum-guarded twin of the :func:`run_algorithm` body.

    Bypasses the schedule JIT entirely (``note_run_mode("off")``): a
    replayed :class:`~repro.schedule.TransferSchedule` recomputes the
    factor from captured transfers without running the algorithm, so
    it could silently mask an injected fault instead of detecting it.
    Uncorrectable double faults restore the pristine input, reset the
    machine (the measurement reflects the successful attempt, the
    spd_shift precedent) and re-run under an attempt-salted fault
    schedule.
    """
    machine = A.machine
    plan = cfg.plan if cfg.plan is not None else (
        machine.faults.plan if machine.faults is not None else None
    )
    note_run_mode("off")
    stats = AbftStats()
    pristine = A.data.copy()
    shifted = False
    attempt = 0

    def restore() -> None:
        A.data[:] = pristine
        if shifted:
            A.data[np.diag_indices_from(A.data)] += float(spd_shift)
        machine.reset()

    while True:
        stats.attempts = attempt + 1
        guardian = ChecksumGuardian(A, cfg, plan, attempt=attempt, stats=stats)
        machine.abft = guardian
        try:
            guardian.initialize()
            try:
                L = ALGORITHMS[name](A, **params)
            except NotPositiveDefiniteError:
                raise
            except np.linalg.LinAlgError as exc:
                raise NotPositiveDefiniteError(str(exc), stage=name) from exc
            guardian.finalize()
            break
        except SilentCorruptionError:
            attempt += 1
            if attempt >= cfg.max_attempts:
                raise
            restore()
        except NotPositiveDefiniteError:
            if shifted or spd_shift is None or spd_shift <= 0:
                raise
            shifted = True
            recorded["spd_shift"] = float(spd_shift)
            restore()
        finally:
            machine.abft = None
    return RunResult(
        L,
        algorithm=name,
        layout=A.layout.name,
        n=A.layout.n,
        params=freeze_params(recorded),
        machine=machine,
        verified=True,
        abft={
            "config": cfg.to_dict(),
            "stats": stats.to_dict(),
            "attestation": factor_attestation(L),
        },
    )
