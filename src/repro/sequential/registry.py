"""Registry of the sequential Cholesky algorithms.

Single mapping from the names used in Table 1 and the reports to the
callables, so the benchmark harness, the CLI and the tests all sweep
the same census.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.matrices.tracked import TrackedMatrix
from repro.results import RunResult, freeze_params
from repro.schedule import compiled_session, note_run_mode
from repro.sequential.blocked_right import lapack_blocked_right
from repro.sequential.lapack_blocked import lapack_blocked
from repro.sequential.naive import (
    naive_left_looking,
    naive_right_looking,
    naive_up_looking,
)
from repro.sequential.square_recursive import square_recursive
from repro.sequential.toledo import toledo
from repro.util.validation import NotPositiveDefiniteError, check_finite

Algorithm = Callable[..., np.ndarray]

ALGORITHMS: Dict[str, Algorithm] = {
    "naive-left": naive_left_looking,
    "naive-right": naive_right_looking,
    "naive-up": naive_up_looking,
    "lapack": lapack_blocked,
    "lapack-right": lapack_blocked_right,
    "toledo": toledo,
    "square-recursive": square_recursive,
}
"""Name → algorithm map (Table 1 census)."""


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`run_algorithm`."""
    return tuple(sorted(ALGORITHMS))


def run_algorithm(
    name: str,
    A: TrackedMatrix,
    *,
    spd_shift: float | None = None,
    **params,
) -> RunResult:
    """Run a registered algorithm on a tracked matrix.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms`.
    A:
        The tracked operand (overwritten with its factor).  Validated
        up front: an operand containing NaN or Inf is rejected with a
        :class:`~repro.util.validation.ValidationError` *before* any
        simulation charges accrue — a poisoned input would otherwise
        surface as an opaque failure deep inside a panel factorization.
    spd_shift:
        Optional non-SPD degradation path.  A Cholesky on an input
        that is not positive definite raises a structured
        :class:`~repro.util.validation.NotPositiveDefiniteError`
        (carrying the failing stage); with ``spd_shift=s`` the run is
        retried **once** on ``A + s·I`` (machine counters reset, so the
        measurement reflects only the successful attempt) and the
        result records the shift in its params.  A common choice is a
        small multiple of the largest diagonal entry.
    params:
        Algorithm-specific keywords (e.g. ``block=`` for ``"lapack"``).

    Returns the lower factor ``L`` as a
    :class:`~repro.results.RunResult` — an ``np.ndarray`` subclass, so
    every pre-existing array-shaped use keeps working, with the run's
    machine handle, configuration and ``.measurement`` attached.
    """
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    # Direct array check, not a tracked read: validation is free in the
    # communication model.
    check_finite("A", A.data)
    recorded = dict(params)
    snapshot = A.data.copy() if spd_shift is not None else None
    note_run_mode("off")

    def invoke() -> np.ndarray:
        # Normalize the failure shape: some algorithms raise the
        # structured error themselves (via dense_cholesky), the naive
        # ones surface numpy's bare LinAlgError at the failing pivot.
        # An eligible (pristine, unobserved) run goes through the
        # schedule JIT: replay a cached same-shape schedule, or run
        # interpreted under capture.  Re-checked per attempt — the
        # spd_shift retry resets the machine back to eligibility.
        session = compiled_session(name, A, params)
        try:
            if session is not None:
                return session.run(lambda: ALGORITHMS[name](A, **params))
            return ALGORITHMS[name](A, **params)
        except NotPositiveDefiniteError:
            raise
        except np.linalg.LinAlgError as exc:
            raise NotPositiveDefiniteError(str(exc), stage=name) from exc

    try:
        L = invoke()
    except NotPositiveDefiniteError:
        if snapshot is None or spd_shift <= 0:
            raise
        A.data[:] = snapshot
        A.data[np.diag_indices_from(A.data)] += float(spd_shift)
        A.machine.reset()
        L = invoke()
        recorded["spd_shift"] = float(spd_shift)
    return RunResult(
        L,
        algorithm=name,
        layout=A.layout.name,
        n=A.layout.n,
        params=freeze_params(recorded),
        machine=A.machine,
    )
