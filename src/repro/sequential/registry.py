"""Registry of the sequential Cholesky algorithms.

Single mapping from the names used in Table 1 and the reports to the
callables, so the benchmark harness, the CLI and the tests all sweep
the same census.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.matrices.tracked import TrackedMatrix
from repro.results import RunResult, freeze_params
from repro.sequential.blocked_right import lapack_blocked_right
from repro.sequential.lapack_blocked import lapack_blocked
from repro.sequential.naive import (
    naive_left_looking,
    naive_right_looking,
    naive_up_looking,
)
from repro.sequential.square_recursive import square_recursive
from repro.sequential.toledo import toledo

Algorithm = Callable[..., np.ndarray]

ALGORITHMS: Dict[str, Algorithm] = {
    "naive-left": naive_left_looking,
    "naive-right": naive_right_looking,
    "naive-up": naive_up_looking,
    "lapack": lapack_blocked,
    "lapack-right": lapack_blocked_right,
    "toledo": toledo,
    "square-recursive": square_recursive,
}
"""Name → algorithm map (Table 1 census)."""


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`run_algorithm`."""
    return tuple(sorted(ALGORITHMS))


def run_algorithm(name: str, A: TrackedMatrix, **params) -> RunResult:
    """Run a registered algorithm on a tracked matrix.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms`.
    A:
        The tracked operand (overwritten with its factor).
    params:
        Algorithm-specific keywords (e.g. ``block=`` for ``"lapack"``).

    Returns the lower factor ``L`` as a
    :class:`~repro.results.RunResult` — an ``np.ndarray`` subclass, so
    every pre-existing array-shaped use keeps working, with the run's
    machine handle, configuration and ``.measurement`` attached.
    """
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    L = ALGORITHMS[name](A, **params)
    return RunResult(
        L,
        algorithm=name,
        layout=A.layout.name,
        n=A.layout.n,
        params=freeze_params(params),
        machine=A.machine,
    )
