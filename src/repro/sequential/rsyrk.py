"""Recursive symmetric rank-k update: ``C -= A·Aᵀ`` on a diagonal block.

The symmetric twin of Algorithm 7, used by the recursive Cholesky
algorithms for their trailing update (Algorithm 6 line 6 and the
diagonal part of Algorithm 5 line 5).  Splitting ``C`` into quadrants
gives two recursive symmetric updates (C11, C22) and one general
recursive multiplication (C21) — the standard SYRK recursion.

Counting the symmetric flops exactly (``m(m+1)k`` per update rather
than ``2m²k``) is what lets the test suite assert that every
recursive Cholesky performs *exactly* ``cholesky_flops(n)`` scalar
operations, i.e. the same arithmetic as the naïve algorithms up to
reordering (§3.1.3).
"""

from __future__ import annotations

from repro.machine.core import ModelError
from repro.matrices.tracked import BlockRef, footprint
from repro.sequential.flops import syrk_flops
from repro.sequential.rmatmul import _rmatmul
from repro.util.imath import split_point


def rsyrk(C: BlockRef, A: BlockRef) -> None:
    """``C -= A·Aᵀ`` with ``C`` square symmetric (lower referenced).

    ``C`` must be square with as many rows as ``A``; only the lower
    triangle of the result is meaningful (the strictly-upper part of
    a dense ``C`` block is updated too, harmlessly, to keep the
    stored operand symmetric; packed layouts charge the stored lower
    entries only either way).
    """
    m, k = A.shape
    if C.shape != (m, m):
        raise ValueError(f"C{C.shape} must be {m}x{m} for rsyrk with A{A.shape}")
    if C.matrix.machine is not A.matrix.machine:
        raise ValueError("rsyrk operands must share one machine")
    _rsyrk(C, A)


def _rsyrk(C: BlockRef, A: BlockRef) -> None:
    machine = C.matrix.machine
    m, k = A.shape
    reads = footprint([A, C])
    # Batched leaf: a fitting subproblem takes one coalesced charge
    # (a batch hit the schedule recorder captures as a single scope
    # set) instead of an interpreted context-managed scope.  A
    # non-fitting subproblem still opens the scope — it may be the
    # first fit of an *outer* hierarchy level.  Counts are identical
    # to the element-wise scope path; the goldens pin that.
    if machine.batched:
        with machine.profiler.span("syrk"):
            if machine.leaf_charge(reads, C.intervals, write_covered=True):
                c = C.peek()
                a = A.peek()
                c -= a @ a.T
                C.poke(c)
                machine.add_flops(syrk_flops(m, k))
                return
            with machine.scope(reads, C.intervals, write_covered=True):
                _rsyrk_recurse(C, A, machine, m, k)
        return
    with machine.profiler.span("syrk"), machine.scope(
        reads, C.intervals, write_covered=True
    ) as sc:
        if sc.fits:
            c = C.peek()
            a = A.peek()
            c -= a @ a.T
            C.poke(c)
            machine.add_flops(syrk_flops(m, k))
            return
        _rsyrk_recurse(C, A, machine, m, k)


def _rsyrk_recurse(C: BlockRef, A: BlockRef, machine, m: int, k: int) -> None:
    """Split a too-big symmetric update (shared by both charge paths)."""
    if max(m, k) == 1:
        raise ModelError(
            f"fast memory (M={machine.M}) cannot hold a 1x1 "
            "symmetric update working set"
        )
    if k > m:
        # long inner dimension: split A's columns, two half updates
        h = split_point(k)
        a_left, a_right = A.split_cols(h)
        _rsyrk(C, a_left)
        _rsyrk(C, a_right)
        return
    h = split_point(m)
    c11, _c12, c21, c22 = C.quadrants(h, h)
    a_top, a_bot = A.split_rows(h)
    _rsyrk(c11, a_top)
    _rmatmul(c21, a_bot, a_top.T, -1.0)
    _rsyrk(c22, a_bot)
