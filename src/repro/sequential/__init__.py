"""Sequential Cholesky algorithms (the paper's Section 3.1–3.2).

Every algorithm here:

* computes a *real* factorization ``A = L Lᵀ`` (verified against a
  reference Cholesky in the tests),
* runs over any storage layout of :mod:`repro.layouts`,
* charges its data movement to the machine its operand is bound to,
* counts its floating-point operations exactly (§3.1.3).

The census, with their Table 1 rows:

=====================  ============================================
function               paper artifact
=====================  ============================================
``naive_left_looking``  Algorithm 2 (naïve left-looking)
``naive_right_looking`` Algorithm 3 (naïve right-looking)
``naive_up_looking``    the row-wise twin the paper mentions
``lapack_blocked``      Algorithm 4 (LAPACK POTRF)
``toledo``              Algorithm 5 (rectangular recursive, [Tol97])
``square_recursive``    Algorithm 6 (square recursive, [AP00])
``rmatmul``             Algorithm 7 (recursive matmul, [FLPR99])
``rtrsm``               Algorithm 8 (recursive triangular solve)
``rsyrk``               the symmetric rank-k twin of Algorithm 7
=====================  ============================================
"""

from repro.sequential.flops import (
    cholesky_flops,
    gemm_flops,
    syrk_flops,
    trsm_flops,
)
from repro.sequential.naive import (
    naive_left_looking,
    naive_right_looking,
    naive_up_looking,
)
from repro.sequential.lapack_blocked import lapack_blocked
from repro.sequential.rmatmul import rmatmul
from repro.sequential.rsyrk import rsyrk
from repro.sequential.rtrsm import rtrsm
from repro.sequential.square_recursive import square_recursive
from repro.sequential.toledo import toledo
from repro.sequential.registry import ALGORITHMS, available_algorithms, run_algorithm
from repro.sequential.solve import (
    back_substitution,
    cholesky_solve,
    forward_substitution,
)

__all__ = [
    "cholesky_flops",
    "gemm_flops",
    "syrk_flops",
    "trsm_flops",
    "naive_left_looking",
    "naive_right_looking",
    "naive_up_looking",
    "lapack_blocked",
    "toledo",
    "square_recursive",
    "rmatmul",
    "rsyrk",
    "rtrsm",
    "ALGORITHMS",
    "available_algorithms",
    "run_algorithm",
    "forward_substitution",
    "back_substitution",
    "cholesky_solve",
]
