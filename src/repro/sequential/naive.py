"""The naïve column-wise (and row-wise) Cholesky algorithms.

Algorithms 2 and 3 of the paper, plus the row-wise ("up-looking")
twin it mentions.  These are the baselines of Table 1: bandwidth
Θ(n³) — a factor ``sqrt(M)`` above the lower bound — because every
column update re-reads previously computed columns.

The implementations follow the paper's two regimes exactly:

* ``M >= 2n`` — two columns fit: whole-column transfers, giving the
  paper's *exact* counts (asserted to the word in the tests):

  - left-looking:  words = n³/6 + n² + 5n/6, messages = n²/2 + 3n/2,
  - right-looking: words = n³/3 + n² + 2n/3, messages = n² + n
    (messages under column-major storage);

* ``4 <= M < 2n`` — the segmented regime of §3.1.4–3.1.5: columns are
  streamed through fast memory in pivot-pinned segments, with the
  same Θ(n³) bandwidth and O(n³/M) messages.
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.core import ModelError
from repro.matrices.tracked import TrackedMatrix
from repro.sequential.flops import column_scale_flops, column_update_flops


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ModelError(msg)


def naive_left_looking(A: TrackedMatrix) -> np.ndarray:
    """Algorithm 2: naïve left-looking Cholesky.

    Column ``j`` is finalized by subtracting the contributions of all
    previous columns (re-read from slow memory each time), then scaled
    by the square root of its pivot.

    When the machine's batched fast path is on, the inner re-read loop
    charges one :class:`~repro.util.intervals.RunBatch` per column and
    computes the update as a single GEMV — the counts, the trace (after
    batch expansion), and the numbers match the element-wise loop
    exactly.

    Returns the lower factor ``L`` (also left in ``A``'s lower
    triangle).
    """
    n, machine, M = A.n, A.machine, A.machine.M
    if M >= 2 * n:
        if machine.batched:
            _left_whole_columns_batched(A)
        else:
            _left_whole_columns(A)
    else:
        _require(M >= 4, f"naïve left-looking needs M >= 4, got M={M}")
        if machine.batched:
            _left_segmented_batched(A)
        else:
            _left_segmented(A)
    machine.release_all()
    return A.lower()


def _left_whole_columns(A: TrackedMatrix) -> None:
    n, machine = A.n, A.machine
    prof = machine.profiler
    for j in range(n):
        with prof.span("column", j=j):
            colj_ref = A.block(j, n, j, j + 1)
            colj = colj_ref.load()
            for k in range(j):
                colk_ref = A.block(j, n, k, k + 1)
                colk = colk_ref.load()
                colj -= colk * colk[0, 0]
                machine.add_flops(column_update_flops(n - j))
                colk_ref.release()
            _scale_column_in_place(colj, machine)
            colj_ref.store(colj)
            colj_ref.release()


def _left_whole_columns_batched(A: TrackedMatrix) -> None:
    n, machine = A.n, A.machine
    prof = machine.profiler
    for j in range(n):
        with prof.span("column", j=j):
            colj_ref = A.block(j, n, j, j + 1)
            colj = colj_ref.load()
            if j:
                # one transfer per previous column k, in k order; each
                # is held beside the resident colj, exactly like the
                # load/release loop (default peak_extra = n - j)
                machine.read_batch(A.column_batch(j, n, 0, j))
                colj -= A.data[j:n, :j] @ A.data[j, :j, None]
                machine.add_flops(j * column_update_flops(n - j))
            _scale_column_in_place(colj, machine)
            colj_ref.store(colj)
            colj_ref.release()


def _left_segmented(A: TrackedMatrix) -> None:
    n, machine, M = A.n, A.machine, A.machine.M
    prof = machine.profiler
    seg = max(1, (M - 2) // 2)  # segment + sibling segment + 2 pinned words
    for j in range(n):
        with prof.span("column", j=j):
            pivot: float | None = None
            pivot_ref = A.block(j, j + 1, j, j + 1)
            for r in range(j, n, seg):
                re = min(r + seg, n)
                seg_ref = A.block(r, re, j, j + 1)
                vals = seg_ref.load()
                for k in range(j):
                    segk_ref = A.block(r, re, k, k + 1)
                    segk = segk_ref.load()
                    ajk_ref = A.block(j, j + 1, k, k + 1)
                    ajk = ajk_ref.load()[0, 0]
                    vals -= segk * ajk
                    machine.add_flops(column_update_flops(re - r))
                    segk_ref.release()
                    ajk_ref.release()
                if r == j:
                    _scale_column_in_place(vals, machine)
                    pivot = float(vals[0, 0])
                else:
                    vals /= pivot
                    machine.add_flops(re - r)
                seg_ref.store(vals)
                seg_ref.release()
                if r == j:
                    # pin the finished pivot (one word) for later segments
                    pivot_ref.load()
            pivot_ref.release()


def _left_segmented_batched(A: TrackedMatrix) -> None:
    n, machine, M = A.n, A.machine, A.machine.M
    prof = machine.profiler
    seg = max(1, (M - 2) // 2)
    for j in range(n):
        with prof.span("column", j=j):
            pivot: float | None = None
            pivot_ref = A.block(j, j + 1, j, j + 1)
            for r in range(j, n, seg):
                re = min(r + seg, n)
                seg_ref = A.block(r, re, j, j + 1)
                vals = seg_ref.load()
                if j:
                    # element-wise order: (segment k, multiplier a_jk)
                    # pairs; both are held at once beside the resident
                    # segment.  In the pivot segment (r == j) the
                    # multiplier's address lies inside the loaded
                    # segment, so it adds no extra word there.
                    rects = []
                    for k in range(j):
                        rects.append((r, re, k, k + 1))
                        rects.append((j, j + 1, k, k + 1))
                    machine.read_batch(
                        A.rect_batch(rects),
                        peak_extra=(re - r) + (1 if r > j else 0),
                    )
                    vals -= A.data[r:re, :j] @ A.data[j, :j, None]
                    machine.add_flops(j * column_update_flops(re - r))
                if r == j:
                    _scale_column_in_place(vals, machine)
                    pivot = float(vals[0, 0])
                else:
                    vals /= pivot
                    machine.add_flops(re - r)
                seg_ref.store(vals)
                seg_ref.release()
                if r == j:
                    pivot_ref.load()
            pivot_ref.release()


def naive_right_looking(A: TrackedMatrix) -> np.ndarray:
    """Algorithm 3: naïve right-looking Cholesky.

    Column ``j`` is finalized first, then immediately pushed into
    every trailing column (each read, updated, and written back) —
    twice the bandwidth of the left-looking variant, same Θ(n³).

    Returns the lower factor ``L``.
    """
    n, machine, M = A.n, A.machine, A.machine.M
    if M >= 2 * n:
        if machine.batched:
            _right_whole_columns_batched(A)
        else:
            _right_whole_columns(A)
    else:
        _require(M >= 4, f"naïve right-looking needs M >= 4, got M={M}")
        if machine.batched:
            _right_segmented_batched(A)
        else:
            _right_segmented(A)
    machine.release_all()
    return A.lower()


def _right_whole_columns(A: TrackedMatrix) -> None:
    n, machine = A.n, A.machine
    prof = machine.profiler
    for j in range(n):
        with prof.span("column", j=j):
            colj_ref = A.block(j, n, j, j + 1)
            colj = colj_ref.load()
            _scale_column_in_place(colj, machine)
            for k in range(j + 1, n):
                colk_ref = A.block(k, n, k, k + 1)
                colk = colk_ref.load()
                colk -= colj[k - j :] * colj[k - j, 0]
                machine.add_flops(column_update_flops(n - k))
                colk_ref.store(colk)
                colk_ref.release()
            colj_ref.store(colj)
            colj_ref.release()


def _right_whole_columns_batched(A: TrackedMatrix) -> None:
    n, machine = A.n, A.machine
    prof = machine.profiler
    for j in range(n):
        with prof.span("column", j=j):
            colj_ref = A.block(j, n, j, j + 1)
            colj = colj_ref.load()
            _scale_column_in_place(colj, machine)
            if j + 1 < n:
                # each trailing column k is read, updated and written
                # back: (read colk, write colk) pairs in k order
                rects = []
                flags = []
                for k in range(j + 1, n):
                    rects.append((k, n, k, k + 1))
                    rects.append((k, n, k, k + 1))
                    flags.extend((False, True))
                v = colj[1:, 0]
                # only the stored (lower-triangular) entries change
                A.data[j + 1 : n, j + 1 : n] -= np.tril(np.outer(v, v))
                machine.charge_intervals(A.rect_batch(rects, is_write=flags))
                machine.add_flops((n - j - 1) * (n - j))
            colj_ref.store(colj)
            colj_ref.release()


def _right_segmented(A: TrackedMatrix) -> None:
    n, machine, M = A.n, A.machine, A.machine.M
    prof = machine.profiler
    # factorization phase: segment + pinned pivot word
    seg_f = max(1, M - 1)
    # update phase: two sibling segments + pinned multiplier word
    seg_u = max(1, (M - 1) // 2)
    for j in range(n):
        with prof.span("column", j=j):
            pivot: float | None = None
            pivot_ref = A.block(j, j + 1, j, j + 1)
            for r in range(j, n, seg_f):
                re = min(r + seg_f, n)
                seg_ref = A.block(r, re, j, j + 1)
                vals = seg_ref.load()
                if r == j:
                    _scale_column_in_place(vals, machine)
                    pivot = float(vals[0, 0])
                else:
                    vals /= pivot
                    machine.add_flops(re - r)
                seg_ref.store(vals)
                seg_ref.release()
                if r == j:
                    pivot_ref.load()
            pivot_ref.release()
            for k in range(j + 1, n):
                akj_ref = A.block(k, k + 1, j, j + 1)
                akj = akj_ref.load()[0, 0]
                for r in range(k, n, seg_u):
                    re = min(r + seg_u, n)
                    segj_ref = A.block(r, re, j, j + 1)
                    segk_ref = A.block(r, re, k, k + 1)
                    segj = segj_ref.load()
                    segk = segk_ref.load()
                    segk -= segj * akj
                    machine.add_flops(column_update_flops(re - r))
                    segk_ref.store(segk)
                    segj_ref.release()
                    segk_ref.release()
                akj_ref.release()


def _right_segmented_batched(A: TrackedMatrix) -> None:
    n, machine, M = A.n, A.machine, A.machine.M
    prof = machine.profiler
    seg_f = max(1, M - 1)
    seg_u = max(1, (M - 1) // 2)
    for j in range(n):
        with prof.span("column", j=j):
            pivot: float | None = None
            pivot_ref = A.block(j, j + 1, j, j + 1)
            # factorization phase is O(n / seg) transfers — element-wise
            for r in range(j, n, seg_f):
                re = min(r + seg_f, n)
                seg_ref = A.block(r, re, j, j + 1)
                vals = seg_ref.load()
                if r == j:
                    _scale_column_in_place(vals, machine)
                    pivot = float(vals[0, 0])
                else:
                    vals /= pivot
                    machine.add_flops(re - r)
                seg_ref.store(vals)
                seg_ref.release()
                if r == j:
                    pivot_ref.load()
            pivot_ref.release()
            for k in range(j + 1, n):
                akj_ref = A.block(k, k + 1, j, j + 1)
                akj = akj_ref.load()[0, 0]
                # per segment: read segj, read segk, write segk; both
                # sibling segments are held at once.  In the first
                # segment (r == k) the resident multiplier a_kj lies
                # inside the loaded segj, so that segment holds one
                # word fewer than its nominal 2·len.
                rects = []
                flags = []
                sizes = []
                for r in range(k, n, seg_u):
                    re = min(r + seg_u, n)
                    rects.append((r, re, j, j + 1))
                    rects.append((r, re, k, k + 1))
                    rects.append((r, re, k, k + 1))
                    flags.extend((False, False, True))
                    sizes.append(re - r)
                peak = 2 * sizes[0] - 1
                if len(sizes) > 1:
                    peak = max(peak, 2 * max(sizes[1:]))
                A.data[k:n, k] -= A.data[k:n, j] * akj
                machine.charge_intervals(
                    A.rect_batch(rects, is_write=flags),
                    peak_extra=peak,
                )
                machine.add_flops(2 * (n - k))
                akj_ref.release()


def naive_up_looking(A: TrackedMatrix) -> np.ndarray:
    """The row-wise naïve variant ("up-looking", §3.1.4 closing remark).

    Computes ``L`` one row at a time, re-reading all previous rows:
    the exact mirror of the left-looking algorithm, with identical
    counts when the matrix is stored row-major instead of
    column-major.  Implemented for the whole-row regime (``M >= 2n``).

    Returns the lower factor ``L``.
    """
    n, machine, M = A.n, A.machine, A.machine.M
    _require(
        M >= 2 * n,
        f"naïve up-looking is implemented for M >= 2n (got M={M}, n={n})",
    )
    prof = machine.profiler
    batched = machine.batched
    for i in range(n):
        with prof.span("row", i=i):
            rowi_ref = A.block(i, i + 1, 0, i + 1)
            rowi = rowi_ref.load()[0]
            if batched and i:
                # the i previous-row reads coalesce into one batch; the
                # solve itself stays sequential (rowi[j] feeds rowi[j+1])
                machine.read_batch(
                    A.rect_batch([(j, j + 1, 0, j + 1) for j in range(i)])
                )
                for j in range(i):
                    rowj = A.data[j, : j + 1]
                    rowi[j] = (rowi[j] - rowi[:j] @ rowj[:j]) / rowj[j]
                machine.add_flops(i * i)
            else:
                for j in range(i):
                    rowj_ref = A.block(j, j + 1, 0, j + 1)
                    rowj = rowj_ref.load()[0]
                    rowi[j] = (rowi[j] - rowi[:j] @ rowj[:j]) / rowj[j]
                    machine.add_flops(2 * j + 1)
                    rowj_ref.release()
            pivot = rowi[i] - rowi[:i] @ rowi[:i]
            if pivot <= 0:
                raise np.linalg.LinAlgError(
                    f"non-positive pivot {pivot!r}: matrix is not positive definite"
                )
            rowi[i] = math.sqrt(pivot)
            machine.add_flops(2 * i + 1)
            rowi_ref.store(rowi[None, :])
            rowi_ref.release()
    machine.release_all()
    return A.lower()


def _scale_column_in_place(col: np.ndarray, machine) -> None:
    """Finalize a column: sqrt the pivot, divide the rest by it."""
    if col[0, 0] <= 0:
        raise np.linalg.LinAlgError(
            f"non-positive pivot {col[0, 0]!r}: matrix is not positive definite"
        )
    col[0, 0] = math.sqrt(col[0, 0])
    if col.shape[0] > 1:
        col[1:] /= col[0, 0]
    machine.add_flops(column_scale_flops(col.shape[0]))
