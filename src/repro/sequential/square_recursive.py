"""Algorithm 6: the square recursive Cholesky of Ahmed–Pingali [AP00].

The star of the paper's upper bounds (Conclusion 5): factor the
leading half, triangular-solve the panel (Algorithm 8), symmetric-
rank-k update the trailing half (recursive SYRK), recurse — with *no*
tunable parameter.  Charged through ideal-cache scopes, one run
produces, at every level ``M`` of a hierarchy simultaneously,

    B(n) = O(n³/√M + n²)       (recurrence (13))
    L(n) = O(n³/M^{3/2})       (recurrence (14), block-contiguous
                                recursive storage)

which matches the lower bounds of Corollary 2.3 / 3.2 — the only
algorithm in the census that is bandwidth- *and* latency-optimal,
cache-obliviously, at all levels.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.tracked import BlockRef, TrackedMatrix
from repro.sequential.flops import cholesky_flops
from repro.sequential.kernels import dense_cholesky
from repro.sequential.rsyrk import _rsyrk
from repro.sequential.rtrsm import _rtrsm
from repro.util.imath import split_point


def square_recursive(A: TrackedMatrix) -> np.ndarray:
    """Cache-oblivious recursive Cholesky (Algorithm 6).

    Returns the lower factor ``L`` (left in ``A``'s lower triangle;
    the strictly-upper part of ``A`` is zeroed in the process).
    """
    _square_rchol(A.whole())
    A.machine.release_all()
    return A.lower()


def _square_rchol(A: BlockRef) -> None:
    machine = A.matrix.machine
    guard = machine.abft
    if guard is not None:
        guard.enter()
    try:
        _square_rchol_body(A, machine, guard)
    finally:
        if guard is not None:
            guard.exit()


def _square_rchol_body(A: BlockRef, machine, guard) -> None:
    n = A.rows
    ivs = A.intervals
    # Batched leaf vs interpreted scope: see _rsyrk for the contract.
    if machine.batched:
        with machine.profiler.span("chol"):
            if machine.leaf_charge(ivs, ivs):
                A.poke(dense_cholesky(A.peek()))
                machine.add_flops(cholesky_flops(n))
                if guard is not None:
                    guard.phase(A.r0, A.r1, A.c0, A.c1)
                return
            with machine.scope(ivs, ivs):
                _square_rchol_recurse(A, n, guard)
        return
    with machine.profiler.span("chol"), machine.scope(ivs, ivs) as sc:
        if sc.fits:
            A.poke(dense_cholesky(A.peek()))
            machine.add_flops(cholesky_flops(n))
            if guard is not None:
                guard.phase(A.r0, A.r1, A.c0, A.c1)
            return
        _square_rchol_recurse(A, n, guard)


def _square_rchol_recurse(A: BlockRef, n: int, guard=None) -> None:
    """Quadrant split (shared by both charge paths).

    n == 1 always fits (footprint of one word, M >= 1), so a
    non-fitting subproblem is guaranteed splittable.

    The ABFT phases only act at recursion depth 1 (see
    :meth:`~repro.abft.ChecksumGuardian.phase`): the top level commits
    each child's whole footprint after the child returns, so the
    checkpoint schedule is independent of how deep the recursion goes.
    """
    k = split_point(n)
    a11, _a12, a21, a22 = A.quadrants(k, k)
    _square_rchol(a11)             # L11 = Chol(A11)
    if guard is not None:
        guard.phase(a11.r0, a11.r1, a11.c0, a11.c1)
    _rtrsm(a21, a11.T)             # L21 = A21 · L11^{-T}
    if guard is not None:
        guard.phase(a21.r0, a21.r1, a21.c0, a21.c1)
    _rsyrk(a22, a21)               # A22 <- A22 - L21 L21^T
    if guard is not None:
        guard.phase(a22.r0, a22.r1, a22.c0, a22.c1)
    _square_rchol(a22)             # L22 = Chol(A22)
    if guard is not None:
        guard.phase(a22.r0, a22.r1, a22.c0, a22.c1)
