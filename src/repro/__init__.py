"""repro — Communication-Optimal Parallel and Sequential Cholesky.

A faithful, instrumented reproduction of Ballard, Demmel, Holtz &
Schwartz, *Communication-Optimal Parallel and Sequential Cholesky
Decomposition* (SPAA 2009 / arXiv:0902.2537): every algorithm the
paper analyzes, running on simulated machines that count exactly the
words and messages the paper's model counts, plus the lower-bound
reduction (matrix multiplication via Cholesky over masked values).

Quick start::

    import numpy as np
    from repro import (
        SequentialMachine, TrackedMatrix, make_layout,
        random_spd, run_algorithm,
    )

    n, M = 128, 3 * 16 * 16
    machine = SequentialMachine(M)
    A = TrackedMatrix(random_spd(n), make_layout("morton", n), machine)
    L = run_algorithm("square-recursive", A)     # RunResult: the factor
    assert np.allclose(L, np.linalg.cholesky(random_spd(n)))
    m = L.measurement                            # ...plus its counters
    print(m.words, m.messages)                   # Table 1, measured

Grid sweeps go through the declarative experiment engine — parallel
across a process pool and served from a content-addressed cache on
re-runs::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec.sequential(
        "demo", algorithms=["lapack", "square-recursive"],
        layouts=["morton"], ns=[64, 128], Ms=[192, 768],
    )
    result = run_experiment(spec, jobs=4)
    for m in result.measurements:
        print(m.algorithm, m.n, m.M, m.words, m.messages)

Deterministic fault injection rides on top: a
:class:`~repro.faults.FaultPlan` (seeded, pure-hash schedule) can be
attached to any network or machine run — message drops, duplicates,
corruptions, degraded links, fail-stops with buddy-checkpoint
recovery, transient read faults — and the same seed always produces
the same schedule and the same counters (``repro chaos`` on the
command line; see ``docs/FAULTS.md``)::

    from repro import FaultPlan, pxpotrf
    res = pxpotrf(random_spd(48), 12, 16,
                  faults=FaultPlan(seed=1, drop=0.02, failstops=((5, 1),)))
    assert np.allclose(res.L, np.linalg.cholesky(random_spd(48)))
    print(res.fault_stats.to_dict())     # realized faults + overhead

Subpackages: ``machine`` (DAM/hierarchy simulators), ``layouts``
(Figure 2 storage formats), ``matrices`` (generators + tracked
operands), ``sequential`` (Algorithms 2–8), ``parallel`` (network
simulator + Algorithm 9), ``starred``/``reduction`` (Table 3 +
Algorithm 1), ``bounds`` (Theorems 1–3, Corollaries 2.3/2.4/3.2),
``analysis`` (stability, sweeps, reports), ``experiments`` (the
parallel cached experiment engine), ``observability`` (phase spans,
metrics, Chrome-trace export — ``repro trace`` on the command line),
``faults`` (deterministic fault plans, injection and recovery —
``repro chaos`` on the command line).
"""

from repro.faults import (
    FaultError,
    FaultExhausted,
    FaultInjector,
    FaultPlan,
    FaultStats,
    RankFailed,
)
from repro.machine import (
    CapacityError,
    HierarchicalMachine,
    ModelError,
    SequentialMachine,
)
from repro.layouts import available_layouts, make_layout
from repro.matrices import TrackedMatrix, random_spd
from repro.sequential import (
    available_algorithms,
    cholesky_flops,
    lapack_blocked,
    naive_left_looking,
    naive_right_looking,
    rmatmul,
    rsyrk,
    rtrsm,
    run_algorithm,
    square_recursive,
    toledo,
)
from repro.parallel import ProcessorGrid, pxpotrf
from repro.reduction import multiply_via_cholesky
from repro.results import Measurement, RunResult
from repro.starred import ONE_STAR, ZERO_STAR
from repro.experiments import (
    ExperimentEngine,
    ExperimentSpec,
    ResultCache,
    run_experiment,
)
from repro.observability import (
    METRICS,
    SpanProfile,
    observe,
    phase_report,
    write_chrome_trace,
)
from repro.util.validation import NotPositiveDefiniteError, ValidationError

__version__ = "0.1.0"

__all__ = [
    "SequentialMachine",
    "HierarchicalMachine",
    "CapacityError",
    "ModelError",
    "make_layout",
    "available_layouts",
    "TrackedMatrix",
    "random_spd",
    "run_algorithm",
    "available_algorithms",
    "cholesky_flops",
    "naive_left_looking",
    "naive_right_looking",
    "lapack_blocked",
    "toledo",
    "square_recursive",
    "rmatmul",
    "rsyrk",
    "rtrsm",
    "pxpotrf",
    "ProcessorGrid",
    "multiply_via_cholesky",
    "ONE_STAR",
    "ZERO_STAR",
    "Measurement",
    "RunResult",
    "ExperimentSpec",
    "ExperimentEngine",
    "ResultCache",
    "run_experiment",
    "observe",
    "SpanProfile",
    "METRICS",
    "phase_report",
    "write_chrome_trace",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "FaultError",
    "FaultExhausted",
    "RankFailed",
    "ValidationError",
    "NotPositiveDefiniteError",
    "__version__",
]
