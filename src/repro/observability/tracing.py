"""Distributed tracing: W3C-style trace context across the serving cluster.

PR 2's phase spans (:mod:`repro.observability.spans`) attribute every
simulated word, message and flop to a phase — inside one process.  The
sharded cluster (PR 6) broke that accounting at the process boundary:
a job crosses client → front door → shard subprocess → engine → shared
store, and none of those hops shared a trace.  This module is the
cross-process half of the story:

* :class:`TraceContext` — the W3C-trace-context-shaped triple
  (``trace_id`` / ``span_id`` / ``parent_span_id``) minted once at job
  submission and carried through the versioned wire schema
  (``schema_version: 2`` in :mod:`repro.serving.api`).
* :class:`SpanRecord` — one finished stage of one job on one process
  (``frontdoor`` root and routing, shard-side ``queue`` /
  ``execute`` / ``cache`` / ``degrade``), with wall-clock bounds read
  from the *injected* clock and the simulated counter deltas the stage
  is responsible for.
* :class:`TraceLog` — the per-job accumulator a service keeps while a
  traced job is in flight; it derives span ids deterministically and
  can graft a :class:`~repro.observability.spans.SpanProfile` tree
  (the engine's in-process phase spans) under the ``execute`` span, so
  a single trace reaches from the client down to individual ``trsm``
  panels.
* :func:`validate_trace` — the cross-process extension of PR 2's
  leaf-reconciliation invariant: in every terminal trace the *leaf*
  spans' counter deltas sum exactly to the job's measured totals.
* :func:`cluster_trace_doc` / :func:`write_cluster_trace` — a merged
  Chrome ``trace_event`` export with one track per process (front door
  plus each shard), spans linked by trace id.

Determinism
-----------

Trace ids are **content-derived**: :func:`mint_trace_id` hashes the
job's spec cache key (:meth:`SpecPoint.key`), and span ids hash
``(trace_id, parent, name, occurrence)``.  With the inline cluster's
shared :class:`~repro.serving.clock.ManualClock` (time never moves
unless a test moves it), two runs of the same workload — at *any*
shard count — produce byte-identical :func:`canonical_trace` forms.
The canonical form deliberately excludes the ``process`` label and the
placement attributes (:data:`VOLATILE_ATTRS`): which shard served a
key is configuration, not structure.

Zero cost when disabled
-----------------------

Nothing here runs unless a job carries a :class:`TraceContext`
(``tracing=True`` on the service or cluster front door).  An untraced
job allocates no log, records no span and gains no wire field beyond a
``None`` — the golden equality suite asserts counters, span trees and
fault schedules are unchanged either way.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.util.serialization import atomic_write_json

#: Length of a trace id / span id in hex characters (W3C sizes).
TRACE_ID_HEX = 32
SPAN_ID_HEX = 16

#: Name of the root span every traced job gets (front door / service).
ROOT_SPAN = "job"

#: Attribute keys excluded from :func:`canonical_trace`: placement is
#: configuration (which shard owns a key changes with the ring), not
#: trace structure, and ``job_id`` comes from a process-global counter
#: — neither may break cross-run / cross-shard-count determinism.
VOLATILE_ATTRS = frozenset({"shard", "from_shard", "job_id"})

#: The three simulated counters a span attributes (headline fields of
#: :class:`~repro.results.Measurement`).
COUNTER_KEYS = ("words", "messages", "flops")


def mint_trace_id(key: str) -> str:
    """Derive the 32-hex trace id for a job from its spec cache key.

    Content-derived on purpose: the same spec always yields the same
    trace id, across runs, shard counts and processes — the property
    the inline determinism suite pins down.  Two jobs for an identical
    spec share a trace (they are the same logical work; the Chrome
    export disambiguates instances by ``job_id`` in the event args).
    """
    digest = hashlib.sha256(b"repro-trace:" + key.encode("ascii"))
    return digest.hexdigest()[:TRACE_ID_HEX]


def derive_span_id(
    trace_id: str, parent_span_id: "str | None", name: str, occurrence: int = 0
) -> str:
    """Deterministic 16-hex span id for one named child of a parent."""
    material = f"{trace_id}/{parent_span_id or '-'}/{name}/{occurrence}"
    return hashlib.sha256(material.encode("ascii")).hexdigest()[:SPAN_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """The propagated context: where in which trace am I?

    ``span_id`` names the span that owns the context — for the context
    a job carries over the wire, that is the *root* span the front
    door minted; shard-side spans parent themselves under it.
    """

    trace_id: str
    span_id: str
    parent_span_id: "str | None" = None

    def child(self, name: str, occurrence: int = 0) -> "TraceContext":
        """The context a child span of this one would carry."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(
                self.trace_id, self.span_id, name, occurrence
            ),
            parent_span_id=self.span_id,
        )

    def traceparent(self) -> str:
        """W3C ``traceparent`` header rendering (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def to_dict(self) -> dict:
        """JSON-ready wire form (rides in the schema-v2 job document)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceContext":
        """Rebuild from :meth:`to_dict` output."""
        parent = d.get("parent_span_id")
        return cls(
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            parent_span_id=None if parent is None else str(parent),
        )


def root_context(point_key: str) -> TraceContext:
    """Mint the root context for a job from its spec cache key."""
    trace_id = mint_trace_id(point_key)
    return TraceContext(
        trace_id=trace_id,
        span_id=derive_span_id(trace_id, None, ROOT_SPAN, 0),
        parent_span_id=None,
    )


@dataclass(frozen=True)
class SpanRecord:
    """One finished stage of one traced job on one process.

    ``words`` / ``messages`` / ``flops`` are the *inclusive* simulated
    counter deltas the stage is responsible for (children included,
    exactly like :class:`~repro.observability.spans.SpanProfile`); the
    reconciliation invariant (:func:`validate_trace`) is over leaves.
    ``t_start`` / ``t_end`` are readings of the recording process's
    injected clock.
    """

    trace_id: str
    span_id: str
    parent_span_id: "str | None"
    name: str
    process: str
    t_start: float = 0.0
    t_end: float = 0.0
    status: str = ""
    words: int = 0
    messages: int = 0
    flops: int = 0
    attrs: "tuple[tuple[str, Any], ...]" = ()

    @property
    def duration(self) -> float:
        """Seconds the stage was open (on the recording process's clock)."""
        return self.t_end - self.t_start

    def attr(self, key: str, default: Any = None) -> Any:
        """One attribute value by key."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict:
        """JSON-ready wire form (rides in the schema-v2 response)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "process": self.process,
            "t_start": float(self.t_start),
            "t_end": float(self.t_end),
            "status": self.status,
            "words": int(self.words),
            "messages": int(self.messages),
            "flops": int(self.flops),
            "attrs": [[k, v] for k, v in self.attrs],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SpanRecord":
        """Rebuild from :meth:`to_dict` output."""
        parent = d.get("parent_span_id")
        return cls(
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            parent_span_id=None if parent is None else str(parent),
            name=str(d["name"]),
            process=str(d.get("process", "")),
            t_start=float(d.get("t_start", 0.0)),
            t_end=float(d.get("t_end", 0.0)),
            status=str(d.get("status", "")),
            words=int(d.get("words", 0)),
            messages=int(d.get("messages", 0)),
            flops=int(d.get("flops", 0)),
            attrs=tuple(
                (str(k), v) for k, v in (d.get("attrs") or ())
            ),
        )


def _freeze_attrs(attrs: Mapping[str, Any]) -> tuple:
    return tuple(sorted((str(k), v) for k, v in attrs.items()))


class TraceLog:
    """Per-job span accumulator for one process (service or front door).

    Span ids are derived from ``(trace_id, parent, name, occurrence)``
    in append order, so the same sequence of stages always yields the
    same ids — no randomness, no global counters.
    """

    __slots__ = ("ctx", "process", "minted_root", "cursor", "_records",
                 "_occurrences")

    def __init__(
        self,
        ctx: TraceContext,
        *,
        process: str,
        minted_root: bool = False,
        start: float = 0.0,
    ) -> None:
        self.ctx = ctx
        self.process = str(process)
        #: Did this process mint the root context?  If so it must also
        #: emit the root record at finish; a context received over the
        #: wire belongs to the front door, which closes the root itself.
        self.minted_root = bool(minted_root)
        #: Where the next stage starts (stages tile the job's window).
        self.cursor = float(start)
        self._records: "list[SpanRecord]" = []
        self._occurrences: "dict[tuple[str | None, str], int]" = {}

    def _next_occurrence(self, parent: "str | None", name: str) -> int:
        key = (parent, name)
        n = self._occurrences.get(key, 0)
        self._occurrences[key] = n + 1
        return n

    def add(
        self,
        name: str,
        t_end: float,
        *,
        t_start: "float | None" = None,
        parent_span_id: "str | None" = None,
        status: str = "",
        words: int = 0,
        messages: int = 0,
        flops: int = 0,
        **attrs: Any,
    ) -> SpanRecord:
        """Record one stage ending at ``t_end``.

        ``t_start`` defaults to the log's cursor (the previous stage's
        end), so consecutive stages tile the job's wall-clock window;
        the cursor advances to ``t_end``.
        """
        parent = parent_span_id if parent_span_id is not None else self.ctx.span_id
        start = self.cursor if t_start is None else float(t_start)
        record = SpanRecord(
            trace_id=self.ctx.trace_id,
            span_id=derive_span_id(
                self.ctx.trace_id, parent, name,
                self._next_occurrence(parent, name),
            ),
            parent_span_id=parent,
            name=name,
            process=self.process,
            t_start=start,
            t_end=float(t_end),
            status=status,
            words=int(words),
            messages=int(messages),
            flops=int(flops),
            attrs=_freeze_attrs(attrs),
        )
        self._records.append(record)
        self.cursor = max(self.cursor, float(t_end))
        return record

    def close_root(
        self,
        t_end: float,
        *,
        t_start: float,
        status: str,
        words: int = 0,
        messages: int = 0,
        flops: int = 0,
        **attrs: Any,
    ) -> SpanRecord:
        """Emit the root record itself (only the minting process does this).

        The root's span id is the context's own — not derived through
        :meth:`add` — and its counters are the job's *inclusive*
        totals; leaves underneath account for them exactly.
        """
        record = SpanRecord(
            trace_id=self.ctx.trace_id,
            span_id=self.ctx.span_id,
            parent_span_id=None,
            name=ROOT_SPAN,
            process=self.process,
            t_start=float(t_start),
            t_end=float(t_end),
            status=status,
            words=int(words),
            messages=int(messages),
            flops=int(flops),
            attrs=_freeze_attrs(attrs),
        )
        self._records.append(record)
        return record

    def graft_profile(
        self, parent: SpanRecord, profile: "Mapping[str, Any] | None"
    ) -> int:
        """Attach an engine span-profile tree under ``parent``.

        ``profile`` is a serialized
        :class:`~repro.observability.spans.SpanProfile`
        (``Measurement.profile``).  Grafting only happens when the
        profile's own leaf totals reconcile with the parent span's
        counters — a profile that cannot reconcile (partial
        instrumentation) is left out rather than breaking the
        invariant.  Returns the number of records grafted.
        """
        if not profile:
            return 0
        leaf_totals = _profile_leaf_totals(profile)
        parent_totals = (parent.words, parent.messages, parent.flops)
        if leaf_totals != parent_totals:
            return 0

        grafted = 0

        def rec(node: Mapping[str, Any], parent_id: str) -> None:
            nonlocal grafted
            span_id = derive_span_id(
                self.ctx.trace_id, parent_id, str(node["name"]),
                self._next_occurrence(parent_id, str(node["name"])),
            )
            self._records.append(
                SpanRecord(
                    trace_id=self.ctx.trace_id,
                    span_id=span_id,
                    parent_span_id=parent_id,
                    name=str(node["name"]),
                    process=self.process,
                    t_start=float(node.get("t_start", 0.0)),
                    t_end=float(node.get("t_end", 0.0)),
                    words=int(node.get("words", 0)),
                    messages=int(node.get("messages", 0)),
                    flops=int(node.get("flops", 0)),
                    attrs=tuple(
                        (str(k), v) for k, v in (node.get("attrs") or ())
                    ),
                )
            )
            grafted += 1
            for child in node.get("children") or ():
                rec(child, span_id)

        rec(profile, parent.span_id)
        return grafted

    def records(self) -> "tuple[SpanRecord, ...]":
        """The recorded spans, in append order."""
        return tuple(self._records)


def _profile_leaf_totals(profile: Mapping[str, Any]) -> "tuple[int, int, int]":
    """Leaf sums of a serialized SpanProfile tree (words, messages, flops)."""
    totals = [0, 0, 0]

    def rec(node: Mapping[str, Any]) -> None:
        children = node.get("children") or ()
        if not children:
            totals[0] += int(node.get("words", 0))
            totals[1] += int(node.get("messages", 0))
            totals[2] += int(node.get("flops", 0))
            return
        for child in children:
            rec(child)

    rec(profile)
    return (totals[0], totals[1], totals[2])


class TraceInvariantError(AssertionError):
    """A trace violates a structural or reconciliation invariant."""


def _coerce_records(
    records: "Iterable[SpanRecord | Mapping[str, Any]]",
) -> "list[SpanRecord]":
    return [
        r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
        for r in records
    ]


def trace_tree(
    records: "Iterable[SpanRecord | Mapping[str, Any]]",
) -> "tuple[SpanRecord, dict[str, list[SpanRecord]]]":
    """Assemble one job's records into ``(root, children-by-span-id)``.

    Raises :class:`TraceInvariantError` on structural breakage: no
    records, multiple trace ids, zero or several roots, an orphaned
    parent reference, or a duplicate span id.
    """
    recs = _coerce_records(records)
    if not recs:
        raise TraceInvariantError("empty trace")
    trace_ids = {r.trace_id for r in recs}
    if len(trace_ids) != 1:
        raise TraceInvariantError(f"mixed trace ids: {sorted(trace_ids)}")
    by_id: "dict[str, SpanRecord]" = {}
    for r in recs:
        if r.span_id in by_id:
            raise TraceInvariantError(f"duplicate span id {r.span_id}")
        by_id[r.span_id] = r
    roots = [r for r in recs if r.parent_span_id is None]
    if len(roots) != 1:
        raise TraceInvariantError(
            f"expected exactly one root span, got {len(roots)}"
        )
    children: "dict[str, list[SpanRecord]]" = {r.span_id: [] for r in recs}
    for r in recs:
        if r.parent_span_id is None:
            continue
        if r.parent_span_id not in by_id:
            raise TraceInvariantError(
                f"span {r.name!r} references unknown parent "
                f"{r.parent_span_id}"
            )
        children[r.parent_span_id].append(r)
    return roots[0], children


def validate_trace(
    records: "Iterable[SpanRecord | Mapping[str, Any]]",
    totals: "Mapping[str, int] | None" = None,
) -> "dict[str, int]":
    """Check a terminal trace's invariants; returns the leaf counter sums.

    Structural invariants come from :func:`trace_tree`.  On top of
    those, this enforces the cross-process extension of PR 2's
    reconciliation property: the **leaf** spans' simulated counter
    deltas sum exactly to the job's totals (pass the terminal
    response's measurement counts as ``totals``; sheds and failures
    reconcile against zero).  Raises :class:`TraceInvariantError` on
    any violation.
    """
    root, children = trace_tree(records)
    leaf_sums = {k: 0 for k in COUNTER_KEYS}
    for span_id, kids in children.items():
        if kids:
            continue
        rec = next(r for r in _coerce_records(records) if r.span_id == span_id)
        for k in COUNTER_KEYS:
            leaf_sums[k] += int(getattr(rec, k))
    if totals is not None:
        expect = {k: int(totals.get(k, 0)) for k in COUNTER_KEYS}
        if leaf_sums != expect:
            raise TraceInvariantError(
                f"leaf counter sums {leaf_sums} != job totals {expect}"
            )
    return leaf_sums


def trace_coverage(
    records: "Iterable[SpanRecord | Mapping[str, Any]]",
    observed_seconds: "float | None" = None,
) -> float:
    """Fraction of the client-observed window covered by non-root spans.

    The union of every *non-root* span interval is measured against
    ``observed_seconds`` (the client-observed latency); when omitted,
    the root span's own duration is the window, since the front door
    opens it at submission and closes it at resolution — the same
    boundary the client observes.  The root itself is excluded from
    the union (it spans the whole window by construction); what is
    measured is how much of that window the recorded *stages* —
    queueing, execution, response transit — actually explain.  Returns
    1.0 for a zero-length window (inline mode's frozen clock).
    """
    recs = _coerce_records(records)
    root, _ = trace_tree(recs)
    window = root.duration if observed_seconds is None else float(observed_seconds)
    if window <= 0.0:
        return 1.0
    intervals = sorted(
        (r.t_start, r.t_end)
        for r in recs
        if r.t_end > r.t_start and r.span_id != root.span_id
    )
    covered = 0.0
    cur_start: "float | None" = None
    cur_end = 0.0
    for start, end in intervals:
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        covered += cur_end - cur_start
    return min(1.0, covered / window)


def canonical_trace(
    records: "Iterable[SpanRecord | Mapping[str, Any]]",
) -> "list[dict]":
    """The placement- and time-free canonical form of one job's trace.

    This is the form the determinism suite compares byte-for-byte
    across runs and across shard counts: span identity, structure,
    status and simulated counters — everything except which process
    recorded a span (``process``), the wall-clock stamps, and the
    :data:`VOLATILE_ATTRS` placement attributes.
    """
    out = []
    for r in sorted(
        _coerce_records(records), key=lambda r: (r.span_id, r.name)
    ):
        out.append(
            {
                "trace_id": r.trace_id,
                "span_id": r.span_id,
                "parent_span_id": r.parent_span_id,
                "name": r.name,
                "status": r.status,
                "words": r.words,
                "messages": r.messages,
                "flops": r.flops,
                "attrs": [
                    [k, v] for k, v in r.attrs if k not in VOLATILE_ATTRS
                ],
            }
        )
    return out


# -- Chrome trace export ---------------------------------------------------


def cluster_trace_events(
    traces: "Iterable[Iterable[SpanRecord | Mapping[str, Any]]]",
) -> "list[dict]":
    """Merge per-job traces into Chrome ``trace_event`` records.

    One ``pid`` for the whole cluster, one ``tid`` track per recording
    process (front door first, then shards sorted by name), with
    ``thread_name`` metadata events naming the tracks.  Every slice is
    a complete (``"X"``) event whose ``args`` carry the trace/span ids
    and the span's simulated counter deltas — the ids are what links
    slices of one job across tracks.
    """
    all_records: "list[SpanRecord]" = []
    for trace in traces:
        all_records.extend(_coerce_records(trace))
    if not all_records:
        return []
    processes = sorted({r.process for r in all_records})
    tids = {name: i for i, name in enumerate(processes)}
    t0 = min(r.t_start for r in all_records)
    events: "list[dict]" = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro cluster"},
        }
    ]
    for name, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    for r in all_records:
        args = {
            "trace_id": r.trace_id,
            "span_id": r.span_id,
            "parent_span_id": r.parent_span_id,
            "status": r.status,
            "words": r.words,
            "messages": r.messages,
            "flops": r.flops,
        }
        args.update({k: v for k, v in r.attrs})
        events.append(
            {
                "ph": "X",
                "name": r.name,
                "cat": "serving",
                "pid": 0,
                "tid": tids[r.process],
                "ts": (r.t_start - t0) * 1e6,
                "dur": max(0.0, r.duration) * 1e6,
                "args": args,
            }
        )
    return events


def cluster_trace_doc(
    traces: "Iterable[Iterable[SpanRecord | Mapping[str, Any]]]",
) -> dict:
    """The full Chrome trace JSON document for a set of job traces."""
    return {
        "traceEvents": cluster_trace_events(traces),
        "displayTimeUnit": "ms",
    }


def write_cluster_trace(
    traces: "Iterable[Iterable[SpanRecord | Mapping[str, Any]]]",
    path: str,
) -> str:
    """Crash-safely write the merged Chrome trace JSON; returns ``path``."""
    return atomic_write_json(path, cluster_trace_doc(traces), indent=1)


__all__ = [
    "COUNTER_KEYS",
    "ROOT_SPAN",
    "SPAN_ID_HEX",
    "TRACE_ID_HEX",
    "VOLATILE_ATTRS",
    "SpanRecord",
    "TraceContext",
    "TraceInvariantError",
    "TraceLog",
    "canonical_trace",
    "cluster_trace_doc",
    "cluster_trace_events",
    "derive_span_id",
    "mint_trace_id",
    "root_context",
    "trace_coverage",
    "trace_tree",
    "validate_trace",
    "write_cluster_trace",
]
