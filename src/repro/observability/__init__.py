"""Unified observability: phase spans, metrics and trace exporters.

The paper's whole evaluation is counts — words and messages per memory
boundary — and this package makes those counts *attributable* and
*exportable* instead of scattered:

``repro.observability.spans``
    Nestable, named phase spans (``with prof.span("panel", j=k):``)
    that snapshot communication-counter deltas on entry/exit, so every
    word/message/flop is attributed to a phase path like
    ``chol/chol[1]/syrk``.  Zero-cost when disabled: machines and
    networks default to :data:`NULL_PROFILER`.

``repro.observability.metrics``
    A process-wide registry of labeled counters, gauges and histograms
    (:data:`METRICS`) fed by the machine, the experiment engine and
    the result cache, with Prometheus-style text and JSON dumps.

``repro.observability.export``
    Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` /
    Perfetto) and plain-text phase-attribution reports.

Typical use::

    from repro.observability import observe, write_chrome_trace

    machine = SequentialMachine(M)
    recorder = observe(machine)
    run_algorithm("square-recursive", TrackedMatrix(a, layout, machine))
    profile = recorder.profile()
    assert profile.leaf_total("words") == machine.counters.words
    write_chrome_trace(profile, "trace.json")
"""

from repro.observability.export import (
    chrome_trace_events,
    phase_report,
    phase_totals,
    write_chrome_trace,
)
from repro.observability.metrics import (
    METRICS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsError,
    MetricsRegistry,
    publish_faults,
    publish_machine,
    publish_run,
)
from repro.observability.spans import (
    COUNTER_FIELDS,
    NULL_PROFILER,
    NullProfiler,
    SpanProfile,
    SpanRecorder,
    observe,
)

__all__ = [
    "COUNTER_FIELDS",
    "METRICS",
    "NULL_PROFILER",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsError",
    "MetricsRegistry",
    "NullProfiler",
    "SpanProfile",
    "SpanRecorder",
    "chrome_trace_events",
    "observe",
    "phase_report",
    "phase_totals",
    "publish_faults",
    "publish_machine",
    "publish_run",
    "write_chrome_trace",
]
