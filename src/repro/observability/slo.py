"""SLO accounting: latency percentiles and error budgets for serving.

The cluster front door (:mod:`repro.serving.cluster`) records every
terminal response here with its client-observed latency; the tracker
keeps exact per-``(algorithm, status)`` sample sets and answers the
questions operators actually ask:

* per-algorithm / per-status latency distributions with exact
  p50/p90/p99/p999 (samples are retained up to a bound, not sketched —
  workloads here are thousands of jobs, not billions, and exactness
  keeps the inline determinism suite byte-stable);
* availability against a declared :class:`SLOTarget` — shed and failed
  jobs spend error budget, degraded jobs count as served (the
  degradation ladder exists precisely so overload does not burn
  budget);
* error-budget burn: how much of the allowed failure fraction the
  observed traffic has consumed.

Everything is pure accounting on values the caller passes in — no
clock reads, no I/O — so the tracker inherits the cluster's injected
clock discipline and stays deterministic in inline mode (where every
latency is 0.0 by construction).

Results are published into the shared metrics registry as
``repro_slo_latency_seconds{algorithm,status}`` histograms and
``repro_slo_error_budget_burn{objective}`` /
``repro_slo_violations_total{objective}`` under the caller's control
(:meth:`SLOTracker.publish`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.observability.metrics import METRICS, MetricsRegistry

#: Quantiles reported by :meth:`SLOTracker.snapshot`.
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999))

#: Statuses that spend error budget.  Degraded responses are *served*
#: (that is the whole point of the degradation ladder).
BUDGET_SPENDING = ("failed", "shed")

#: Histogram bucket bounds for published latency metrics (seconds).
LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)


@dataclass(frozen=True)
class SLOTarget:
    """A declared service-level objective.

    ``availability`` is the floor on the served fraction (DONE +
    DEGRADED over all terminal responses); ``latency_p99`` is an
    optional ceiling on the 99th-percentile latency of *served*
    responses, in seconds (``None`` = latency not in the objective).
    """

    name: str = "default"
    availability: float = 0.999
    latency_p99: "float | None" = None

    def __post_init__(self) -> None:
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {self.availability}"
            )
        if self.latency_p99 is not None and self.latency_p99 <= 0.0:
            raise ValueError(
                f"latency_p99 must be positive, got {self.latency_p99}"
            )

    def to_dict(self) -> dict:
        """JSON-ready form (embedded in health snapshots)."""
        return {
            "name": self.name,
            "availability": self.availability,
            "latency_p99": self.latency_p99,
        }


def percentile(samples: "list[float]", q: float) -> float:
    """Exact quantile by the nearest-rank method (samples need not be sorted).

    Nearest-rank (ceil(q·n)) rather than interpolation: every reported
    value is an actually-observed latency, and the result is stable
    under any ordering of equal inputs.
    """
    if not samples:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class SLOTracker:
    """Accumulates terminal responses and accounts them against a target.

    ``max_samples`` bounds per-series memory; when a series overflows,
    the oldest samples are dropped (the counts keep exact totals — only
    the latency *distribution* becomes a sliding window).
    """

    def __init__(
        self, target: "SLOTarget | None" = None, *, max_samples: int = 4096
    ) -> None:
        self.target = target if target is not None else SLOTarget()
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = int(max_samples)
        #: (algorithm, status) -> retained latency samples, oldest first.
        self._samples: "dict[tuple[str, str], list[float]]" = {}
        #: (algorithm, status) -> exact count of all responses ever seen.
        self._counts: "dict[tuple[str, str], int]" = {}

    # -- recording ---------------------------------------------------------

    def record(self, algorithm: str, status: str, latency: float) -> None:
        """Account one terminal response."""
        key = (str(algorithm), str(status))
        self._counts[key] = self._counts.get(key, 0) + 1
        series = self._samples.setdefault(key, [])
        series.append(float(latency))
        if len(series) > self.max_samples:
            del series[: len(series) - self.max_samples]

    # -- accounting --------------------------------------------------------

    @property
    def total(self) -> int:
        """All terminal responses ever recorded."""
        return sum(self._counts.values())

    def count(
        self, algorithm: "str | None" = None, status: "str | None" = None
    ) -> int:
        """Responses matching the given algorithm and/or status filters."""
        return sum(
            n
            for (alg, st), n in self._counts.items()
            if (algorithm is None or alg == algorithm)
            and (status is None or st == status)
        )

    def availability(self) -> float:
        """Served fraction: 1 minus the budget-spending fraction.

        An empty tracker reports 1.0 — no traffic, no budget spent.
        """
        total = self.total
        if total == 0:
            return 1.0
        bad = sum(self.count(status=s) for s in BUDGET_SPENDING)
        return 1.0 - bad / total

    def error_budget(self) -> "dict[str, float]":
        """Budget arithmetic against the availability objective.

        ``allowed`` is the number of budget-spending responses the
        target permits for the observed traffic volume, ``spent`` the
        number observed, ``burn`` their ratio (0.0 when nothing is
        allowed *and* nothing spent; ``inf`` when budget is spent
        against a zero allowance).
        """
        total = self.total
        allowed = (1.0 - self.target.availability) * total
        spent = float(sum(self.count(status=s) for s in BUDGET_SPENDING))
        if allowed > 0.0:
            burn = spent / allowed
        else:
            burn = 0.0 if spent == 0.0 else float("inf")
        return {"allowed": allowed, "spent": spent, "burn": burn}

    def latency_quantiles(
        self, algorithm: "str | None" = None, status: "str | None" = None
    ) -> "dict[str, float]":
        """Exact quantiles over the retained samples matching the filters."""
        pool: "list[float]" = []
        for (alg, st), series in self._samples.items():
            if (algorithm is None or alg == algorithm) and (
                status is None or st == status
            ):
                pool.extend(series)
        return {name: percentile(pool, q) for name, q in QUANTILES}

    def violations(self) -> "list[str]":
        """Objective clauses currently violated (empty = SLO met)."""
        out: "list[str]" = []
        if self.availability() < self.target.availability:
            out.append("availability")
        if self.target.latency_p99 is not None and self.total:
            served = self.latency_quantiles(status="done")
            degraded = self.latency_quantiles(status="degraded")
            worst = max(served["p99"], degraded["p99"])
            if worst > self.target.latency_p99:
                out.append("latency_p99")
        return out

    def snapshot(self) -> dict:
        """JSON-ready summary (embedded in cluster health / `repro top`)."""
        by_series = {}
        for (alg, st), n in sorted(self._counts.items()):
            q = self.latency_quantiles(algorithm=alg, status=st)
            by_series[f"{alg}/{st}"] = {"count": n, **q}
        return {
            "target": self.target.to_dict(),
            "total": self.total,
            "availability": self.availability(),
            "error_budget": self.error_budget(),
            "violations": self.violations(),
            "latency": {name: q for name, q in self.latency_quantiles().items()},
            "series": by_series,
        }

    # -- metrics export ----------------------------------------------------

    def publish(self, registry: "MetricsRegistry | None" = None) -> None:
        """Publish the current accounting into a metrics registry.

        Latency histograms are rebuilt from retained samples on every
        publish (the registry's reset-then-observe pattern is avoided
        by publishing monotonically from counts — callers publish once
        per scrape/snapshot, which is how the cluster uses it).
        """
        reg = registry if registry is not None else METRICS
        for (alg, st), series in sorted(self._samples.items()):
            hist = reg.histogram(
                "repro_slo_latency_seconds",
                buckets=LATENCY_BUCKETS,
                algorithm=alg,
                status=st,
            )
            for sample in series[hist.count :]:
                hist.observe(sample)
        budget = self.error_budget()
        reg.gauge(
            "repro_slo_error_budget_burn", objective=self.target.name
        ).set(budget["burn"] if math.isfinite(budget["burn"]) else -1.0)
        reg.gauge(
            "repro_slo_availability", objective=self.target.name
        ).set(self.availability())
        violations = reg.counter(
            "repro_slo_violations_total", objective=self.target.name
        )
        current = len(self.violations())
        if current > violations.value:
            violations.inc(current - violations.value)


__all__ = [
    "BUDGET_SPENDING",
    "LATENCY_BUCKETS",
    "QUANTILES",
    "SLOTarget",
    "SLOTracker",
    "percentile",
]
