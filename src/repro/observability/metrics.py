"""Process-wide metrics: labeled counters, gauges and histograms.

One registry serves the whole process (:data:`METRICS`), the way a
production service would run a single metrics endpoint: the machine
publishes its per-level counters, the experiment engine its cache
hits/misses and per-point wall times, the result cache its lookup
outcomes.  Consumers read :meth:`MetricsRegistry.render_text` (a
Prometheus-style exposition) or :meth:`MetricsRegistry.to_dict`
(JSON-ready).

Metric names used by the library (all under the ``repro_`` prefix):

====================================  =========  =============================
name                                  type       labels
====================================  =========  =============================
``repro_runs_total``                  counter    ``kind``, ``algorithm``
``repro_run_words_total``             counter    ``kind``, ``algorithm``
``repro_run_messages_total``          counter    ``kind``, ``algorithm``
``repro_run_flops_total``             counter    ``kind``, ``algorithm``
``repro_cache_lookups_total``         counter    ``result`` (hit/miss/corrupt)
``repro_schedule_cache_hits_total``   counter    ``tier`` (memory/disk)
``repro_schedule_cache_misses_total``  counter    —
``repro_schedule_events_total``       counter    ``event`` (capture/replay/
                                                 discard/apply-mismatch)
``repro_engine_points_total``         counter    ``source`` (cache/computed)
``repro_engine_retries_total``        counter    ``kind``
``repro_engine_failures_total``       counter    ``kind``
``repro_engine_timeouts_total``       counter    ``kind``
``repro_point_wall_seconds``          histogram  ``kind``
``repro_simulator_wallclock_seconds``  histogram  ``kind``, ``algorithm``
``repro_batched_fastpath_hits_total``  counter    ``kind``, ``algorithm``
``repro_machine_words``               gauge      ``level``
``repro_machine_messages``            gauge      ``level``
``repro_machine_peak_resident``       gauge      ``level``
``repro_machine_flops``               gauge      —
``repro_faults_injected_total``       counter    ``kind`` (drop/duplicate/
                                                 corrupt/failstop/read)
``repro_fault_words_total``           counter    ``kind`` (resend/checkpoint/
                                                 recovery/read_retry)
``repro_fault_messages_total``        counter    ``kind`` (resend/ack/
                                                 checkpoint/recovery/
                                                 read_retry)
``repro_fault_backoff_time_total``    counter    — (α-units of waiting)
``repro_abft_injected_total``         counter    ``kind`` (single/double)
``repro_abft_detected_total``         counter    —
``repro_abft_corrected_total``        counter    —
``repro_abft_double_faults_total``    counter    —
``repro_abft_retries_total``          counter    —
``repro_abft_overhead_total``         counter    ``unit`` (words/
                                                 messages/flops)
``repro_abft_verified_runs_total``    counter    —
``repro_service_jobs_total``          counter    ``status``, ``priority``
``repro_service_shed_total``          counter    ``reason`` (queue-full/
                                                 evicted/shutdown)
``repro_service_degraded_total``      counter    ``reason`` (budget-*/
                                                 breaker-open/deadline/…)
``repro_service_queue_depth``         gauge      —
``repro_service_inflight``            gauge      —
``repro_service_breaker_state``       gauge      ``algorithm`` (0 closed/
                                                 1 half-open/2 open)
``repro_service_breaker_transitions_total``  counter  ``algorithm``, ``to``
``repro_service_job_wall_seconds``    histogram  ``priority``
``repro_service_canary_runs_total``   counter    ``algorithm``, ``outcome``
``repro_service_retries_total``       counter    ``algorithm``
``repro_telemetry_events_total``      counter    ``shard``, ``kind``
``repro_shard_queue_wait_seconds``    histogram  ``shard``
``repro_shard_store_events_total``    counter    ``shard``, ``tier``
``repro_cluster_breaker_state``       gauge      ``shard``, ``algorithm``
``repro_slo_latency_seconds``         histogram  ``algorithm``, ``status``
``repro_slo_availability``            gauge      ``objective``
``repro_slo_error_budget_burn``       gauge      ``objective``
``repro_slo_violations_total``        counter    ``objective``
====================================  =========  =============================

Instruments are cheap (one dict lookup + integer add) but they are
*not* on the per-transfer hot path: the simulators publish once per
run, never per word.

Thread safety: the cluster front door aggregates telemetry from shard
reader threads while the monitor thread publishes health, so every
instrument guards its mutations with a lock and the registry guards
series creation and dumps.  Lock scope is one increment or one dump —
no instrument lock is ever held while taking the registry lock.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

#: Default histogram bucket upper bounds (seconds-flavored).
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)


class MetricsError(ValueError):
    """Misuse of the registry (type conflict, bad increment, ...)."""


def _freeze_labels(labels: Mapping[str, Any]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class CounterMetric:
    """A monotonically increasing count for one label set."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class GaugeMetric:
    """A point-in-time value for one label set (set, not accumulated)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: float | int = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = value


class HistogramMetric:
    """A distribution summary: count/sum/min/max plus bucket counts."""

    __slots__ = (
        "buckets", "bucket_counts", "count", "total", "min", "max", "_lock"
    )

    def __init__(self, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        """Record one sample."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named, labeled instrument store with text and JSON dumps.

    ``counter``/``gauge``/``histogram`` return the instrument for a
    (name, labels) pair, creating it on first use; re-using a name
    with a different instrument type raises :class:`MetricsError`.
    """

    _TYPES = {
        "counter": CounterMetric,
        "gauge": GaugeMetric,
        "histogram": HistogramMetric,
    }

    def __init__(self) -> None:
        # name -> {"type": str, "series": {labels_tuple: instrument}}
        self._metrics: "dict[str, dict]" = {}
        self._lock = threading.RLock()

    def _series(self, kind: str, name: str, labels: Mapping[str, Any], **kw):
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                entry = {"type": kind, "series": {}}
                self._metrics[name] = entry
            elif entry["type"] != kind:
                raise MetricsError(
                    f"metric {name!r} already registered as {entry['type']}, "
                    f"requested as {kind}"
                )
            key = _freeze_labels(labels)
            inst = entry["series"].get(key)
            if inst is None:
                inst = self._TYPES[kind](**kw)
                entry["series"][key] = inst
            return inst

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        """The counter for ``name`` with this label set."""
        return self._series("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        """The gauge for ``name`` with this label set."""
        return self._series("gauge", name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: "Iterable[float] | None" = None,
        **labels: Any,
    ) -> HistogramMetric:
        """The histogram for ``name`` with this label set.

        ``buckets`` applies only on first creation of the series.
        """
        kw = {} if buckets is None else {"buckets": tuple(buckets)}
        return self._series("histogram", name, labels, **kw)

    # -- reads -----------------------------------------------------------

    def value(self, name: str, **labels: Any):
        """Current value of a counter/gauge series, or ``None`` if absent.

        For histograms returns the :class:`HistogramMetric` itself.
        """
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                return None
            inst = entry["series"].get(_freeze_labels(labels))
        if inst is None:
            return None
        return inst if isinstance(inst, HistogramMetric) else inst.value

    def names(self) -> "tuple[str, ...]":
        """All registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def to_dict(self) -> dict:
        """JSON-ready dump of every series."""
        out: dict = {}
        with self._lock:
            names = sorted(self._metrics)
        for name in names:
            entry = self._metrics[name]
            series = []
            for key in sorted(entry["series"]):
                inst = entry["series"][key]
                rec: dict = {"labels": dict(key)}
                if isinstance(inst, HistogramMetric):
                    rec.update(
                        count=inst.count,
                        sum=inst.total,
                        min=inst.min,
                        max=inst.max,
                        buckets=[
                            {"le": b, "count": c}
                            for b, c in zip(
                                list(inst.buckets) + ["+Inf"],
                                inst.bucket_counts,
                            )
                        ],
                    )
                else:
                    rec["value"] = inst.value
                series.append(rec)
            out[name] = {"type": entry["type"], "series": series}
        return out

    def load_dict(self, doc: Mapping[str, Any]) -> None:
        """Reconstruct series from a :meth:`to_dict` dump.

        The inverse of :meth:`to_dict`, used by ``repro metrics`` to
        render a previously written JSON snapshot (e.g. the
        ``--metrics-out`` artifact of a serve run) as Prometheus text.
        Loaded series merge over whatever the registry already holds;
        call :meth:`reset` first for a clean render.
        """
        for name, entry in doc.items():
            kind = entry.get("type")
            if kind not in self._TYPES:
                raise MetricsError(f"metric {name!r} has unknown type {kind!r}")
            for rec in entry.get("series", ()):
                labels = dict(rec.get("labels", {}))
                if kind == "counter":
                    self._series("counter", name, labels).value = rec["value"]
                elif kind == "gauge":
                    self._series("gauge", name, labels).value = rec["value"]
                else:
                    buckets = tuple(
                        b["le"] for b in rec["buckets"] if b["le"] != "+Inf"
                    )
                    hist = self._series(
                        "histogram", name, labels, buckets=buckets
                    )
                    hist.count = rec["count"]
                    hist.total = rec["sum"]
                    hist.min = rec["min"]
                    hist.max = rec["max"]
                    hist.bucket_counts = [b["count"] for b in rec["buckets"]]

    def render_text(self) -> str:
        """Prometheus-style plain-text exposition of every series."""
        lines: list[str] = []
        with self._lock:
            names = sorted(self._metrics)
        for name in names:
            entry = self._metrics[name]
            lines.append(f"# TYPE {name} {entry['type']}")
            for key in sorted(entry["series"]):
                inst = entry["series"][key]
                label_str = (
                    "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"
                    if key
                    else ""
                )
                if isinstance(inst, HistogramMetric):
                    lines.append(f"{name}_count{label_str} {inst.count}")
                    lines.append(f"{name}_sum{label_str} {inst.total:.6g}")
                    for b, c in zip(
                        list(inst.buckets) + ["+Inf"], inst.bucket_counts
                    ):
                        bl = dict(key)
                        bl["le"] = str(b)
                        bstr = "{" + ",".join(
                            f'{k}="{v}"' for k, v in sorted(bl.items())
                        ) + "}"
                        lines.append(f"{name}_bucket{bstr} {c}")
                else:
                    lines.append(f"{name}{label_str} {inst.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry the library publishes into.
METRICS = MetricsRegistry()


def publish_machine(machine, registry: "MetricsRegistry | None" = None) -> None:
    """Publish a machine's per-level counters as gauges.

    Called at the end of a run (never per transfer); ``registry``
    defaults to the global :data:`METRICS`.
    """
    reg = registry if registry is not None else METRICS
    for level in machine.levels:
        reg.gauge("repro_machine_words", level=level.name).set(level.words)
        reg.gauge("repro_machine_messages", level=level.name).set(
            level.messages
        )
        reg.gauge("repro_machine_peak_resident", level=level.name).set(
            level.peak_resident
        )
    reg.gauge("repro_machine_flops").set(machine.flops)


def publish_run(
    *,
    kind: str,
    algorithm: str,
    words: int,
    messages: int,
    flops: int,
    registry: "MetricsRegistry | None" = None,
) -> None:
    """Publish one completed run's headline counts to the registry."""
    reg = registry if registry is not None else METRICS
    labels = {"kind": kind, "algorithm": algorithm}
    reg.counter("repro_runs_total", **labels).inc()
    reg.counter("repro_run_words_total", **labels).inc(int(words))
    reg.counter("repro_run_messages_total", **labels).inc(int(messages))
    reg.counter("repro_run_flops_total", **labels).inc(int(flops))


def publish_perf(
    *,
    kind: str,
    algorithm: str,
    wall_seconds: float,
    batch_hits: int = 0,
    registry: "MetricsRegistry | None" = None,
) -> None:
    """Publish one run's simulator performance: wall time and fast-path use.

    ``wall_seconds`` is the wall-clock time the simulation itself took
    (distinct from ``repro_point_wall_seconds``, which times whole
    engine points including setup and verification);  ``batch_hits``
    is the machine's count of interval batches charged through the
    O(#intervals) fast path (:attr:`Machine.batch_hits`).  Called once
    per run, like :func:`publish_run`.
    """
    reg = registry if registry is not None else METRICS
    labels = {"kind": kind, "algorithm": algorithm}
    reg.histogram("repro_simulator_wallclock_seconds", **labels).observe(
        float(wall_seconds)
    )
    reg.counter("repro_batched_fastpath_hits_total", **labels).inc(
        int(batch_hits)
    )


#: FaultStats field → ``repro_faults_injected_total`` label.
_INJECTED_KINDS = (
    ("drops", "drop"),
    ("duplicates", "duplicate"),
    ("corruptions", "corrupt"),
    ("failstops", "failstop"),
    ("read_faults", "read"),
)

#: FaultStats field → (metric suffix, ``kind`` label) for overhead.
_OVERHEAD_KINDS = (
    ("resent_words", "words", "resend"),
    ("checkpoint_words", "words", "checkpoint"),
    ("recovery_words", "words", "recovery"),
    ("read_retry_words", "words", "read_retry"),
    ("resent_messages", "messages", "resend"),
    ("ack_messages", "messages", "ack"),
    ("checkpoint_messages", "messages", "checkpoint"),
    ("recovery_messages", "messages", "recovery"),
    ("read_retry_messages", "messages", "read_retry"),
)


def publish_faults(stats, registry: "MetricsRegistry | None" = None) -> None:
    """Publish one run's realized faults and resilience overhead.

    ``stats`` is a :class:`~repro.faults.FaultStats` (or its
    ``to_dict()`` form).  Injected events land in
    ``repro_faults_injected_total`` by kind; the overhead the protocol
    paid lands in ``repro_fault_words_total`` /
    ``repro_fault_messages_total`` / ``repro_fault_backoff_time_total``.
    Called once per run, like :func:`publish_run`.
    """
    reg = registry if registry is not None else METRICS
    d = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    for field, kind in _INJECTED_KINDS:
        reg.counter("repro_faults_injected_total", kind=kind).inc(
            int(d.get(field, 0))
        )
    for field, suffix, kind in _OVERHEAD_KINDS:
        reg.counter(f"repro_fault_{suffix}_total", kind=kind).inc(
            int(d.get(field, 0))
        )
    reg.counter("repro_fault_backoff_time_total").inc(
        float(d.get("backoff_time", 0.0))
    )


def publish_abft(record, registry: "MetricsRegistry | None" = None) -> None:
    """Publish one run's ABFT detection/correction outcome.

    ``record`` is a ``Measurement.abft`` dict (``{"config", "stats",
    "attestation"}``) or a bare :class:`~repro.abft.AbftStats` /
    stats dict.  Injections land in ``repro_abft_injected_total`` by
    kind, detections/corrections/escalations in their own counters,
    and the checksum overhead the protection paid (words, messages,
    flops — all already charged through the machine/network clocks) in
    ``repro_abft_overhead_total`` by unit.  Called once per run, like
    :func:`publish_run`.
    """
    reg = registry if registry is not None else METRICS
    d = record.to_dict() if hasattr(record, "to_dict") else dict(record)
    d = d.get("stats", d)
    reg.counter("repro_abft_injected_total", kind="single").inc(
        int(d.get("injected_single", 0))
    )
    reg.counter("repro_abft_injected_total", kind="double").inc(
        int(d.get("injected_double", 0))
    )
    reg.counter("repro_abft_detected_total").inc(int(d.get("detected", 0)))
    reg.counter("repro_abft_corrected_total").inc(int(d.get("corrected", 0)))
    reg.counter("repro_abft_double_faults_total").inc(
        int(d.get("double_faults", 0))
    )
    reg.counter("repro_abft_retries_total").inc(
        max(0, int(d.get("attempts", 1)) - 1)
    )
    for unit in ("words", "messages", "flops"):
        reg.counter("repro_abft_overhead_total", unit=unit).inc(
            int(d.get(f"checksum_{unit}", 0))
        )
    if d.get("verified"):
        reg.counter("repro_abft_verified_runs_total").inc()


__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsError",
    "MetricsRegistry",
    "publish_abft",
    "publish_faults",
    "publish_machine",
    "publish_perf",
    "publish_run",
]
