"""Phase spans: attributing machine counters to algorithmic phases.

The paper's evaluation is *counts* — words and messages per memory
boundary (Tables 1–2) — and debugging a count that misses its closed
form requires knowing *which phase* moved the words.  A span is a
nestable, named region of an algorithm (``with prof.span("syrk"):``)
that snapshots the machine's communication counters on entry and exit,
so every word, message and flop is attributed to a phase path like
``chol/trsm/matmul``.

Design constraints (mirrored by the tests):

* **Zero cost when disabled.**  Every machine and network carries a
  :data:`NULL_PROFILER` by default whose ``span()`` returns one shared
  no-op context manager — no allocation, no counter reads, and the
  exact-count assertions of the tier-1 suite are byte-identical with
  observability off.
* **Read-only.**  Spans *never* touch the counters they snapshot;
  enabling observability cannot change a measured count.
* **Reconcilable.**  Counters are monotone and snapshots telescope, so
  the sum of *leaf*-span word deltas equals the machine's total words
  whenever every transfer happens inside some innermost span — which
  the instrumentation of every registered algorithm guarantees and a
  parametrized test enforces.
* **Exception-safe.**  A span closes (and records its delta) even when
  its body raises; the recorder's stack discipline survives failures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

#: Fixed counter schema every snapshot uses, in order:
#: total words, total messages, words read, words written, flops.
COUNTER_FIELDS = ("words", "messages", "words_read", "words_written", "flops")

CountersFn = Callable[[], "tuple[int, int, int, int, int]"]


class NullProfiler:
    """The disabled profiler: ``span()`` hands back one shared no-op.

    Algorithms call ``machine.profiler.span(...)`` unconditionally;
    when no recorder is attached this object absorbs the call without
    reading a counter or allocating a context manager.
    """

    __slots__ = ()

    #: Discriminates live recorders from the null profiler without
    #: isinstance checks on hot paths.
    enabled = False

    def span(self, name: str, **attrs: Any) -> "_NullSpan":
        """Return the shared no-op context manager (arguments ignored)."""
        return _NULL_SPAN

    def profile(self) -> None:
        """No recording happened, so there is no profile: ``None``."""
        return None


class _NullSpan:
    """A reusable context manager that does exactly nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Process-wide disabled profiler; the default ``profiler`` of every
#: machine and network.
NULL_PROFILER = NullProfiler()


@dataclass(frozen=True)
class SpanProfile:
    """One finished span: its counter deltas, timing and children.

    All counter fields are *inclusive* (they cover the children);
    ``self_words`` etc. subtract the children to give the exclusive
    share.  The tree serializes losslessly through
    :meth:`to_dict`/:meth:`from_dict`, which is what experiment
    artifacts store.
    """

    name: str
    attrs: tuple = ()
    words: int = 0
    messages: int = 0
    words_read: int = 0
    words_written: int = 0
    flops: int = 0
    t_start: float = 0.0
    t_end: float = 0.0
    children: "tuple[SpanProfile, ...]" = ()

    @property
    def duration(self) -> float:
        """Wall-clock seconds the span was open."""
        return self.t_end - self.t_start

    @property
    def is_leaf(self) -> bool:
        """Whether the span has no child spans."""
        return not self.children

    @property
    def self_words(self) -> int:
        """Words not attributed to any child span (exclusive share)."""
        return self.words - sum(c.words for c in self.children)

    @property
    def self_messages(self) -> int:
        """Messages not attributed to any child span."""
        return self.messages - sum(c.messages for c in self.children)

    @property
    def self_flops(self) -> int:
        """Flops not attributed to any child span."""
        return self.flops - sum(c.flops for c in self.children)

    def walk(self) -> "Iterator[tuple[str, SpanProfile]]":
        """Yield ``(path, span)`` depth-first.

        Paths join span names with ``/``; siblings sharing a name are
        disambiguated with an occurrence index, e.g.
        ``chol/chol[1]/trsm``.
        """

        def rec(span: "SpanProfile", path: str):
            yield path, span
            counts: dict[str, int] = {}
            for c in span.children:
                counts[c.name] = counts.get(c.name, 0) + 1
            seen: dict[str, int] = {}
            for c in span.children:
                if counts[c.name] > 1:
                    label = f"{c.name}[{seen.get(c.name, 0)}]"
                else:
                    label = c.name
                seen[c.name] = seen.get(c.name, 0) + 1
                yield from rec(c, f"{path}/{label}")

        yield from rec(self, self.name)

    def leaves(self) -> "Iterator[tuple[str, SpanProfile]]":
        """Yield ``(path, span)`` for the leaf spans only."""
        for path, span in self.walk():
            if span.is_leaf:
                yield path, span

    def leaf_total(self, field_name: str = "words") -> int:
        """Sum one counter field over the leaf spans.

        With complete instrumentation (every transfer inside an
        innermost span) ``leaf_total("words")`` equals the machine's
        total words — the reconciliation property the tests assert.
        """
        return sum(getattr(span, field_name) for _, span in self.leaves())

    def to_dict(self) -> dict:
        """JSON-ready nested dict (recursive over children)."""
        return {
            "name": self.name,
            "attrs": [[k, v] for k, v in self.attrs],
            "words": int(self.words),
            "messages": int(self.messages),
            "words_read": int(self.words_read),
            "words_written": int(self.words_written),
            "flops": int(self.flops),
            "t_start": float(self.t_start),
            "t_end": float(self.t_end),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SpanProfile":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=str(d["name"]),
            attrs=tuple((str(k), v) for k, v in (d.get("attrs") or ())),
            words=int(d.get("words", 0)),
            messages=int(d.get("messages", 0)),
            words_read=int(d.get("words_read", 0)),
            words_written=int(d.get("words_written", 0)),
            flops=int(d.get("flops", 0)),
            t_start=float(d.get("t_start", 0.0)),
            t_end=float(d.get("t_end", 0.0)),
            children=tuple(
                cls.from_dict(c) for c in (d.get("children") or ())
            ),
        )


class _LiveSpan:
    """Mutable in-flight span node (finalized into a SpanProfile on exit)."""

    __slots__ = ("name", "attrs", "entry", "t_start", "children")

    def __init__(self, name: str, attrs: tuple) -> None:
        self.name = name
        self.attrs = attrs
        self.entry: tuple = ()
        self.t_start = 0.0
        self.children: list[SpanProfile] = []


class _SpanContext:
    """Context manager for one live span (created per ``span()`` call)."""

    __slots__ = ("_recorder", "_node")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: tuple) -> None:
        self._recorder = recorder
        self._node = _LiveSpan(name, attrs)

    def __enter__(self) -> "_SpanContext":
        self._recorder._push(self._node)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._pop(self._node)
        return False  # never swallow exceptions


class SpanRecorder:
    """Records a tree of phase spans against one counter source.

    Parameters
    ----------
    counters_fn:
        Zero-argument callable returning the current monotone counter
        tuple ``(words, messages, words_read, words_written, flops)``.
        Use :func:`observe` to build one for a machine or network.
    name:
        Name of the synthetic root span enclosing the whole recording
        (defaults to ``"run"``).

    The recorder opens a root span at construction; :meth:`profile`
    closes a snapshot of it and returns the finished
    :class:`SpanProfile` tree.  ``profile()`` may be called repeatedly
    (e.g. after each of several runs on one machine); each call
    re-snapshots the root.
    """

    #: Live recorders are "enabled"; see :class:`NullProfiler`.
    enabled = True

    def __init__(
        self,
        counters_fn: CountersFn,
        *,
        name: str = "run",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._counters = counters_fn
        self._clock = clock
        self._t0 = clock()
        root = _LiveSpan(name, ())
        root.entry = tuple(counters_fn())
        root.t_start = 0.0
        self._stack: list[_LiveSpan] = [root]

    # -- recording ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a named child span of the innermost open span.

        ``attrs`` annotate the span (e.g. ``j=k`` for a panel index)
        and ride into the profile and the Chrome trace ``args``.
        """
        frozen = tuple(sorted((str(k), v) for k, v in attrs.items())) if attrs else ()
        return _SpanContext(self, name, frozen)

    def _push(self, node: _LiveSpan) -> None:
        node.entry = tuple(self._counters())
        node.t_start = self._clock() - self._t0
        self._stack.append(node)

    def _pop(self, node: _LiveSpan) -> None:
        if self._stack[-1] is not node:
            raise RuntimeError(
                f"span {node.name!r} closed out of order; "
                f"innermost open span is {self._stack[-1].name!r}"
            )
        self._stack.pop()
        self._stack[-1].children.append(self._finalize(node))

    def _finalize(self, node: _LiveSpan) -> SpanProfile:
        exit_snap = tuple(self._counters())
        delta = tuple(b - a for a, b in zip(node.entry, exit_snap))
        return SpanProfile(
            name=node.name,
            attrs=node.attrs,
            words=delta[0],
            messages=delta[1],
            words_read=delta[2],
            words_written=delta[3],
            flops=delta[4],
            t_start=node.t_start,
            t_end=self._clock() - self._t0,
            children=tuple(node.children),
        )

    # -- results --------------------------------------------------------

    @property
    def depth(self) -> int:
        """How many spans are currently open (excluding the root)."""
        return len(self._stack) - 1

    def profile(self) -> SpanProfile:
        """Finalize a snapshot of the root span and return the tree.

        Raises ``RuntimeError`` if spans are still open — a profile of
        a half-finished phase would mis-attribute its traffic.
        """
        if len(self._stack) != 1:
            open_names = [s.name for s in self._stack[1:]]
            raise RuntimeError(f"spans still open: {open_names}")
        return self._finalize(self._stack[0])


def _machine_counters_fn(machine) -> CountersFn:
    """Counter source for a DAM machine: its fastest-level boundary."""
    level = machine.levels[0]

    def fn() -> tuple:
        c = level.counters
        wr, ww = c.words_read, c.words_written
        return (
            wr + ww,
            c.messages_read + c.messages_written,
            wr,
            ww,
            machine.flops,
        )

    return fn


def _network_counters_fn(network) -> CountersFn:
    """Counter source for the α-β network: critical-path quantities.

    The DAM read/write split does not exist on the network, so
    ``words_read`` mirrors the critical words and ``words_written`` is
    0, matching the :class:`~repro.results.Measurement` convention.
    """

    def fn() -> tuple:
        w = network.critical_words
        return (w, network.critical_messages, w, 0, network.max_flops)

    return fn


def observe(target, *, name: str = "run") -> SpanRecorder:
    """Attach a fresh :class:`SpanRecorder` to a machine or network.

    ``target`` is a :class:`~repro.machine.core.HierarchicalMachine`
    (or subclass) or a :class:`~repro.parallel.network.Network`; it is
    recognized by duck type (``levels`` vs ``critical_words``).  The
    recorder replaces ``target.profiler`` so the instrumented
    algorithms start recording, and is returned for later
    ``.profile()`` reads.
    """
    if hasattr(target, "levels"):
        fn = _machine_counters_fn(target)
    elif hasattr(target, "critical_words"):
        fn = _network_counters_fn(target)
    else:
        raise TypeError(
            f"cannot observe {type(target).__name__}: expected a machine "
            "(with .levels) or a network (with .critical_words)"
        )
    recorder = SpanRecorder(fn, name=name)
    target.profiler = recorder
    return recorder


__all__ = [
    "COUNTER_FIELDS",
    "NULL_PROFILER",
    "NullProfiler",
    "SpanProfile",
    "SpanRecorder",
    "observe",
]
