"""Profile exporters: Chrome ``trace_event`` JSON and text reports.

Two consumers of a :class:`~repro.observability.spans.SpanProfile`:

* :func:`write_chrome_trace` emits the Trace Event Format understood
  by ``chrome://tracing`` and Perfetto — one ``"X"`` (complete) event
  per span, with the counter deltas riding in ``args`` so hovering a
  slice shows its words/messages/flops attribution;
* :func:`phase_report` renders the span tree as an indented text
  table, and :func:`phase_totals` aggregates the *exclusive* counter
  share per span name (the per-phase attribution the paper's closed
  forms are compared against).

Every emitted trace event carries the schema's required keys ``ph``,
``ts``, ``pid``, ``tid`` and ``name`` (CI validates this on a real
run).  Timestamps are microseconds relative to the recorder's start.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.observability.spans import SpanProfile


def chrome_trace_events(
    profile: SpanProfile, *, pid: int = 0, tid: int = 0
) -> "list[dict[str, Any]]":
    """Flatten a span tree into Trace Event Format dicts.

    Uses ``"X"`` (complete) events: Chrome nests slices on one thread
    track by their ``ts``/``dur`` containment, which span trees
    satisfy by construction.
    """
    events: "list[dict[str, Any]]" = [
        {
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for path, span in profile.walk():
        args: "dict[str, Any]" = {
            "path": path,
            "words": span.words,
            "messages": span.messages,
            "words_read": span.words_read,
            "words_written": span.words_written,
            "flops": span.flops,
        }
        args.update({k: v for k, v in span.attrs})
        events.append(
            {
                "ph": "X",
                "ts": span.t_start * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": "span",
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    profile: SpanProfile, path: str, *, pid: int = 0, tid: int = 0
) -> str:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    payload = {
        "traceEvents": chrome_trace_events(profile, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
    }
    from repro.util.serialization import atomic_write_json

    return atomic_write_json(path, payload, indent=1)


def phase_totals(profile: SpanProfile) -> "dict[str, dict[str, int]]":
    """Aggregate *exclusive* counter shares by span name.

    Exclusive shares partition the root's totals (each word is counted
    in exactly one innermost span), so the returned per-name sums add
    up to the run's total words/messages/flops — the per-phase
    attribution report.
    """
    totals: "dict[str, dict[str, int]]" = {}
    for _path, span in profile.walk():
        rec = totals.setdefault(
            span.name, {"words": 0, "messages": 0, "flops": 0, "spans": 0}
        )
        rec["words"] += span.self_words
        rec["messages"] += span.self_messages
        rec["flops"] += span.self_flops
        rec["spans"] += 1
    return totals


def phase_report(profile: SpanProfile, *, max_depth: int | None = None) -> str:
    """Render the span tree and per-phase totals as plain text.

    ``max_depth`` truncates the tree listing (the per-name totals
    always cover the full tree).
    """
    lines = ["phase attribution (inclusive counts per span)", ""]
    header = f"{'span':<44} {'words':>10} {'msgs':>8} {'flops':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for path, span in profile.walk():
        depth = path.count("/")
        if max_depth is not None and depth > max_depth:
            continue
        label = "  " * depth + span.name
        if span.attrs:
            label += "(" + ",".join(f"{k}={v}" for k, v in span.attrs) + ")"
        lines.append(
            f"{label:<44} {span.words:>10} {span.messages:>8} {span.flops:>12}"
        )
    lines.append("")
    lines.append("exclusive totals by phase name")
    header2 = f"{'phase':<20} {'spans':>7} {'words':>10} {'msgs':>8} {'flops':>12}"
    lines.append(header2)
    lines.append("-" * len(header2))
    totals = phase_totals(profile)
    for name in sorted(totals):
        rec = totals[name]
        lines.append(
            f"{name:<20} {rec['spans']:>7} {rec['words']:>10} "
            f"{rec['messages']:>8} {rec['flops']:>12}"
        )
    total = profile.words
    leaf = profile.leaf_total("words")
    lines.append("")
    lines.append(
        f"total words={total}  leaf-span words={leaf}  "
        f"({'reconciled' if total == leaf else 'UNATTRIBUTED TRAFFIC'})"
    )
    return "\n".join(lines) + "\n"


def metrics_main(argv: "list[str] | None" = None) -> int:
    """``repro metrics``: render a metrics snapshot as Prometheus text.

    With ``--from FILE`` the JSON dump a serve run wrote via
    ``--metrics-out`` (a :meth:`MetricsRegistry.to_dict` document) is
    loaded into a fresh registry and rendered; without it, the
    process-wide registry's current contents are rendered — what a
    ``/metrics`` scrape of this process would return.
    """
    import argparse

    from repro.observability.metrics import METRICS, MetricsRegistry

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Render a Prometheus-style metrics exposition.",
    )
    parser.add_argument(
        "--from",
        dest="source",
        metavar="FILE",
        default=None,
        help="render a previously written JSON metrics dump "
        "(default: this process's live registry)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON dump form instead of Prometheus text",
    )
    args = parser.parse_args(argv)

    if args.source is None:
        registry = METRICS
    else:
        registry = MetricsRegistry()
        with open(args.source, "r", encoding="utf-8") as fh:
            registry.load_dict(json.load(fh))
    if args.json:
        print(json.dumps(registry.to_dict(), indent=1, sort_keys=True))
    else:
        print(registry.render_text(), end="")
    return 0


__all__ = [
    "chrome_trace_events",
    "metrics_main",
    "phase_report",
    "phase_totals",
    "write_chrome_trace",
]
