"""Exact integer interval algebra.

The sequential model of the paper (Section 1, footnote 1) is the
two-level I/O (DAM) model with transfer granularity of one word, where
a *message* is a bundle of consecutively stored words.  Consequently
the fundamental object every storage layout produces, and every
machine consumes, is a set of half-open integer intervals
``[start, stop)`` over the linear (slow-memory) address space.

``IntervalSet`` is an immutable, always-normalized (sorted, disjoint,
non-adjacent) set of such intervals.  Normalization is what makes the
message count well defined: two adjacent address runs are one message.

All arithmetic here is exact integer arithmetic; there is no floating
point anywhere in the counting path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

Interval = Tuple[int, int]


def merge_intervals(raw: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort and coalesce intervals, dropping empties.

    Overlapping and *adjacent* intervals are merged: ``(0, 4)`` and
    ``(4, 9)`` become ``(0, 9)``, because a single message can carry a
    contiguous run regardless of how the run was assembled.

    Parameters
    ----------
    raw:
        Any iterable of ``(start, stop)`` pairs with ``start <= stop``.

    Returns
    -------
    tuple of (start, stop)
        Sorted, disjoint, non-adjacent, non-empty intervals.
    """
    cleaned = sorted((int(a), int(b)) for a, b in raw if b > a)
    if not cleaned:
        return ()
    merged: list[Interval] = [cleaned[0]]
    for start, stop in cleaned[1:]:
        last_start, last_stop = merged[-1]
        if start <= last_stop:  # overlap or adjacency
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return tuple(merged)


class IntervalSet:
    """An immutable normalized set of half-open integer intervals.

    Instances support the operations the communication model needs:

    * ``len(s)`` / ``s.runs`` — number of maximal contiguous runs
      (= number of messages when no message-size cap applies);
    * ``s.words`` — total number of addresses covered (= bandwidth
      cost of transferring the set);
    * ``s.messages(cap)`` — number of messages when a single message
      may carry at most ``cap`` words (the paper caps messages at the
      fast-memory size M);
    * set algebra (``|``, ``&``, ``-``) used by tests and by the
      resident-set tracking of the machines.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: Tuple[Interval, ...] = merge_intervals(intervals)

    # -- constructors -------------------------------------------------

    @classmethod
    def single(cls, start: int, stop: int) -> "IntervalSet":
        """The set covering the single run ``[start, stop)``."""
        return cls(((start, stop),))

    @classmethod
    def point(cls, address: int) -> "IntervalSet":
        """The set covering one address."""
        return cls(((address, address + 1),))

    @classmethod
    def _from_normalized(cls, ivs: Tuple[Interval, ...]) -> "IntervalSet":
        out = cls.__new__(cls)
        out._ivs = ivs
        return out

    # -- basic queries -------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalized intervals as a tuple of ``(start, stop)``."""
        return self._ivs

    @property
    def runs(self) -> int:
        """Number of maximal contiguous runs."""
        return len(self._ivs)

    @property
    def words(self) -> int:
        """Total number of addresses covered."""
        return sum(b - a for a, b in self._ivs)

    def messages(self, cap: int | None = None) -> int:
        """Number of messages needed to transfer this set.

        Parameters
        ----------
        cap:
            Maximum words per message, or ``None`` for unbounded
            messages.  The paper uses ``cap = M`` (a message cannot
            exceed the fast memory that receives it).
        """
        if cap is None:
            return len(self._ivs)
        if cap <= 0:
            raise ValueError(f"message cap must be positive, got {cap}")
        total = 0
        for a, b in self._ivs:
            total += -((a - b) // cap)  # ceil((b - a) / cap)
        return total

    def is_empty(self) -> bool:
        """Whether the set covers no addresses."""
        return not self._ivs

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __contains__(self, address: int) -> bool:
        # binary search over the sorted runs
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            a, b = self._ivs[mid]
            if address < a:
                hi = mid
            elif address >= b:
                lo = mid + 1
            else:
                return True
        return False

    def addresses(self) -> Iterator[int]:
        """Iterate over every covered address (tests / small inputs only)."""
        for a, b in self._ivs:
            yield from range(a, b)

    def shift(self, offset: int) -> "IntervalSet":
        """Translate every interval by ``offset`` (relocating a matrix
        into its slot of a shared slow-memory address space)."""
        return IntervalSet._from_normalized(
            tuple((a + offset, b + offset) for a, b in self._ivs)
        )

    # -- set algebra ---------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by either set."""
        return IntervalSet(self._ivs + other._ivs)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by both sets."""
        out: list[Interval] = []
        i = j = 0
        a, b = self._ivs, other._ivs
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet._from_normalized(tuple(out))

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by this set but not by ``other``."""
        out: list[Interval] = []
        j = 0
        b = other._ivs
        for lo, hi in self._ivs:
            cur = lo
            while j < len(b) and b[j][1] <= cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, blo))
                cur = max(cur, bhi)
                if bhi >= hi:
                    break
                k += 1
            if cur < hi:
                out.append((cur, hi))
        return IntervalSet._from_normalized(merge_intervals(out))

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    def issubset(self, other: "IntervalSet") -> bool:
        """Whether every covered address is covered by ``other``."""
        return (self - other).is_empty()

    def isdisjoint(self, other: "IntervalSet") -> bool:
        """Whether the two sets share no address."""
        return (self & other).is_empty()

    # -- dunder plumbing -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(self._ivs)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{a},{b})" for a, b in self._ivs)
        return f"IntervalSet({inner})"


def union_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets (single normalization pass)."""
    raw: list[Interval] = []
    for s in sets:
        raw.extend(s.intervals)
    return IntervalSet(raw)


EMPTY = IntervalSet()
"""The empty interval set (shared immutable instance)."""
