"""Exact integer interval algebra.

The sequential model of the paper (Section 1, footnote 1) is the
two-level I/O (DAM) model with transfer granularity of one word, where
a *message* is a bundle of consecutively stored words.  Consequently
the fundamental object every storage layout produces, and every
machine consumes, is a set of half-open integer intervals
``[start, stop)`` over the linear (slow-memory) address space.

``IntervalSet`` is an immutable, always-normalized (sorted, disjoint,
non-adjacent) set of such intervals.  Normalization is what makes the
message count well defined: two adjacent address runs are one message.

All arithmetic here is exact integer arithmetic; there is no floating
point anywhere in the counting path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.util.fastpath import fastpath_enabled

Interval = Tuple[int, int]

#: Run count past which the NumPy merge beats the pure-Python one.
_NP_MERGE_MIN = 64


def _merge_intervals_np(pairs: "list[Interval]") -> Tuple[Interval, ...]:
    """Vectorized merge: argsort + running-max + group-boundary scan."""
    arr = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
    arr = arr[arr[:, 1] > arr[:, 0]]
    if not len(arr):
        return ()
    arr = arr[np.argsort(arr[:, 0], kind="stable")]
    starts = arr[:, 0]
    stops = np.maximum.accumulate(arr[:, 1])
    new_group = np.empty(len(arr), dtype=bool)
    new_group[0] = True
    # a strictly larger start than the running max stop opens a new
    # run; <= merges (overlap or adjacency), same as the python path
    new_group[1:] = starts[1:] > stops[:-1]
    first = np.flatnonzero(new_group)
    last = np.append(first[1:], len(arr)) - 1
    return tuple(zip(starts[first].tolist(), stops[last].tolist()))


def merge_intervals(raw: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort and coalesce intervals, dropping empties.

    Overlapping and *adjacent* intervals are merged: ``(0, 4)`` and
    ``(4, 9)`` become ``(0, 9)``, because a single message can carry a
    contiguous run regardless of how the run was assembled.

    Parameters
    ----------
    raw:
        Any iterable of ``(start, stop)`` pairs with ``start <= stop``.

    Returns
    -------
    tuple of (start, stop)
        Sorted, disjoint, non-adjacent, non-empty intervals.
    """
    pairs = raw if isinstance(raw, list) else list(raw)
    if len(pairs) >= _NP_MERGE_MIN and fastpath_enabled():
        return _merge_intervals_np(pairs)
    cleaned = sorted((int(a), int(b)) for a, b in pairs if b > a)
    if not cleaned:
        return ()
    merged: list[Interval] = [cleaned[0]]
    for start, stop in cleaned[1:]:
        last_start, last_stop = merged[-1]
        if start <= last_stop:  # overlap or adjacency
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return tuple(merged)


class IntervalSet:
    """An immutable normalized set of half-open integer intervals.

    Instances support the operations the communication model needs:

    * ``len(s)`` / ``s.runs`` — number of maximal contiguous runs
      (= number of messages when no message-size cap applies);
    * ``s.words`` — total number of addresses covered (= bandwidth
      cost of transferring the set);
    * ``s.messages(cap)`` — number of messages when a single message
      may carry at most ``cap`` words (the paper caps messages at the
      fast-memory size M);
    * set algebra (``|``, ``&``, ``-``) used by tests and by the
      resident-set tracking of the machines.
    """

    __slots__ = ("_ivs", "_words")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._ivs: Tuple[Interval, ...] = merge_intervals(intervals)
        self._words: int | None = None

    # -- constructors -------------------------------------------------

    @classmethod
    def single(cls, start: int, stop: int) -> "IntervalSet":
        """The set covering the single run ``[start, stop)``."""
        return cls(((start, stop),))

    @classmethod
    def point(cls, address: int) -> "IntervalSet":
        """The set covering one address."""
        return cls(((address, address + 1),))

    @classmethod
    def _from_normalized(cls, ivs: Tuple[Interval, ...]) -> "IntervalSet":
        out = cls.__new__(cls)
        out._ivs = ivs
        out._words = None
        return out

    @classmethod
    def from_strided(
        cls,
        rows: "tuple[int, int]",
        col_range: "tuple[int, int]",
        ld: int,
    ) -> "IntervalSet":
        """The footprint of rows ``[r0, r1)`` of columns ``[c0, c1)`` in
        a column-major-style layout with leading dimension ``ld``.

        Column ``c`` contributes the run ``[r0 + c·ld, r1 + c·ld)``, so
        a panel footprint is built in closed form instead of by merging
        per-element (or per-column) intervals.  Requires
        ``0 <= r0 <= r1 <= ld``; full-height panels (``r1 - r0 = ld``)
        coalesce into a single run, exactly as the merge would.
        """
        (r0, r1), (c0, c1) = rows, col_range
        if r1 <= r0 or c1 <= c0:
            return EMPTY
        if not 0 <= r0 <= r1 <= ld:
            raise ValueError(
                f"rows [{r0},{r1}) must satisfy 0 <= r0 <= r1 <= ld={ld}"
            )
        if r1 - r0 == ld:
            return cls.single(c0 * ld + r0, (c1 - 1) * ld + r1)
        return cls._from_normalized(
            tuple((r0 + c * ld, r1 + c * ld) for c in range(c0, c1))
        )

    # -- basic queries -------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalized intervals as a tuple of ``(start, stop)``."""
        return self._ivs

    @property
    def runs(self) -> int:
        """Number of maximal contiguous runs."""
        return len(self._ivs)

    @property
    def words(self) -> int:
        """Total number of addresses covered (cached after first use)."""
        # getattr guards sets unpickled from before the cache slot existed
        w = getattr(self, "_words", None)
        if w is None:
            if len(self._ivs) >= _NP_MERGE_MIN:
                arr = np.asarray(self._ivs, dtype=np.int64)
                w = int((arr[:, 1] - arr[:, 0]).sum())
            else:
                w = sum(b - a for a, b in self._ivs)
            self._words = w
        return w

    def messages(self, cap: int | None = None) -> int:
        """Number of messages needed to transfer this set.

        Parameters
        ----------
        cap:
            Maximum words per message, or ``None`` for unbounded
            messages.  The paper uses ``cap = M`` (a message cannot
            exceed the fast memory that receives it).
        """
        if cap is None:
            return len(self._ivs)
        if cap <= 0:
            raise ValueError(f"message cap must be positive, got {cap}")
        total = 0
        for a, b in self._ivs:
            total += -((a - b) // cap)  # ceil((b - a) / cap)
        return total

    def is_empty(self) -> bool:
        """Whether the set covers no addresses."""
        return not self._ivs

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __contains__(self, address: int) -> bool:
        # binary search over the sorted runs
        lo, hi = 0, len(self._ivs)
        while lo < hi:
            mid = (lo + hi) // 2
            a, b = self._ivs[mid]
            if address < a:
                hi = mid
            elif address >= b:
                lo = mid + 1
            else:
                return True
        return False

    def addresses(self) -> Iterator[int]:
        """Iterate over every covered address (tests / small inputs only)."""
        for a, b in self._ivs:
            yield from range(a, b)

    def shift(self, offset: int) -> "IntervalSet":
        """Translate every interval by ``offset`` (relocating a matrix
        into its slot of a shared slow-memory address space)."""
        if offset == 0:
            return self
        return IntervalSet._from_normalized(
            tuple((a + offset, b + offset) for a, b in self._ivs)
        )

    # -- set algebra ---------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by either set."""
        return IntervalSet(self._ivs + other._ivs)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by both sets."""
        out: list[Interval] = []
        i = j = 0
        a, b = self._ivs, other._ivs
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet._from_normalized(tuple(out))

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Addresses covered by this set but not by ``other``."""
        out: list[Interval] = []
        j = 0
        b = other._ivs
        for lo, hi in self._ivs:
            cur = lo
            while j < len(b) and b[j][1] <= cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, blo))
                cur = max(cur, bhi)
                if bhi >= hi:
                    break
                k += 1
            if cur < hi:
                out.append((cur, hi))
        return IntervalSet._from_normalized(merge_intervals(out))

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    def issubset(self, other: "IntervalSet") -> bool:
        """Whether every covered address is covered by ``other``."""
        return (self - other).is_empty()

    def isdisjoint(self, other: "IntervalSet") -> bool:
        """Whether the two sets share no address."""
        return (self & other).is_empty()

    # -- dunder plumbing -----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(self._ivs)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{a},{b})" for a, b in self._ivs)
        return f"IntervalSet({inner})"


def _merge_sorted_runs(runs: "list[Interval]") -> Tuple[Interval, ...]:
    """Coalesce already-sorted, non-empty runs (no cleaning pass)."""
    if not runs:
        return ()
    merged: list[Interval] = [runs[0]]
    for start, stop in runs[1:]:
        last_start, last_stop = merged[-1]
        if start <= last_stop:
            if stop > last_stop:
                merged[-1] = (last_start, stop)
        else:
            merged.append((start, stop))
    return tuple(merged)


def union_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Union of many interval sets (single normalization pass)."""
    raw: list[Interval] = []
    for s in sets:
        raw.extend(s.intervals)
    if fastpath_enabled():
        # every input run is normalized already: skip the per-pair
        # cleaning of the general merge
        if len(raw) >= _NP_MERGE_MIN:
            return IntervalSet._from_normalized(_merge_intervals_np(raw))
        raw.sort()
        return IntervalSet._from_normalized(_merge_sorted_runs(raw))
    return IntervalSet(raw)


class RunBatch:
    """An ordered sequence of per-transfer interval sets, as arrays.

    The batched charging layer's unit of work: each *set* is one
    explicit transfer (exactly what the element-wise path would pass to
    ``machine.read``/``machine.write``), kept in issue order.  Runs are
    stored struct-of-arrays (``starts``/``stops`` per run, ``offsets``
    delimiting each set's runs, ``is_write`` per set) so words and
    messages are charged with O(#runs) NumPy reductions instead of
    O(#words) Python loops.

    Invariants the builders maintain (and the machine relies on):

    * each set's runs are normalized (sorted, disjoint, non-adjacent),
      i.e. identical to the :class:`IntervalSet` the element-wise path
      would have charged;
    * runs are **never** merged across set boundaries — two adjacent
      transfers stay two messages, exactly as two ``read`` calls would;
    * empty sets are dropped at build time, mirroring the machine's
      early return on an empty explicit transfer.
    """

    __slots__ = ("starts", "stops", "offsets", "is_write")

    def __init__(
        self,
        starts: np.ndarray,
        stops: np.ndarray,
        offsets: np.ndarray,
        is_write: "np.ndarray | None" = None,
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.int64)
        self.stops = np.asarray(stops, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        nsets = len(self.offsets) - 1
        if is_write is None:
            is_write = np.zeros(nsets, dtype=bool)
        self.is_write = np.asarray(is_write, dtype=bool)
        if len(self.starts) != len(self.stops):
            raise ValueError("starts and stops must have equal length")
        if nsets < 0 or int(self.offsets[-1]) != len(self.starts):
            raise ValueError("offsets must span all runs")
        if len(self.is_write) != nsets:
            raise ValueError("need one is_write flag per set")

    # -- constructors --------------------------------------------------

    @classmethod
    def empty(cls) -> "RunBatch":
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )

    @classmethod
    def from_sets(
        cls,
        sets: "Sequence[IntervalSet]",
        is_write: "bool | Sequence[bool]" = False,
    ) -> "RunBatch":
        """Build from :class:`IntervalSet` transfers, preserving order.

        ``is_write`` is a single flag for the whole batch or one flag
        per input set (flags of dropped empty sets are dropped too).
        """
        uniform = isinstance(is_write, (bool, np.bool_))
        starts: list[int] = []
        stops: list[int] = []
        offsets: list[int] = [0]
        flags: list[bool] = []
        for i, s in enumerate(sets):
            ivs = s.intervals
            if not ivs:
                continue
            for a, b in ivs:
                starts.append(a)
                stops.append(b)
            offsets.append(len(starts))
            flags.append(bool(is_write) if uniform else bool(is_write[i]))
        return cls(
            np.asarray(starts, dtype=np.int64),
            np.asarray(stops, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            np.asarray(flags, dtype=bool),
        )

    @classmethod
    def from_strided(
        cls,
        rows: "tuple[int, int]",
        col_range: "tuple[int, int]",
        ld: int,
        *,
        base: int = 0,
        is_write: bool = False,
    ) -> "RunBatch":
        """One single-run set per column of a strided (dense) panel.

        Column ``c`` becomes the transfer ``[base + r0 + c·ld,
        base + r1 + c·ld)`` — the closed form of what
        ``layout.intervals(r0, r1, c, c+1)`` yields on a column-major
        layout, one set per column in column order.
        """
        (r0, r1), (c0, c1) = rows, col_range
        if r1 <= r0 or c1 <= c0:
            return cls.empty()
        if not 0 <= r0 <= r1 <= ld:
            raise ValueError(
                f"rows [{r0},{r1}) must satisfy 0 <= r0 <= r1 <= ld={ld}"
            )
        starts = base + r0 + np.arange(c0, c1, dtype=np.int64) * ld
        stops = starts + (r1 - r0)
        nsets = c1 - c0
        flags = np.full(nsets, bool(is_write), dtype=bool)
        return cls(starts, stops, np.arange(nsets + 1, dtype=np.int64), flags)

    # -- queries -------------------------------------------------------

    @property
    def nsets(self) -> int:
        """Number of transfers in the batch."""
        return len(self.offsets) - 1

    def __len__(self) -> int:
        return self.nsets

    @property
    def words(self) -> int:
        """Total words across all transfers."""
        return int((self.stops - self.starts).sum())

    def set_words(self) -> np.ndarray:
        """Words per transfer (same order as the sets)."""
        cum = np.concatenate(
            ([0], np.cumsum(self.stops - self.starts, dtype=np.int64))
        )
        return cum[self.offsets[1:]] - cum[self.offsets[:-1]]

    def max_set_words(self) -> int:
        """Words of the largest single transfer (0 for an empty batch)."""
        sw = self.set_words()
        return int(sw.max()) if len(sw) else 0

    def _run_is_write(self) -> np.ndarray:
        return np.repeat(self.is_write, np.diff(self.offsets))

    def direction_words(self) -> "tuple[int, int]":
        """``(read_words, write_words)`` totals."""
        lengths = self.stops - self.starts
        w = self._run_is_write()
        return int(lengths[~w].sum()), int(lengths[w].sum())

    def direction_messages(self, cap: int | None = None) -> "tuple[int, int]":
        """``(read_messages, write_messages)`` under a message cap.

        Per transfer this equals ``IntervalSet.messages(cap)`` — each
        run costs ``ceil(len/cap)`` messages (1 when uncapped) and runs
        never merge across transfers.
        """
        w = self._run_is_write()
        if cap is None:
            return int((~w).sum()), int(w.sum())
        if cap <= 0:
            raise ValueError(f"message cap must be positive, got {cap}")
        msgs = -((self.starts - self.stops) // cap)  # ceil(len / cap)
        return int(msgs[~w].sum()), int(msgs[w].sum())

    def with_writes(self, is_write: bool) -> "RunBatch":
        """The same transfers with every direction flag forced."""
        flags = np.full(self.nsets, bool(is_write), dtype=bool)
        return RunBatch(self.starts, self.stops, self.offsets, flags)

    # -- expansion (trace replay, fault fallback) ----------------------

    def items(self) -> "Iterator[tuple[IntervalSet, bool]]":
        """Yield ``(IntervalSet, is_write)`` per transfer, in order."""
        starts = self.starts.tolist()
        stops = self.stops.tolist()
        offs = self.offsets.tolist()
        for i, w in enumerate(self.is_write.tolist()):
            lo, hi = offs[i], offs[i + 1]
            yield (
                IntervalSet._from_normalized(
                    tuple(zip(starts[lo:hi], stops[lo:hi]))
                ),
                w,
            )

    def sets(self) -> "Iterator[IntervalSet]":
        """Yield each transfer's :class:`IntervalSet`, in order."""
        for ivs, _ in self.items():
            yield ivs

    def __repr__(self) -> str:
        return (
            f"RunBatch(nsets={self.nsets}, runs={len(self.starts)}, "
            f"words={self.words})"
        )


EMPTY = IntervalSet()
"""The empty interval set (shared immutable instance)."""
