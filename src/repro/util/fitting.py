"""Log-log power-law fitting for the benchmark harness.

The paper's evaluation artifacts (Tables 1 and 2) are asymptotic
Θ/O-forms.  To check that a *measured* count follows, say,
``B(n) = Θ(n³ / sqrt(M))``, the harness measures the count over a
geometric sweep of the parameter and fits the exponent of the
power law ``count ≈ c · x^p`` by least squares in log-log space.

``fit_power_law`` returns the fitted exponent, the prefactor, and the
coefficient of determination so benches can assert both "the exponent
is right" and "the data is actually a power law".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerFit:
    """Result of a least-squares power-law fit ``y ≈ coeff * x**exponent``."""

    exponent: float
    coeff: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted power law at ``x``."""
        return self.coeff * x**self.exponent

    def exponent_close_to(self, target: float, tol: float = 0.25) -> bool:
        """Whether the fitted exponent is within ``tol`` of ``target``.

        The default tolerance is generous because lower-order terms
        (the ``+ n²`` in ``Θ(n³/√M + n²)``) bend finite-size sweeps.
        """
        return abs(self.exponent - target) <= tol


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Least-squares fit of ``y = c * x**p`` in log-log space.

    Parameters
    ----------
    xs, ys:
        Positive samples; at least two distinct ``x`` values.

    Returns
    -------
    PowerFit
        Fitted exponent ``p``, prefactor ``c`` and ``R²`` of the fit
        in log space.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two samples to fit an exponent")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs strictly positive data")

    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0.0:
        raise ValueError("all x values identical; cannot fit an exponent")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x

    syy = sum((y - mean_y) ** 2 for y in ly)
    if syy == 0.0:
        r2 = 1.0
    else:
        ss_res = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly)
        )
        r2 = 1.0 - ss_res / syy
    return PowerFit(exponent=slope, coeff=math.exp(intercept), r_squared=r2)


def ratio_spread(ys: Sequence[float]) -> float:
    """``max(y) / min(y)`` — how flat a series is.

    Used to check claims of the form "latency is Θ(√P) *independent of
    n*": sweep n at fixed P and assert the spread stays near 1.
    """
    if not ys:
        raise ValueError("empty series")
    lo, hi = min(ys), max(ys)
    if lo <= 0:
        raise ValueError("ratio spread needs positive data")
    return hi / lo
