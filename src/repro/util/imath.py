"""Integer-math helpers shared across the model code.

The recursive algorithms of the paper split dimensions "in half",
padding to even sizes where needed; the machine model rounds block
sizes to integers; the layouts need powers of two for bit
interleaving.  These helpers centralize those conventions so every
module splits and rounds identically.
"""

from __future__ import annotations


def ceil_div(a: int, b: int) -> int:
    """``ceil(a / b)`` in exact integer arithmetic (``b > 0``)."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -((-a) // b)


def is_pow2(n: int) -> bool:
    """Whether ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """The smallest power of two >= ``n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def ilog2(n: int) -> int:
    """``log2(n)`` for an exact power of two."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def split_point(n: int) -> int:
    """Where the recursive algorithms split a dimension of size ``n``.

    The paper's recursions divide block sizes by two, "perhaps padding
    submatrices to have even dimensions as needed".  We use
    ``ceil(n / 2)``, which keeps the *first* half the larger one; this
    matches the convention that the leading submatrix ``A11`` of a
    Cholesky recursion must be factored first and may not be empty.
    """
    if n < 2:
        raise ValueError(f"cannot split a dimension of size {n}")
    return ceil_div(n, 2)


def isqrt_floor(n: int) -> int:
    """Integer floor square root (thin wrapper, for readability)."""
    import math

    if n < 0:
        raise ValueError(f"need n >= 0, got {n}")
    return math.isqrt(n)


def largest_fitting_block(memory_words: int, matrices: int = 3) -> int:
    """Largest block size b such that ``matrices`` b×b blocks fit in memory.

    The paper's blocked algorithms assume ``b <= sqrt(M / 3)`` so that
    three operand blocks are simultaneously resident (Algorithm 4 and
    the base cases of the recursive algorithms).
    """
    if memory_words < matrices:
        raise ValueError(
            f"memory of {memory_words} words cannot hold {matrices} blocks"
        )
    return isqrt_floor(memory_words // matrices)
