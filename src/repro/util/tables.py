"""Plain-text table rendering.

The benchmark harness regenerates the paper's Table 1 / Table 2 as
monospace text, both to stdout and into ``reports/``.  This module is
the single place that knows how to align columns so every report looks
the same.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row tuples; cells are formatted with a compact numeric style.
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The rendered table, ending with a newline.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines) + "\n"


def format_kv_block(title: str, pairs: Iterable[tuple[str, object]]) -> str:
    """Render a titled key/value block (used for bench summaries)."""
    lines = [title]
    items = list(pairs)
    width = max((len(k) for k, _ in items), default=0)
    for key, value in items:
        lines.append(f"  {key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines) + "\n"
