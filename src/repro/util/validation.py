"""Argument validation helpers for the public API.

Centralizing the checks keeps error messages uniform across the many
entry points (every sequential algorithm, every layout constructor,
the parallel driver) and keeps the algorithm bodies readable.
"""

from __future__ import annotations

import numpy as np


class ValidationError(ValueError):
    """An input failed an up-front check (shape, symmetry, finiteness).

    Subclasses ``ValueError`` so historical ``except ValueError``
    callers keep working; raised with a message naming the offending
    argument and the exact property violated, instead of letting bad
    inputs surface later as numerical garbage.
    """


class NotPositiveDefiniteError(np.linalg.LinAlgError, ArithmeticError):
    """A Cholesky factorization hit a non-positive pivot.

    Carries the ``stage`` that failed (e.g. ``"potf2"``, an algorithm
    name, or ``"panel J=3"``) and, when known, the pivot index — so a
    caller can report *where* positive definiteness broke down and
    decide on a diagonal-shift retry (see
    :func:`repro.sequential.registry.run_algorithm`).  Also subclasses
    ``np.linalg.LinAlgError`` so historical
    ``except LinAlgError`` callers keep working.
    """

    def __init__(self, message: str, *, stage: str = "cholesky",
                 index: int | None = None) -> None:
        super().__init__(message)
        self.stage = stage
        self.index = index


def check_positive_int(name: str, value: int) -> int:
    """Require ``value`` to be a positive integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_square(name: str, a: np.ndarray) -> np.ndarray:
    """Require a real numeric 2-D square ndarray; return it float64 C-order.

    Rejects non-numeric payloads (strings, objects, ragged nests),
    complex dtypes and wrong shapes with a structured
    :class:`ValidationError` *before* any float64 coercion — so bad
    inputs fail here with a message naming the argument, not deep in a
    layout as a raw ``TypeError``/``IndexError``.
    """
    try:
        arr = np.asarray(a)
    except Exception as exc:
        raise ValidationError(
            f"{name} is not array-like ({type(exc).__name__}: {exc})"
        ) from exc
    if arr.dtype == object:
        raise ValidationError(
            f"{name} must be numeric; got object dtype (ragged nesting "
            "or non-numeric entries)"
        )
    if np.issubdtype(arr.dtype, np.complexfloating):
        raise ValidationError(
            f"{name} must be real; got complex dtype {arr.dtype}"
        )
    if not (
        np.issubdtype(arr.dtype, np.floating)
        or np.issubdtype(arr.dtype, np.integer)
        or arr.dtype == bool
    ):
        raise ValidationError(
            f"{name} must be numeric; got dtype {arr.dtype}"
        )
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(
            f"{name} must be a square matrix, got shape {arr.shape}"
        )
    return np.ascontiguousarray(arr, dtype=np.float64)


def check_finite(name: str, a: np.ndarray) -> np.ndarray:
    """Require every entry to be finite (no NaN/Inf); return the array.

    A NaN anywhere in the operand silently poisons every downstream
    count-verifying comparison, so the entry points reject it up front
    with a message that says which entries are bad.
    """
    arr = np.asarray(a)
    if arr.size and not np.isfinite(arr).all():
        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
        kinds = []
        if np.isnan(arr).any():
            kinds.append("NaN")
        if np.isinf(arr).any():
            kinds.append("Inf")
        raise ValidationError(
            f"{name} contains {bad} non-finite entr"
            f"{'y' if bad == 1 else 'ies'} ({'/'.join(kinds)}); "
            "refusing to factorize garbage input"
        )
    return arr


def check_symmetric(name: str, a: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Require a symmetric square ndarray (within ``tol``, relative)."""
    arr = check_square(name, a)
    check_finite(name, arr)
    scale = max(1.0, float(np.max(np.abs(arr))) if arr.size else 1.0)
    if not np.allclose(arr, arr.T, atol=tol * scale, rtol=0.0):
        ij = np.unravel_index(
            int(np.argmax(np.abs(arr - arr.T))), arr.shape
        )
        raise ValidationError(
            f"{name} must be symmetric; largest asymmetry at "
            f"({ij[0]},{ij[1]}): {arr[ij]} vs {arr.T[ij]}"
        )
    return arr


def check_spd_cheap(name: str, a: np.ndarray) -> np.ndarray:
    """Cheap sanity check for positive definiteness (positive diagonal).

    The algorithms themselves fail loudly (sqrt of a non-positive
    pivot) if the matrix is not positive definite; this check only
    catches obviously wrong inputs early with a clearer message.
    """
    arr = check_symmetric(name, a)
    if arr.size and np.any(np.diag(arr) <= 0):
        idx = int(np.argmax(np.diag(arr) <= 0))
        raise ValidationError(
            f"{name} has a non-positive diagonal entry at index {idx}; not SPD"
        )
    return arr
