"""Argument validation helpers for the public API.

Centralizing the checks keeps error messages uniform across the many
entry points (every sequential algorithm, every layout constructor,
the parallel driver) and keeps the algorithm bodies readable.
"""

from __future__ import annotations

import numpy as np


def check_positive_int(name: str, value: int) -> int:
    """Require ``value`` to be a positive integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative integer; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_square(name: str, a: np.ndarray) -> np.ndarray:
    """Require a 2-D square ndarray; return it as float64 C-order."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_symmetric(name: str, a: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Require a symmetric square ndarray (within ``tol``, relative)."""
    arr = check_square(name, a)
    scale = max(1.0, float(np.max(np.abs(arr))) if arr.size else 1.0)
    if not np.allclose(arr, arr.T, atol=tol * scale, rtol=0.0):
        raise ValueError(f"{name} must be symmetric")
    return arr


def check_spd_cheap(name: str, a: np.ndarray) -> np.ndarray:
    """Cheap sanity check for positive definiteness (positive diagonal).

    The algorithms themselves fail loudly (sqrt of a non-positive
    pivot) if the matrix is not positive definite; this check only
    catches obviously wrong inputs early with a clearer message.
    """
    arr = check_symmetric(name, a)
    if arr.size and np.any(np.diag(arr) <= 0):
        raise ValueError(f"{name} has a non-positive diagonal entry; not SPD")
    return arr
