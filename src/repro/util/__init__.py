"""Shared low-level utilities for the reproduction.

This package deliberately contains no model logic.  It provides:

``repro.util.intervals``
    Exact integer interval algebra.  The communication model of the
    paper counts a *message* as a maximal contiguous run of addresses
    (capped at the fast-memory size), so every layout and machine in
    this repository speaks the language of half-open integer intervals.

``repro.util.imath``
    Small integer-math helpers (ceil-div, powers of two, splitting
    ranges in half the way the recursive algorithms of the paper do).

``repro.util.fitting``
    Log-log scaling-exponent estimation used by the benchmark harness
    to check that measured counts follow the paper's Θ-forms.

``repro.util.tables``
    Plain-text table rendering for the Table 1 / Table 2 reports.

``repro.util.validation``
    Argument-checking helpers shared by the public API.
"""

from repro.util.intervals import IntervalSet, merge_intervals
from repro.util.imath import (
    ceil_div,
    ilog2,
    is_pow2,
    next_pow2,
    split_point,
)
from repro.util.fitting import PowerFit, fit_power_law
from repro.util.tables import format_table
from repro.util.validation import (
    check_positive_int,
    check_square,
    check_symmetric,
)

__all__ = [
    "IntervalSet",
    "merge_intervals",
    "ceil_div",
    "ilog2",
    "is_pow2",
    "next_pow2",
    "split_point",
    "PowerFit",
    "fit_power_law",
    "format_table",
    "check_positive_int",
    "check_square",
    "check_symmetric",
]
