"""Process-wide toggle for count-neutral simulator fast paths.

The batched charging layer comes in two independent pieces:

* the *machine-level* ``batched`` flag
  (:class:`repro.machine.core.HierarchicalMachine`), which selects the
  batched transfer APIs inside the algorithms;
* this module's *count-neutral* fast paths (NumPy interval merging,
  closed-form layout runs, interval memoization), which change no
  observable count on either machine path.

Both default on and both are disabled by setting ``REPRO_SLOW_PATH=1``
in the environment, which reproduces the original element-wise code
paths end to end.  ``set_fastpath``/``fastpath`` let the golden
count-equality tests and the wall-clock bench A/B the two paths inside
one process without re-execing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_enabled: bool = os.environ.get("REPRO_SLOW_PATH", "") != "1"


def fastpath_enabled() -> bool:
    """Whether the count-neutral fast paths are currently active."""
    return _enabled


def set_fastpath(enabled: bool) -> bool:
    """Set the toggle; returns the previous value (for restoration)."""
    global _enabled
    prev = _enabled
    _enabled = bool(enabled)
    return prev


@contextmanager
def fastpath(enabled: bool) -> Iterator[None]:
    """Context manager running its body with the toggle forced."""
    prev = set_fastpath(enabled)
    try:
        yield
    finally:
        set_fastpath(prev)


def default_batched() -> bool:
    """Default for the machine-level ``batched`` flag (env-controlled)."""
    return os.environ.get("REPRO_SLOW_PATH", "") != "1"


__all__ = ["default_batched", "fastpath", "fastpath_enabled", "set_fastpath"]
