"""Crash-safe artifact writes.

Every JSON (or text) artifact the library persists — cache entries,
experiment artifacts, reports, bench documents, metrics dumps — goes
through one discipline: serialize to a temporary file in the target
directory, flush and fsync it, then :func:`os.replace` it into place.
A reader can therefore never observe a torn file: it sees either the
previous complete version or the new complete one, even if the writing
process is killed mid-write.  (A stray ``.tmp-*`` file may survive a
kill; it is never read and the next write cleans nothing up but also
collides with nothing, since every write gets a fresh temp name.)
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str | os.PathLike, text: str) -> str:
    """Atomically replace ``path`` with ``text``; returns the path.

    The parent directory is created if missing.  The data is durable
    (fsync'd) before the rename, so a crash immediately after return
    cannot roll the file back to a truncated state.
    """
    path = str(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def atomic_write_json(
    path: str | os.PathLike,
    obj: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
) -> str:
    """Atomically write ``obj`` as JSON to ``path``; returns the path."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if indent is not None:
        text += "\n"
    return atomic_write_text(path, text)


__all__ = ["atomic_write_json", "atomic_write_text"]
