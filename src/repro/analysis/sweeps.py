"""Measurement sweeps: the engine behind every bench.

``measure`` runs one (algorithm, layout, n, M) configuration on a
fresh machine and returns a :class:`Measurement` with every counter.
``sweep_n`` / ``sweep_param`` run geometric sweeps and return the
series the benches fit exponents to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.layouts.registry import make_layout
from repro.machine.core import SequentialMachine
from repro.matrices.generators import random_spd
from repro.matrices.tracked import TrackedMatrix
from repro.sequential.registry import run_algorithm
from repro.util.fitting import PowerFit, fit_power_law


@dataclass(frozen=True)
class Measurement:
    """Counters from one simulated run."""

    algorithm: str
    layout: str
    n: int
    M: int
    words: int
    messages: int
    words_read: int
    words_written: int
    flops: int
    correct: bool

    @property
    def bandwidth_per_flop(self) -> float:
        return self.words / self.flops if self.flops else 0.0


def measure(
    algorithm: str,
    n: int,
    M: int,
    *,
    layout: str = "column-major",
    layout_block: int | None = None,
    seed: int = 0,
    verify: bool = True,
    **params,
) -> Measurement:
    """Run one configuration and collect its counters.

    ``verify=True`` (default) checks the factor against the reference
    Cholesky — a benchmark that silently produced wrong numerics
    would invalidate its counts, so verification is part of the
    measurement.
    """
    machine = SequentialMachine(M)
    if layout == "blocked" and layout_block is None:
        layout_block = params.get("block") or max(1, int(np.sqrt(M // 3)))
    lay = make_layout(layout, n, block=layout_block)
    a0 = random_spd(n, seed=seed)
    A = TrackedMatrix(a0, lay, machine)
    L = run_algorithm(algorithm, A, **params)
    ok = True
    if verify:
        ok = bool(np.allclose(L, np.linalg.cholesky(a0), atol=1e-6))
    lvl = machine.levels[0]
    return Measurement(
        algorithm=algorithm,
        layout=lay.name,
        n=n,
        M=M,
        words=lvl.words,
        messages=lvl.messages,
        words_read=lvl.counters.words_read,
        words_written=lvl.counters.words_written,
        flops=machine.flops,
        correct=ok,
    )


def sweep_n(
    algorithm: str,
    ns: Sequence[int],
    M: int | Callable[[int], int],
    *,
    layout: str = "column-major",
    metric: str = "words",
    **kw,
) -> tuple[list[Measurement], PowerFit]:
    """Sweep the matrix dimension; fit ``metric ~ n^p``.

    ``M`` may be a constant or a function of n (e.g. ``lambda n: 4*n``
    to stay in the naïve whole-column regime).
    """
    ms = []
    for n in ns:
        m_val = M(n) if callable(M) else M
        ms.append(measure(algorithm, n, m_val, layout=layout, **kw))
    fit = fit_power_law([m.n for m in ms], [getattr(m, metric) for m in ms])
    return ms, fit


def sweep_param(
    algorithm: str,
    n: int,
    Ms: Sequence[int],
    *,
    layout: str = "column-major",
    metric: str = "words",
    **kw,
) -> tuple[list[Measurement], PowerFit]:
    """Sweep the fast-memory size at fixed n; fit ``metric ~ M^p``."""
    ms = [measure(algorithm, n, M, layout=layout, **kw) for M in Ms]
    fit = fit_power_law([m.M for m in ms], [getattr(m, metric) for m in ms])
    return ms, fit
