"""Measurement sweeps: the primitives behind every bench.

``measure`` runs one (algorithm, layout, n, M) configuration on a
fresh machine; ``measure_parallel`` runs one PxPOTRF (n, block, P)
configuration on a fresh network.  Both return the unified
:class:`repro.results.Measurement` schema, so sequential and parallel
benches consume one type.

``sweep_n`` / ``sweep_param`` run geometric sweeps and return the
series the benches fit exponents to.  They are thin wrappers over the
:mod:`repro.experiments` engine: each sweep is expanded into an
:class:`~repro.experiments.spec.ExperimentSpec`, points get
deterministically derived per-point seeds (no more silently
correlating every point on ``seed=0``), results are served from the
content-addressed cache when available, and ``jobs=N`` fans fresh
points out over a process pool.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.abft import AbftConfig
from repro.faults.plan import FaultPlan
from repro.layouts.registry import make_layout
from repro.machine.core import SequentialMachine
from repro.matrices.generators import random_spd
from repro.matrices.tracked import TrackedMatrix
from repro.observability.metrics import (
    publish_abft,
    publish_faults,
    publish_perf,
    publish_run,
)
from repro.observability.spans import observe as attach_spans
from repro.parallel.pxpotrf import pxpotrf
from repro.results import Measurement, freeze_params
from repro.sequential.registry import run_algorithm
from repro.util.fitting import PowerFit, fit_power_law

__all__ = [
    "Measurement",
    "measure",
    "measure_parallel",
    "sweep_n",
    "sweep_param",
]


def measure(
    algorithm: str,
    n: int,
    M: int,
    *,
    layout: str = "column-major",
    layout_block: int | None = None,
    seed: int = 0,
    verify: bool = True,
    observe: bool = False,
    faults: "FaultPlan | None" = None,
    guard=None,
    abft=None,
    **params,
) -> Measurement:
    """Run one sequential configuration and collect its counters.

    ``verify=True`` (default) checks the factor against the reference
    Cholesky — a benchmark that silently produced wrong numerics
    would invalidate its counts, so verification is part of the
    measurement.  The returned measurement carries the live
    :class:`~repro.results.RunResult` (factor + machine handle) in its
    ``run`` field.

    ``observe=True`` attaches a span recorder to the machine before
    the run: the measurement's ``profile`` field then carries the
    phase-attribution tree (spans are read-only snapshots of the
    counters, so every count is identical either way).

    ``faults`` arms the machine with deterministic transient read
    faults (:class:`~repro.faults.FaultPlan.read_fault`); the
    measurement's ``faults`` field then reports the realized schedule
    and its retry cost.

    ``guard`` arms the machine with a live
    :class:`~repro.serving.budget.BudgetGuard`: the run aborts with
    :class:`~repro.serving.budget.BudgetExceeded` the moment the
    charged words/messages/flops cross the guard's caps, and the
    attempt's spend is folded into the guard's cumulative totals
    whether the run finishes or not (so retries share one quota).

    ``abft`` (an :class:`~repro.abft.AbftConfig`, dict, or ``True``)
    runs the algorithm checksum-protected: the measurement then
    carries the ``abft`` record (counters + factor attestation) and
    the detection/correction totals are published to the registry.
    """
    machine = SequentialMachine(M)
    machine.attach_faults(faults)
    machine.attach_guard(guard)
    cfg = AbftConfig.coerce(abft)
    if cfg is not None:
        # a silent-only plan arms neither the machine's read-fault
        # injector nor any transport, so the guardian must carry it
        abft = cfg.with_plan(faults)
    if observe:
        attach_spans(machine, name=algorithm)
    if layout == "blocked" and layout_block is None:
        layout_block = params.get("block") or max(1, int(np.sqrt(M // 3)))
    lay = make_layout(layout, n, block=layout_block)
    a0 = random_spd(n, seed=seed)
    A = TrackedMatrix(a0, lay, machine)
    t0 = time.perf_counter()
    try:
        L = run_algorithm(algorithm, A, abft=abft, **params)
    finally:
        if guard is not None:
            guard.attempt_done(machine)
    wall = time.perf_counter() - t0
    ok = True
    if verify:
        ok = bool(np.allclose(L, np.linalg.cholesky(a0), atol=1e-6))
    L.verified = ok
    L.seed = seed
    lvl = machine.levels[0]
    recorded = dict(params)
    if layout_block is not None:
        recorded["layout_block"] = layout_block
    publish_run(
        kind="sequential",
        algorithm=algorithm,
        words=lvl.words,
        messages=lvl.messages,
        flops=machine.flops,
    )
    publish_perf(
        kind="sequential",
        algorithm=algorithm,
        wall_seconds=wall,
        batch_hits=machine.batch_hits,
    )
    span_tree = machine.profiler.profile() if observe else None
    fault_dict = (
        machine.faults.stats.to_dict() if machine.faults is not None else None
    )
    if fault_dict is not None:
        publish_faults(fault_dict)
    abft_rec = getattr(L, "abft", None)
    if abft_rec is not None:
        publish_abft(abft_rec)
    return Measurement(
        algorithm=algorithm,
        layout=lay.name,
        n=n,
        M=M,
        words=lvl.words,
        messages=lvl.messages,
        words_read=lvl.counters.words_read,
        words_written=lvl.counters.words_written,
        flops=machine.flops,
        correct=ok,
        seed=seed,
        params=freeze_params(recorded),
        run=L,
        profile=None if span_tree is None else span_tree.to_dict(),
        faults=fault_dict,
        abft=abft_rec,
    )


def measure_parallel(
    n: int,
    block: int,
    P: int,
    *,
    seed: int = 0,
    verify: bool = True,
    observe: bool = False,
    faults: "FaultPlan | None" = None,
    guard=None,
    abft=None,
) -> Measurement:
    """Run one PxPOTRF configuration; report it in the unified schema.

    ``words``/``messages`` are the critical-path counts and ``flops``
    the max per-processor work — the Table 2 quantities — exposed
    through the same :class:`~repro.results.Measurement` fields the
    sequential path uses, with ``P`` and ``block`` filled in.
    ``observe=True`` records per-panel spans into the measurement's
    ``profile`` field (counts are unchanged).  ``guard`` meters the run
    against a :class:`~repro.serving.budget.BudgetGuard` (see
    :func:`measure`); the network reports its spend incrementally, so
    no end-of-attempt folding is needed.
    """
    a0 = random_spd(n, seed=seed)
    t0 = time.perf_counter()
    res = pxpotrf(
        a0, block, P, observe_spans=observe, faults=faults, guard=guard,
        abft=abft,
    )
    wall = time.perf_counter() - t0
    ok = True
    if verify:
        ok = bool(np.allclose(res.L, np.linalg.cholesky(a0), atol=1e-8))
    m = res.measurement
    publish_run(
        kind="parallel",
        algorithm="pxpotrf",
        words=m.words,
        messages=m.messages,
        flops=m.flops,
    )
    publish_perf(
        kind="parallel", algorithm="pxpotrf", wall_seconds=wall
    )
    if res.fault_stats is not None:
        publish_faults(res.fault_stats)
    if res.abft is not None:
        publish_abft(res.abft)
    return replace(m, correct=ok, seed=seed)


def _sweep(
    name: str,
    algorithm: str,
    configs: Sequence[tuple[int, int]],
    layout: str,
    metric: str,
    xs: Sequence[int],
    jobs: int,
    cache,
    seed: int,
    kw: dict,
) -> tuple[list[Measurement], PowerFit]:
    """Shared sweep body: build a spec, run the engine, fit the metric."""
    from repro.experiments import ExperimentSpec, run_experiment

    kw = dict(kw)
    verify = kw.pop("verify", True)
    cases = [
        {
            "algorithm": algorithm,
            "layout": layout,
            "n": n,
            "M": m_val,
            "params": kw,
            "verify": verify,
        }
        for n, m_val in configs
    ]
    spec = ExperimentSpec.from_cases(name, cases, seed=seed)
    result = run_experiment(spec, jobs=jobs, cache=cache)
    ms = result.measurements
    fit = fit_power_law(xs, [getattr(m, metric) for m in ms])
    return ms, fit


def sweep_n(
    algorithm: str,
    ns: Sequence[int],
    M: int | Callable[[int], int],
    *,
    layout: str = "column-major",
    metric: str = "words",
    jobs: int = 1,
    cache="default",
    seed: int = 0,
    **kw,
) -> tuple[list[Measurement], PowerFit]:
    """Sweep the matrix dimension; fit ``metric ~ n^p``.

    ``M`` may be a constant or a function of n (e.g. ``lambda n: 4*n``
    to stay in the naïve whole-column regime).  ``seed`` is the root
    the per-point seeds derive from (every point gets its own input
    matrix); ``jobs``/``cache`` are forwarded to the experiment
    engine.
    """
    configs = [(n, M(n) if callable(M) else M) for n in ns]
    return _sweep(
        f"sweep_n-{algorithm}-{layout}-{metric}",
        algorithm,
        configs,
        layout,
        metric,
        [n for n, _ in configs],
        jobs,
        cache,
        seed,
        kw,
    )


def sweep_param(
    algorithm: str,
    n: int,
    Ms: Sequence[int],
    *,
    layout: str = "column-major",
    metric: str = "words",
    jobs: int = 1,
    cache="default",
    seed: int = 0,
    **kw,
) -> tuple[list[Measurement], PowerFit]:
    """Sweep the fast-memory size at fixed n; fit ``metric ~ M^p``.

    Engine-backed like :func:`sweep_n`: cached, parallelizable via
    ``jobs``, per-point seeds derived from ``seed``.
    """
    configs = [(n, M) for M in Ms]
    return _sweep(
        f"sweep_param-{algorithm}-{layout}-{metric}",
        algorithm,
        configs,
        layout,
        metric,
        [M for _, M in configs],
        jobs,
        cache,
        seed,
        kw,
    )
