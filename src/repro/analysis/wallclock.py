"""Wall-clock benchmark of the simulator itself.

Every other bench in this repository measures the *modeled* machine
(words, messages, flops along the paper's bounds).  This one measures
the *simulator*: how long a run takes on the host, comparing the
batched interval-charging fast path (the default) against the
element-wise reference path (``REPRO_SLOW_PATH=1`` /
``Machine(batched=False)`` + :func:`repro.util.fastpath.set_fastpath`).

By default the fast path includes the schedule JIT
(:mod:`repro.schedule`): each point takes one untimed *capture* run
(interpreted, schedule recorded) and the timed repeats *replay* the
compiled schedule as array reductions.  ``--no-compile`` ablates the
JIT and times the interpreted batched path instead, so the speedup is
attributable between batching and compilation.

The paths are required to be **count-identical** — same words,
messages (read/write split), flops and peak resident set — so every
benchmark point re-runs its configuration down both paths and asserts
the equality before reporting a speedup.  A fast path that drifted
from the reference counts would invalidate every table in the repo,
which is why the gate lives inside the benchmark rather than beside
it.  Where Table 1 of the paper predicts the point's asymptotic
traffic, the record also carries the measured/predicted ratio as an
independent cross-check against :mod:`repro.bounds`.

``python -m repro.cli bench`` (or ``repro bench``) runs the pinned
grid and writes ``BENCH_4.json`` (``--grid registry --out
BENCH_8.json`` for the whole-registry document);
``pytest benchmarks/bench_wallclock.py`` runs the same harness under
the benchmark suite's conventions.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro.layouts.registry import make_layout
from repro.machine.core import SequentialMachine
from repro.matrices.generators import random_spd
from repro.matrices.tracked import TrackedMatrix
from repro.observability.metrics import publish_perf
from repro.schedule import (
    ScheduleCache,
    compile_disabled,
    last_run_mode,
    set_default_cache,
)
from repro.sequential.registry import run_algorithm
from repro.util.fastpath import fastpath_enabled, set_fastpath

#: Counter fields that must agree exactly between the two paths.
COUNT_FIELDS = (
    "words",
    "messages",
    "words_read",
    "words_written",
    "messages_read",
    "messages_written",
    "flops",
    "peak_resident",
)


@dataclass(frozen=True)
class BenchPoint:
    """One pinned (algorithm, layout, n, M) benchmark configuration."""

    algorithm: str
    layout: str
    n: int
    M: int
    params: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.algorithm}/{self.layout} n={self.n} M={self.M}"


#: The pinned grid ``repro bench`` runs by default.  The naive point
#: sits in the whole-column regime (M = 2n); the recursive points use
#: the Table 1 reference memory size.
FULL_GRID: "tuple[BenchPoint, ...]" = (
    BenchPoint("naive-left", "column-major", n=512, M=1024),
    BenchPoint("toledo", "column-major", n=512, M=768),
    BenchPoint("square-recursive", "morton", n=512, M=768),
)

#: A seconds-scale grid for CI smoke runs: same algorithms, small n.
TINY_GRID: "tuple[BenchPoint, ...]" = (
    BenchPoint("naive-left", "column-major", n=96, M=192),
    BenchPoint("toledo", "column-major", n=96, M=256),
    BenchPoint("square-recursive", "morton", n=96, M=256),
)

#: Every registry algorithm at paper scale (n = 512): the ``--grid
#: registry`` document (``BENCH_8.json``) gates each one at ≥10x over
#: the element-wise reference.  The naive/blocked points use the
#: whole-column regime M = 2n; the recursive points the Table 1
#: reference memory size.
REGISTRY_GRID: "tuple[BenchPoint, ...]" = (
    BenchPoint("naive-left", "column-major", n=512, M=1024),
    BenchPoint("naive-right", "column-major", n=512, M=1024),
    BenchPoint("naive-up", "column-major", n=512, M=1024),
    BenchPoint("lapack", "column-major", n=512, M=1024),
    BenchPoint("lapack-right", "column-major", n=512, M=1024),
    BenchPoint("toledo", "column-major", n=512, M=768),
    BenchPoint("square-recursive", "morton", n=512, M=768),
)

#: Whole registry at CI-smoke scale (same shape as REGISTRY_GRID).
REGISTRY_TINY: "tuple[BenchPoint, ...]" = (
    BenchPoint("naive-left", "column-major", n=96, M=192),
    BenchPoint("naive-right", "column-major", n=96, M=192),
    BenchPoint("naive-up", "column-major", n=96, M=192),
    BenchPoint("lapack", "column-major", n=96, M=192),
    BenchPoint("lapack-right", "column-major", n=96, M=192),
    BenchPoint("toledo", "column-major", n=96, M=256),
    BenchPoint("square-recursive", "morton", n=96, M=256),
)

GRIDS = {
    "full": FULL_GRID,
    "tiny": TINY_GRID,
    "registry": REGISTRY_GRID,
    "registry-tiny": REGISTRY_TINY,
}


def _bounds_crosscheck(point: BenchPoint, counts: dict) -> dict:
    """Measured-vs-predicted ratios against :mod:`repro.bounds`.

    Table 1 rows are Θ/O-forms with no constants, so this is a
    consistency check (finite, stable ratios), not exact equality;
    the lower-bound ratio uses Corollary 2.3's ``n³/√M``.
    """
    from repro.bounds.sequential import (
        cholesky_bandwidth_lower_bound,
        table1_predictions,
    )

    n, M = point.n, point.M
    out = {
        "lower_bound_words": cholesky_bandwidth_lower_bound(n, M),
        "words_over_lower_bound": counts["words"]
        / cholesky_bandwidth_lower_bound(n, M),
        "table1": [],
    }
    for row in table1_predictions(n, M):
        if row.algorithm != point.algorithm or row.storage != point.layout:
            continue
        out["table1"].append(
            {
                "storage": row.storage,
                "predicted_words": row.bandwidth,
                "predicted_messages": row.latency,
                "words_ratio": counts["words"] / row.bandwidth,
                "messages_ratio": counts["messages"] / row.latency,
            }
        )
    return out


def _run_once(point: BenchPoint, a0: np.ndarray, *, fast: bool):
    """One simulation of ``point`` down one charging path.

    Returns ``(wall_seconds, counts, batch_hits, L)``.
    """
    was = fastpath_enabled()
    set_fastpath(fast)
    try:
        machine = SequentialMachine(point.M, batched=fast)
        lay = make_layout(
            point.layout, point.n, block=point.params.get("layout_block")
        )
        A = TrackedMatrix(a0, lay, machine)
        params = {
            k: v for k, v in point.params.items() if k != "layout_block"
        }
        t0 = time.perf_counter()
        L = run_algorithm(point.algorithm, A, **params)
        wall = time.perf_counter() - t0
    finally:
        set_fastpath(was)
    lvl = machine.levels[0]
    counts = {
        "words": lvl.words,
        "messages": lvl.messages,
        "words_read": lvl.counters.words_read,
        "words_written": lvl.counters.words_written,
        "messages_read": lvl.counters.messages_read,
        "messages_written": lvl.counters.messages_written,
        "flops": machine.flops,
        "peak_resident": lvl.peak_resident,
    }
    return wall, counts, machine.batch_hits, np.asarray(L), last_run_mode()


def run_point(
    point: BenchPoint,
    *,
    repeats: int = 3,
    seed: int = 0,
    compiled: bool = True,
    slow_repeats: "int | None" = None,
) -> dict:
    """Benchmark one grid point down both paths; returns its record.

    With ``compiled`` (the default) the point first takes one untimed
    capture run against a fresh memory-only schedule cache, so the
    timed fast repeats are replays — the steady state of repeated
    same-spec traffic.  ``compiled=False`` ablates the schedule JIT
    and times the interpreted batched path.  ``slow_repeats`` trims
    the element-wise reference repeats (it is the slowest part of the
    bench by far); default is ``repeats``.

    The record carries the per-path wall-time samples and medians, the
    fast/slow speedup, the (shared) simulated counters, how each fast
    run executed (``schedule.modes``), the Table 1 cross-check, and
    the two gates: ``counts_equal`` (exact counter identity) and
    ``numerics_match`` (factors allclose — the batched path may
    reorder float accumulations, so bitwise equality is not part of
    the contract).
    """
    if slow_repeats is None:
        slow_repeats = repeats
    a0 = random_spd(point.n, seed=seed)
    fast_walls, slow_walls, modes = [], [], []
    fast_counts = slow_counts = None
    batch_hits = 0
    capture_seconds = None
    L_fast = L_slow = None
    prev_cache = set_default_cache(ScheduleCache(None)) if compiled else None
    try:
        if compiled:
            # warm the schedule cache: one untimed interpreted capture
            capture_seconds, *_rest = _run_once(point, a0, fast=True)
        for _ in range(repeats):
            if compiled:
                wall, fast_counts, batch_hits, L_fast, mode = _run_once(
                    point, a0, fast=True
                )
            else:
                with compile_disabled():
                    wall, fast_counts, batch_hits, L_fast, mode = _run_once(
                        point, a0, fast=True
                    )
            fast_walls.append(wall)
            modes.append(mode)
        for _ in range(slow_repeats):
            wall, slow_counts, _hits, L_slow, _mode = _run_once(
                point, a0, fast=False
            )
            slow_walls.append(wall)
    finally:
        if compiled:
            set_default_cache(prev_cache)
    fast_med = statistics.median(fast_walls)
    slow_med = statistics.median(slow_walls)
    counts_equal = fast_counts == slow_counts
    numerics_match = bool(np.allclose(L_fast, L_slow, atol=1e-8))
    publish_perf(
        kind="bench",
        algorithm=point.algorithm,
        wall_seconds=fast_med,
        batch_hits=batch_hits,
    )
    return {
        "algorithm": point.algorithm,
        "layout": point.layout,
        "n": point.n,
        "M": point.M,
        "params": dict(point.params),
        "repeats": repeats,
        "fast": {
            "wall_seconds": fast_walls,
            "wall_seconds_median": fast_med,
            "batch_hits": batch_hits,
        },
        "slow": {
            "wall_seconds": slow_walls,
            "wall_seconds_median": slow_med,
        },
        "schedule": {
            "compile": compiled,
            "modes": modes,
            "capture_seconds": capture_seconds,
        },
        "speedup": slow_med / fast_med if fast_med > 0 else float("inf"),
        "counts_equal": counts_equal,
        "numerics_match": numerics_match,
        "counters": fast_counts,
        "counters_slow": None if counts_equal else slow_counts,
        "bounds": _bounds_crosscheck(point, fast_counts),
    }


def run_grid(
    grid=FULL_GRID,
    *,
    repeats: int = 3,
    seed: int = 0,
    echo=None,
    compiled: bool = True,
    slow_repeats: "int | None" = None,
) -> dict:
    """Run every grid point; returns the bench JSON document."""
    points = []
    for point in grid:
        if echo:
            echo(f"[bench] {point.label} ...")
        rec = run_point(
            point,
            repeats=repeats,
            seed=seed,
            compiled=compiled,
            slow_repeats=slow_repeats,
        )
        if echo:
            echo(
                f"[bench] {point.label}: "
                f"fast {rec['fast']['wall_seconds_median']:.3f}s, "
                f"slow {rec['slow']['wall_seconds_median']:.3f}s, "
                f"speedup {rec['speedup']:.1f}x, "
                f"counts_equal={rec['counts_equal']}, "
                f"modes={','.join(sorted(set(rec['schedule']['modes'])))}"
            )
        points.append(rec)
    return {
        "bench": "wallclock",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "compile": compiled,
        "grid": points,
        "all_counts_equal": all(p["counts_equal"] for p in points),
        "all_numerics_match": all(p["numerics_match"] for p in points),
    }


def bench_main(argv: "list[str]") -> int:
    """``repro bench``: run the wall-clock grid and write the JSON."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the simulator's batched fast path against "
        "the element-wise reference path (count-identity asserted).",
    )
    parser.add_argument(
        "--grid",
        choices=sorted(GRIDS),
        default="full",
        help="which pinned grid to run (default: full)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="R",
        help="simulations per (point, path); the median is reported "
        "(default: 3)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_4.json",
        metavar="PATH",
        help="where to write the result document (default: BENCH_4.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-compile",
        action="store_true",
        help="ablate the schedule JIT: time the interpreted batched "
        "path instead of compiled replays",
    )
    parser.add_argument(
        "--slow-repeats",
        type=int,
        default=None,
        metavar="R",
        help="element-wise reference repeats (default: same as --repeats)",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        metavar="X",
        help="fail (exit 1) unless every point's speedup is >= X",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.slow_repeats is not None and args.slow_repeats < 1:
        parser.error("--slow-repeats must be >= 1")
    echo = None if args.quiet else lambda s: print(s, file=sys.stderr)
    doc = run_grid(
        GRIDS[args.grid],
        repeats=args.repeats,
        seed=args.seed,
        echo=echo,
        compiled=not args.no_compile,
        slow_repeats=args.slow_repeats,
    )
    from repro.util.serialization import atomic_write_json

    atomic_write_json(args.out, doc, indent=2)
    print(f"[bench] wrote {args.out}")
    if not doc["all_counts_equal"]:
        bad = [p for p in doc["grid"] if not p["counts_equal"]]
        for p in bad:
            print(
                f"[bench] FAIL: counts diverge on {p['algorithm']} "
                f"n={p['n']} M={p['M']}: fast={p['counters']} "
                f"slow={p['counters_slow']}",
                file=sys.stderr,
            )
        return 1
    if not doc["all_numerics_match"]:
        print("[bench] FAIL: fast/slow factors diverged numerically",
              file=sys.stderr)
        return 1
    if args.gate is not None:
        slow_points = [
            p for p in doc["grid"] if p["speedup"] < args.gate
        ]
        for p in slow_points:
            print(
                f"[bench] FAIL: {p['algorithm']} n={p['n']} M={p['M']} "
                f"speedup {p['speedup']:.1f}x < gate {args.gate:.1f}x",
                file=sys.stderr,
            )
        if slow_points:
            return 1
    return 0


__all__ = [
    "COUNT_FIELDS",
    "BenchPoint",
    "FULL_GRID",
    "REGISTRY_GRID",
    "REGISTRY_TINY",
    "TINY_GRID",
    "GRIDS",
    "bench_main",
    "run_grid",
    "run_point",
]
