"""ASCII renderings of the paper's figures.

The paper's figures are diagrams, not data plots; their quantitative
content lives in the benches.  These renderers regenerate the diagrams
themselves from the actual implementation — the layout drawings come
from the real address maps, the dependency picture from the real DAG,
the distribution picture from the real block-cyclic owner function —
so a discrepancy between picture and paper would indicate a bug, not a
drawing choice.

* :func:`render_dependencies` — Figure 1: the sets S(i,j) (direct
  deps, ``#``), indirect deps (``+``), the entry itself (``@``);
* :func:`render_layout` — Figure 2: each stored entry labelled by its
  storage order (base-36), so column-major shows vertical stripes and
  Morton shows the Z-curve;
* :func:`render_block_cyclic` — Figure 6 left: each block labelled by
  its owner rank.
"""

from __future__ import annotations

import string

from repro.analysis.dag import CholeskyDag
from repro.layouts.base import Layout
from repro.parallel.grid import ProcessorGrid
from repro.util.imath import ceil_div

_DIGITS = string.digits + string.ascii_lowercase


def _b36(x: int) -> str:
    """Base-36 rendering (two chars max needed for our figure sizes)."""
    if x < 36:
        return _DIGITS[x]
    return _DIGITS[(x // 36) % 36] + _DIGITS[x % 36]


def render_dependencies(n: int, i: int, j: int) -> str:
    """Figure 1: direct (#) and indirect (+) dependencies of L(i,j)."""
    dag = CholeskyDag(n)
    direct = set(dag.deps[(i, j)])
    indirect = dag.transitive_dependencies(i, j) - direct
    lines = [f"dependencies of L({i},{j}) in a {n}x{n} factorization"]
    for r in range(n):
        row = []
        for c in range(r + 1):
            if (r, c) == (i, j):
                row.append("@")
            elif (r, c) in direct:
                row.append("#")
            elif (r, c) in indirect:
                row.append("+")
            else:
                row.append(".")
        lines.append(" ".join(row))
    lines.append("@ = the entry   # = S(i,j) (direct)   + = indirect")
    return "\n".join(lines) + "\n"


def render_layout(layout: Layout, width: int = 2) -> str:
    """Figure 2: the matrix with each stored cell's storage *rank*.

    Cells are labelled by the rank of their address among all stored
    addresses (so padded formats still show a dense numbering).
    Unstored cells print ``..``.
    """
    n = layout.n
    stored = sorted(
        (layout.address(i, j), i, j)
        for j in range(n)
        for i in range(n)
        if layout.stores(i, j)
    )
    rank = {(i, j): r for r, (_a, i, j) in enumerate(stored)}
    lines = [f"{layout.name} layout, n={n} (cells numbered in storage order)"]
    for i in range(n):
        row = []
        for j in range(n):
            if (i, j) in rank:
                row.append(_b36(rank[(i, j)]).rjust(width))
            else:
                row.append("." * width)
        lines.append(" ".join(row))
    return "\n".join(lines) + "\n"


def render_block_cyclic(n: int, block: int, grid: ProcessorGrid) -> str:
    """Figure 6 (left): block-cyclic ownership of the lower triangle."""
    nb = ceil_div(n, block)
    lines = [
        f"block-cyclic ownership: n={n}, b={block}, "
        f"grid {grid.rows}x{grid.cols} (blocks labelled by owner rank)"
    ]
    for bi in range(nb):
        row = []
        for bj in range(nb):
            if bi >= bj:
                row.append(_b36(grid.block_owner(bi, bj)).rjust(2))
            else:
                row.append(" .")
        lines.append(" ".join(row))
    return "\n".join(lines) + "\n"
