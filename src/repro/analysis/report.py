"""Report assembly: text artifacts under ``reports/``.

Every bench both prints its table (visible with ``pytest -s`` or via
``python -m repro.cli``) and writes it to ``reports/<name>.txt`` so
EXPERIMENTS.md can quote stable artifacts.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.util.tables import format_kv_block, format_table


def default_reports_dir() -> str:
    """``reports/`` next to the repository root (cwd-based fallback)."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.normpath(os.path.join(here, "..", "..", "..", "reports")),
        os.path.join(os.getcwd(), "reports"),
    ):
        parent = os.path.dirname(candidate)
        if os.path.isdir(parent):
            return candidate
    return os.path.join(os.getcwd(), "reports")


class ReportWriter:
    """Accumulates report sections, then prints and/or saves them."""

    def __init__(self, name: str, directory: str | None = None) -> None:
        self.name = name
        self.directory = directory or default_reports_dir()
        self.sections: list[str] = []

    def add_table(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
        title: str | None = None,
    ) -> None:
        """Append an aligned table section."""
        self.sections.append(format_table(headers, rows, title=title))

    def add_kv(self, title: str, pairs: Iterable[tuple[str, object]]) -> None:
        """Append a titled key/value block section."""
        self.sections.append(format_kv_block(title, pairs))

    def add_text(self, text: str) -> None:
        """Append a free-text section (newline-terminated)."""
        self.sections.append(text if text.endswith("\n") else text + "\n")

    def render(self) -> str:
        """All sections joined into the final report text."""
        return "\n".join(self.sections)

    def save(self) -> str:
        """Atomically write the report to ``reports/<name>.txt``."""
        from repro.util.serialization import atomic_write_text

        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, f"{self.name}.txt")
        return atomic_write_text(path, self.render())

    def emit(self, echo: bool = True) -> str:
        """Print (optionally) and save; returns the saved path."""
        if echo:
            print(self.render())
        return self.save()
