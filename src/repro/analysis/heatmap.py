"""Per-entry access heatmaps (the quantitative face of Figure 3).

Figure 3 depicts which regions the naïve sweeps touch; this module
measures it.  Replaying a machine trace against a layout's inverse
address map yields, for every matrix entry, how many times it crossed
the fast/slow boundary — making the algorithms' access *shapes*
visible and testable:

* left-looking: entry ``(i, j)`` is read once per later column it
  updates — counts grow toward the bottom-left history;
* right-looking: trailing entries are re-read and re-written every
  iteration — counts grow toward the bottom-right;
* blocked/recursive algorithms flatten both shapes by ~√M.

The ASCII rendering buckets counts into density characters, giving a
terminal-sized picture of each sweep.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import Layout
from repro.machine.tracing import MachineTrace
from repro.matrices.tracked import TrackedMatrix


def access_counts(
    trace: MachineTrace, matrix: TrackedMatrix
) -> np.ndarray:
    """Per-entry transfer counts from a machine trace.

    Returns an ``n × n`` integer array: how many times each stored
    entry of ``matrix`` was moved (read or write).  Addresses outside
    the matrix's region (other operands on the same machine) are
    ignored.
    """
    layout: Layout = matrix.layout
    base = matrix.base
    inverse = {
        layout.address(i, j) + base: (i, j)
        for j in range(layout.n)
        for i in range(layout.n)
        if layout.stores(i, j)
    }
    counts = np.zeros((layout.n, layout.n), dtype=np.int64)
    for addr, _is_write in trace.address_stream():
        entry = inverse.get(addr)
        if entry is not None:
            counts[entry] += 1
    return counts


DENSITY = " .:-=+*#%@"


def render_heatmap(counts: np.ndarray, title: str = "") -> str:
    """Bucket counts into a 10-level ASCII density picture."""
    n = counts.shape[0]
    peak = int(counts.max()) if counts.size else 0
    lines = [title or "access heatmap"]
    lines.append(f"(peak = {peak} transfers per entry)")
    for i in range(n):
        row = []
        for j in range(n):
            c = counts[i, j]
            if peak == 0 or c == 0:
                row.append(DENSITY[0] if j > i else ".")
            else:
                level = min(len(DENSITY) - 1, 1 + (len(DENSITY) - 2) * (c - 1) // peak)
                row.append(DENSITY[level])
        lines.append("".join(row))
    return "\n".join(lines) + "\n"
