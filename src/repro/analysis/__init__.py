"""Measurement and reporting utilities.

``repro.analysis.stability``
    Backward-error checks per §3.1.2 (the standard Cholesky error
    analysis holds for *any* summation order, hence for every
    algorithm here; the tests verify the normwise residual bound).

``repro.analysis.sweeps``
    The measurement engine of the benchmark harness: run an algorithm
    over (n, M, layout) grids, collect counters, fit scaling
    exponents.

``repro.analysis.report``
    Assemble the Table 1 / Table 2 style text reports the benches
    print and save under ``reports/``.
"""

from repro.analysis.stability import residual_ratio, stability_report
from repro.analysis.sweeps import (
    Measurement,
    measure,
    measure_parallel,
    sweep_n,
    sweep_param,
)
from repro.analysis.report import ReportWriter
from repro.analysis.dag import CholeskyDag, direct_dependencies
from repro.analysis.figures import (
    render_block_cyclic,
    render_dependencies,
    render_layout,
)
from repro.analysis.heatmap import access_counts, render_heatmap

__all__ = [
    "residual_ratio",
    "stability_report",
    "Measurement",
    "measure",
    "measure_parallel",
    "sweep_n",
    "sweep_param",
    "ReportWriter",
    "CholeskyDag",
    "direct_dependencies",
    "render_dependencies",
    "render_layout",
    "render_block_cyclic",
    "access_counts",
    "render_heatmap",
]
