"""Numerical stability checks (paper §3.1.2).

Higham's standard analysis (Accuracy and Stability of Numerical
Algorithms, §10.1.1) bounds the backward error of *any* classical
Cholesky — the bound holds for every ordering of the sums in
Equations (5)–(6), i.e. for every algorithm in this repository:

    ‖A − L̂·L̂ᵀ‖ ≤ c·(n+1)·u·‖A‖   (normwise, u = unit roundoff)

``residual_ratio`` measures ‖A − L Lᵀ‖_F / ((n+1)·u·‖A‖_F); the tests
assert it stays below a modest constant for every algorithm and
matrix family.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_square


UNIT_ROUNDOFF = float(np.finfo(np.float64).eps) / 2.0
"""float64 unit roundoff u = 2⁻⁵³."""


def residual_ratio(a: np.ndarray, L: np.ndarray) -> float:
    """Normwise backward-error ratio of a computed factor.

    Returns ``‖A − L Lᵀ‖_F / ((n+1)·u·‖A‖_F)``; Higham's analysis
    makes this O(1)-bounded for any classical evaluation order.
    """
    a = check_square("a", a)
    L = check_square("L", L)
    if a.shape != L.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {L.shape}")
    n = a.shape[0]
    num = float(np.linalg.norm(a - L @ L.T, "fro"))
    den = (n + 1) * UNIT_ROUNDOFF * float(np.linalg.norm(a, "fro"))
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / den


def stability_report(
    a: np.ndarray, factors: dict[str, np.ndarray]
) -> dict[str, float]:
    """Residual ratios of several algorithms' factors on one input."""
    return {name: residual_ratio(a, L) for name, L in factors.items()}
