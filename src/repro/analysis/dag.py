"""The element-level dependency DAG of Cholesky (paper, Figure 1).

Equations (5)–(6) make entry ``L(i, j)`` depend on

    S(i,i) = { L(i,k) : k < i }                      (diagonal)
    S(i,j) = { L(i,k) : k < j } ∪ { L(j,k) : k <= j } (off-diagonal)

and Lemma 2.2's proof inducts over the partial order these sets
generate.  This module materializes that DAG so the claims about it
become executable:

* the sets themselves (:func:`direct_dependencies`, matching (7)–(8));
* validity of a schedule (:func:`is_valid_schedule`) — the tests check
  that the left-looking, right-looking and recursive element orders
  used by :mod:`repro.starred.linalg` are all topological orders, which
  is the precondition of Lemma 2.2;
* the DAG's *critical path* (:func:`critical_path_length`), the depth
  below which no amount of parallelism can finish — 2n−1 levels of
  element dependencies;
* per-entry dependency counts for the Figure 1 rendering in
  :mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.util.validation import check_positive_int

Entry = Tuple[int, int]


def entries(n: int) -> Iterator[Entry]:
    """All lower-triangle entries, column-major order."""
    check_positive_int("n", n)
    for j in range(n):
        for i in range(j, n):
            yield (i, j)


def direct_dependencies(i: int, j: int) -> List[Entry]:
    """The set S(i,j) of Equations (7)–(8), 0-based.

    For a diagonal entry ``(i, i)``: all earlier entries of row i.
    For ``i > j``: row i left of column j, plus row j up to and
    including the pivot ``(j, j)``.
    """
    if i < j or i < 0:
        raise ValueError(f"({i},{j}) is not a lower-triangle entry")
    if i == j:
        return [(i, k) for k in range(i)]
    deps = [(i, k) for k in range(j)]
    deps += [(j, k) for k in range(j + 1)]
    return deps


class CholeskyDag:
    """The full dependency DAG for an n×n factorization."""

    def __init__(self, n: int) -> None:
        self.n = check_positive_int("n", n)
        self.deps: Dict[Entry, List[Entry]] = {
            e: direct_dependencies(*e) for e in entries(n)
        }

    def __len__(self) -> int:
        return len(self.deps)

    def edge_count(self) -> int:
        """Total number of direct-dependency edges (Σ|S(i,j)|)."""
        return sum(len(d) for d in self.deps.values())

    # -- schedules ---------------------------------------------------------

    def is_valid_schedule(self, order: Sequence[Entry]) -> bool:
        """Whether ``order`` computes every entry after its deps.

        This is exactly the hypothesis of Lemma 2.2: "any ordering of
        the computation of the elements of L that respects the partial
        ordering ... results in a correct computation".
        """
        if sorted(order) != sorted(self.deps):
            return False
        position = {e: t for t, e in enumerate(order)}
        return all(
            all(position[d] < position[e] for d in self.deps[e])
            for e in order
        )

    @staticmethod
    def left_looking_order(n: int) -> List[Entry]:
        """Column at a time, top to bottom (Algorithm 2's order)."""
        return list(entries(n))

    @staticmethod
    def right_looking_order(n: int) -> List[Entry]:
        """Algorithm 3 finalizes entries in the same column-major
        element order; the *updates* are eager but each entry's final
        value is produced column by column."""
        return list(entries(n))

    @staticmethod
    def up_looking_order(n: int) -> List[Entry]:
        """Row at a time, left to right (the row-wise variant)."""
        return [(i, j) for i in range(n) for j in range(i + 1)]

    @staticmethod
    def recursive_order(n: int) -> List[Entry]:
        """The element order induced by Algorithm 6's recursion."""
        from repro.util.imath import split_point

        out: List[Entry] = []

        def tri(lo: int, hi: int) -> None:
            if hi - lo == 1:
                out.append((lo, lo))
                return
            k = lo + split_point(hi - lo)
            tri(lo, k)
            # panel: L21 column-major, then trailing triangle
            for j in range(lo, k):
                for i in range(k, hi):
                    out.append((i, j))
            tri(k, hi)

        tri(0, n)
        return out

    # -- structure metrics ------------------------------------------------------

    def levels(self) -> Dict[Entry, int]:
        """Longest-path depth of every entry (level 0 = no deps)."""
        depth: Dict[Entry, int] = {}
        for e in entries(self.n):  # column-major is a topological order
            ds = self.deps[e]
            depth[e] = 1 + max((depth[d] for d in ds), default=-1)
        return depth

    def critical_path_length(self) -> int:
        """Number of levels on the longest dependency chain.

        For Cholesky this is ``2n − 1``: the chain
        L(0,0) → L(1,0) → L(1,1) → L(2,1) → … alternates sub-diagonal
        and diagonal entries.  This is the depth bound any parallel
        schedule of the classical algorithm obeys.
        """
        return 1 + max(self.levels().values())

    def dependency_counts(self) -> Dict[Entry, int]:
        """|S(i,j)| per entry — 2j+1 off-diagonal, i on the diagonal."""
        return {e: len(d) for e, d in self.deps.items()}

    def transitive_dependencies(self, i: int, j: int) -> set[Entry]:
        """Everything (i,j) depends on, directly or not — the light
        grey region of Figure 1."""
        seen: set[Entry] = set()
        stack = list(self.deps[(i, j)])
        while stack:
            e = stack.pop()
            if e not in seen:
                seen.add(e)
                stack.extend(self.deps[e])
        return seen
