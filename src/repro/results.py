"""Unified run results: one schema for every execution path.

Historically ``run_algorithm`` returned a bare ``np.ndarray`` factor
while ``measure`` returned a counters-only dataclass, and the parallel
path had its own ``ParallelRunResult`` vocabulary
(``critical_words``/``critical_messages``/``max_flops``).  This module
defines the single schema all three now share:

:class:`Measurement`
    A frozen record of one run's configuration and counters — the same
    fields whether the run was a sequential DAM simulation or a
    PxPOTRF network simulation (parallel runs fill ``P``/``block`` and
    report critical-path counts through ``words``/``messages``/
    ``flops``).  It serializes losslessly to/from JSON dicts, which is
    what the experiment cache stores.

:class:`RunResult`
    The factor itself *plus* provenance.  It subclasses ``np.ndarray``,
    so every pre-existing call shape — ``np.allclose(L, ref)``,
    ``L.T``, indexing — keeps working on the return value of
    ``run_algorithm`` unchanged; the redesign adds ``.measurement``,
    ``.machine`` and ``.config`` on top instead of breaking callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterable, Mapping

import numpy as np

ParamsTuple = "tuple[tuple[str, Any], ...]"


def freeze_params(params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None):
    """Canonicalize a params mapping into a sorted tuple of pairs.

    The frozen form is hashable (usable in frozen dataclasses and as
    part of cache keys) and order-independent: two equal mappings
    always freeze identically.
    """
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class Measurement:
    """Configuration + counters of one simulated run (any path).

    The first ten fields are the original sequential schema and keep
    their order, so existing positional construction still works.  The
    trailing fields unify the parallel path (``P``, ``block``), record
    the seed/params provenance, and optionally carry the live
    :class:`RunResult` (never serialized, excluded from equality).

    For parallel runs ``words``/``messages``/``flops`` hold the
    critical-path words, critical-path messages and max-per-processor
    flops; the DAM read/write split does not exist on the network, so
    ``words_read = words`` and ``words_written = 0`` there.
    """

    algorithm: str
    layout: str
    n: int
    M: int | None
    words: int
    messages: int
    words_read: int
    words_written: int
    flops: int
    correct: bool
    P: int | None = None
    block: int | None = None
    seed: int | None = None
    params: tuple = ()
    run: "RunResult | None" = field(default=None, compare=False, repr=False)
    #: Serialized span tree (``SpanProfile.to_dict()``) when the run
    #: was observed, else ``None``.  A dict is unhashable, so it is
    #: excluded from equality/hash like ``run``; unlike ``run`` it
    #: round-trips through :meth:`to_dict`/:meth:`from_dict`.
    profile: dict | None = field(default=None, compare=False, repr=False)
    #: Serialized :class:`~repro.faults.FaultStats` when the run had a
    #: fault plan (or checkpointing) active, else ``None``.  Like
    #: ``profile``: JSON round-trips, excluded from equality/hash.
    faults: dict | None = field(default=None, compare=False, repr=False)
    #: The ``abft`` counter group (:class:`~repro.abft.AbftStats` dict
    #: plus config and factor attestation) when the run was
    #: checksum-protected, else ``None``.  Omitted entirely from
    #: :meth:`to_dict` when ``None`` so unprotected measurements
    #: serialize byte-identically to the pre-ABFT schema.
    abft: dict | None = field(default=None, compare=False, repr=False)

    @property
    def bandwidth_per_flop(self) -> float:
        """Words moved per flop performed (0 for a flop-free run)."""
        return self.words / self.flops if self.flops else 0.0

    def to_dict(self) -> dict:
        """JSON-ready dict (canonical types; ``run`` is dropped)."""
        d = {
            "algorithm": str(self.algorithm),
            "layout": str(self.layout),
            "n": int(self.n),
            "M": None if self.M is None else int(self.M),
            "words": int(self.words),
            "messages": int(self.messages),
            "words_read": int(self.words_read),
            "words_written": int(self.words_written),
            "flops": int(self.flops),
            "correct": bool(self.correct),
            "P": None if self.P is None else int(self.P),
            "block": None if self.block is None else int(self.block),
            "seed": None if self.seed is None else int(self.seed),
            "params": [[k, v] for k, v in self.params],
            "profile": self.profile,
            "faults": self.faults,
        }
        if self.abft is not None:
            d["abft"] = self.abft
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Measurement":
        """Rebuild a measurement from :meth:`to_dict` output."""
        return cls(
            algorithm=d["algorithm"],
            layout=d["layout"],
            n=int(d["n"]),
            M=None if d.get("M") is None else int(d["M"]),
            words=int(d["words"]),
            messages=int(d["messages"]),
            words_read=int(d["words_read"]),
            words_written=int(d["words_written"]),
            flops=int(d["flops"]),
            correct=bool(d["correct"]),
            P=None if d.get("P") is None else int(d["P"]),
            block=None if d.get("block") is None else int(d["block"]),
            seed=None if d.get("seed") is None else int(d["seed"]),
            params=tuple((str(k), v) for k, v in (d.get("params") or ())),
            profile=d.get("profile"),
            faults=d.get("faults"),
            abft=d.get("abft"),
        )

    def without_run(self) -> "Measurement":
        """A copy with the live ``run`` handle dropped (picklable/cacheable)."""
        if self.run is None:
            return self
        return Measurement(
            **{f.name: getattr(self, f.name) for f in fields(self) if f.name != "run"}
        )


class RunResult(np.ndarray):
    """The factor ``L`` plus the provenance of the run that produced it.

    A ``RunResult`` *is* the factor — it subclasses ``np.ndarray``, so
    the historical call shape ``L = run_algorithm(...)`` followed by
    array operations keeps working verbatim (this is the deprecation
    shim: the old shape is a strict subset of the new object).  On top
    of the array it carries:

    ``algorithm``, ``layout``, ``n``, ``params``, ``seed``
        The configuration that produced the factor.
    ``machine``
        The simulator the run was charged to — the live trace handle
        (counters, per-level state, optional event trace).
    ``verified``
        ``True``/``False`` once checked against a reference Cholesky,
        ``None`` if never verified.

    ``.measurement`` snapshots the machine counters into the unified
    :class:`Measurement` schema.
    """

    _provenance = (
        "algorithm", "layout", "n", "params", "seed", "machine", "verified",
        "abft",
    )

    def __new__(
        cls,
        L: np.ndarray,
        *,
        algorithm: str,
        layout: str,
        n: int,
        params: tuple = (),
        seed: int | None = None,
        machine=None,
        verified: bool | None = None,
        abft: dict | None = None,
    ):
        obj = np.asarray(L).view(cls)
        obj.algorithm = algorithm
        obj.layout = layout
        obj.n = n
        obj.params = freeze_params(params) if not isinstance(params, tuple) else params
        obj.seed = seed
        obj.machine = machine
        obj.verified = verified
        obj.abft = abft
        return obj

    def __array_finalize__(self, obj):
        if obj is None:
            return
        for name in self._provenance:
            setattr(self, name, getattr(obj, name, None))

    @property
    def L(self) -> np.ndarray:
        """The factor as a plain ``np.ndarray`` view (no provenance)."""
        return self.view(np.ndarray)

    @property
    def config(self) -> dict:
        """The run's configuration as a plain dict (for logs/artifacts)."""
        return {
            "algorithm": self.algorithm,
            "layout": self.layout,
            "n": self.n,
            "params": dict(self.params or ()),
            "seed": self.seed,
        }

    @property
    def profile(self):
        """Span tree of the run (:class:`~repro.observability.SpanProfile`).

        ``None`` unless the run's machine had a live span recorder
        attached (``observe=True`` paths); the no-op profiler reports
        no tree.
        """
        prof = getattr(self.machine, "profiler", None)
        if prof is None or not prof.enabled:
            return None
        return prof.profile()

    @property
    def measurement(self) -> Measurement:
        """Snapshot the machine's counters as a :class:`Measurement`.

        Requires the run to have been produced against a machine (the
        normal ``run_algorithm`` path); derived arrays obtained by
        slicing keep the handle, detached copies may not.
        """
        if self.machine is None:
            raise ValueError("this RunResult carries no machine handle")
        lvl = self.machine.levels[0]
        span_tree = self.profile
        return Measurement(
            algorithm=self.algorithm,
            layout=self.layout,
            n=self.n,
            M=self.machine.M,
            words=lvl.words,
            messages=lvl.messages,
            words_read=lvl.counters.words_read,
            words_written=lvl.counters.words_written,
            flops=self.machine.flops,
            correct=True if self.verified is None else bool(self.verified),
            seed=self.seed,
            params=self.params or (),
            run=self,
            profile=None if span_tree is None else span_tree.to_dict(),
            abft=self.abft,
        )


__all__ = ["Measurement", "RunResult", "freeze_params"]
