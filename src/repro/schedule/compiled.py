"""Transfer-schedule capture and array replay (the cost-model JIT).

The paper's central observation is that the communication cost of a
Cholesky algorithm is a *closed-form function of shape*: every count
in Tables 1 and 2 depends only on (n, M, block sizes, layout), never
on matrix values.  The simulator exploits that: one instrumented run
of an algorithm is *captured* into a :class:`TransferSchedule` — a
struct-of-arrays record of every interval run it charged, which
direction it moved, and which hierarchy levels it hit — and any later
run of the same shape is *replayed* as a handful of vectorized NumPy
reductions plus one real ``dense_cholesky``, skipping the Python
interpretation of the algorithm entirely.

Capture happens through a :class:`ScheduleRecorder` hooked into every
charging chokepoint of :class:`~repro.machine.core.HierarchicalMachine`
(explicit reads/writes, batched charges, ideal-cache scope charges).
Each recorded run carries a *level bitmask* because the two charging
disciplines differ: explicit transfers are write-through (all levels),
while scope charges land only on the levels where the footprint first
fit.  Replay folds the arrays back into per-level counters and
validates itself: the totals recomputed from the arrays must match the
counter deltas observed during capture, or the schedule is discarded
(:meth:`ScheduleRecorder.finalize` returns ``None``) / refused
(:meth:`TransferSchedule.apply` raises :class:`ScheduleError`) —
a missed chokepoint can therefore never silently under-count.

Fault determinism survives compilation: the realized read-fault
schedule (which sequence numbers faulted, and what the retries cost)
is part of the schedule, so a replay under the same
:class:`~repro.faults.plan.FaultPlan` reconstructs byte-identical
fault events and statistics.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.core import HierarchicalMachine
    from repro.util.intervals import IntervalSet, RunBatch

#: On-disk / serialization format version; bump on layout changes.
SCHEDULE_FORMAT = 1


class ScheduleError(RuntimeError):
    """A compiled schedule cannot be applied to the given machine."""


def _ceil_messages(lengths: np.ndarray, cap: int) -> int:
    """Σ ceil(len / cap) over runs — the per-level message count."""
    if not len(lengths):
        return 0
    return int(-((-lengths) // cap).sum())


class TransferSchedule:
    """One algorithm run, compiled to arrays (the replayable artifact).

    Arrays (one entry per charged interval run, in charge order):

    * ``starts`` / ``stops`` — the half-open address run;
    * ``kinds`` — True for writes (fast → slow), False for reads;
    * ``masks`` — bitmask of hierarchy levels the run was charged at
      (bit ``i`` = ``machine.levels[i]``); explicit transfers carry the
      full mask, ideal-cache scope charges only their fitted levels.

    Scalars / metadata: the machine shape it was captured on
    (``capacities``, ``enforce_capacity``), the run's arithmetic and
    bookkeeping totals (``flops``, ``batch_hits``, ``read_calls``,
    per-level ``peaks``), the per-level counter totals observed at
    capture (``totals``, the ground truth replay is checked against),
    and the realized fault schedule (``fault_seqs`` and retry costs)
    under ``fault_digest`` (digest of the plan, ``None`` = fault-free).
    """

    __slots__ = (
        "starts",
        "stops",
        "kinds",
        "masks",
        "capacities",
        "enforce_capacity",
        "flops",
        "batch_hits",
        "read_calls",
        "peaks",
        "totals",
        "fault_digest",
        "fault_seqs",
        "fault_retry_words",
        "fault_retry_messages",
        "_verified",
    )

    def __init__(
        self,
        *,
        starts: np.ndarray,
        stops: np.ndarray,
        kinds: np.ndarray,
        masks: np.ndarray,
        capacities: Sequence[int],
        enforce_capacity: bool,
        flops: int,
        batch_hits: int,
        read_calls: int,
        peaks: Sequence[int],
        totals: Sequence[Sequence[int]],
        fault_digest: str | None = None,
        fault_seqs: Sequence[int] = (),
        fault_retry_words: int = 0,
        fault_retry_messages: int = 0,
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.int64)
        self.stops = np.asarray(stops, dtype=np.int64)
        self.kinds = np.asarray(kinds, dtype=bool)
        self.masks = np.asarray(masks, dtype=np.int64)
        nruns = len(self.starts)
        if not (len(self.stops) == len(self.kinds) == len(self.masks) == nruns):
            raise ValueError("schedule arrays must have equal length")
        self.capacities = tuple(int(c) for c in capacities)
        self.enforce_capacity = bool(enforce_capacity)
        self.flops = int(flops)
        self.batch_hits = int(batch_hits)
        self.read_calls = int(read_calls)
        self.peaks = tuple(int(p) for p in peaks)
        self.totals = tuple(tuple(int(x) for x in row) for row in totals)
        if len(self.peaks) != len(self.capacities):
            raise ValueError("need one peak per level")
        if len(self.totals) != len(self.capacities) or any(
            len(row) != 4 for row in self.totals
        ):
            raise ValueError(
                "totals must be one (wr, mr, ww, mw) quadruple per level"
            )
        self.fault_digest = fault_digest
        self.fault_seqs = tuple(int(s) for s in fault_seqs)
        self.fault_retry_words = int(fault_retry_words)
        self.fault_retry_messages = int(fault_retry_messages)
        self._verified = False

    # -- queries ---------------------------------------------------------

    @property
    def nruns(self) -> int:
        """Number of recorded interval runs."""
        return len(self.starts)

    def level_runs(
        self, level: int = 0
    ) -> Iterator[tuple[int, int, bool]]:
        """Yield ``(start, stop, is_write)`` runs charged at ``level``.

        In charge order — the stream an element-wise run would have
        issued at that boundary, suitable for
        :meth:`~repro.machine.lru.LRUCache.replay_runs` and
        :meth:`~repro.machine.stack_distance.StackDistanceAnalyzer.analyze_runs`.
        """
        if not 0 <= level < len(self.capacities):
            raise ValueError(f"no level {level} in {self.capacities}")
        sel = (self.masks & (1 << level)) != 0
        for a, b, w in zip(
            self.starts[sel].tolist(),
            self.stops[sel].tolist(),
            self.kinds[sel].tolist(),
        ):
            yield a, b, w

    def computed_totals(self) -> tuple[tuple[int, int, int, int], ...]:
        """Per-level (wr, mr, ww, mw) recomputed from the arrays.

        This is the replay reduction itself: boolean-mask selects, one
        sum and one ceil-divide sum per (level, direction).
        """
        lengths = self.stops - self.starts
        out = []
        for i, cap in enumerate(self.capacities):
            sel = (self.masks & (1 << i)) != 0
            wsel = sel & self.kinds
            rsel = sel & ~self.kinds
            rlen = lengths[rsel]
            wlen = lengths[wsel]
            out.append(
                (
                    int(rlen.sum()),
                    _ceil_messages(rlen, cap),
                    int(wlen.sum()),
                    _ceil_messages(wlen, cap),
                )
            )
        return tuple(out)

    def verify(self) -> None:
        """Check the arrays against the captured counter totals.

        Raises :class:`ScheduleError` on any mismatch.  Runs once per
        instance (the result is memoized), so a schedule replayed many
        times pays the array reduction only on its first application.
        """
        if self._verified:
            return
        computed = self.computed_totals()
        if computed != self.totals:
            raise ScheduleError(
                "schedule self-check failed: array totals "
                f"{computed} != captured counter totals {self.totals}"
            )
        if len(self.fault_seqs) and self.fault_digest is None:
            raise ScheduleError("fault events recorded without a fault plan")
        self._verified = True

    # -- replay ----------------------------------------------------------

    def apply(self, machine: "HierarchicalMachine") -> None:
        """Fold this schedule into ``machine`` — the replay entry point.

        Validates *everything* before mutating anything, so a raised
        :class:`ScheduleError` leaves the machine untouched and the
        caller free to fall back to a normal captured run:

        * the machine's shape (capacities, enforcement) matches;
        * the machine is pristine (zero counters, nothing resident, no
          trace/recorder/guard — those observe per-event state a bulk
          replay cannot reproduce);
        * the fault configuration matches (plan digest, fresh injector);
        * the arrays reproduce the captured totals (:meth:`verify`).

        On success the machine ends in exactly the state the captured
        run left it in: counters, peaks, flops, batch hits, read
        sequence, and — with faults armed — the identical realized
        fault event list and statistics.
        """
        from repro.faults.injector import FaultEvent

        caps = tuple(lvl.capacity for lvl in machine.levels)
        if caps != self.capacities:
            raise ScheduleError(
                f"machine capacities {caps} != schedule {self.capacities}"
            )
        if machine.enforce_capacity != self.enforce_capacity:
            raise ScheduleError("capacity-enforcement flag mismatch")
        if machine.trace is not None:
            raise ScheduleError("cannot replay onto a tracing machine")
        if getattr(machine, "recorder", None) is not None:
            raise ScheduleError("cannot replay onto a recording machine")
        if machine.guard is not None:
            raise ScheduleError("cannot replay onto a budget-guarded machine")
        if machine._scope_depth != 0 or not machine.resident.is_empty():
            raise ScheduleError("machine is mid-run (scope open or data resident)")
        if (
            machine.flops
            or machine.batch_hits
            or machine._read_seq
            or any(
                lvl.counters.words or lvl.counters.messages or lvl.peak_resident
                for lvl in machine.levels
            )
        ):
            raise ScheduleError("machine counters are not pristine")
        if self.fault_digest is None:
            if machine.faults is not None:
                raise ScheduleError("fault-free schedule, faulty machine")
        else:
            if machine.faults is None:
                raise ScheduleError("faulty schedule, fault-free machine")
            from repro.schedule.cache import fault_plan_digest

            if fault_plan_digest(machine.faults.plan) != self.fault_digest:
                raise ScheduleError("fault plan digest mismatch")
            if machine.faults.events or machine.faults.stats.any_injected():
                raise ScheduleError("machine fault injector is not fresh")
        self.verify()

        for level, (wr, mr, ww, mw), peak in zip(
            machine.levels, self.totals, self.peaks
        ):
            level.counters.add_batch(wr, mr, ww, mw)
            level.note_resident(peak)
        machine.flops += self.flops
        machine.batch_hits += self.batch_hits
        machine._read_seq += self.read_calls
        if self.fault_digest is not None and machine.faults is not None:
            stats = machine.faults.stats
            for seq in self.fault_seqs:
                machine.faults.events.append(FaultEvent("read", -1, -1, seq, 0))
            stats.read_faults += len(self.fault_seqs)
            stats.read_retry_words += self.fault_retry_words
            stats.read_retry_messages += self.fault_retry_messages

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation (plain lists, schema-versioned)."""
        return {
            "format": SCHEDULE_FORMAT,
            "starts": self.starts.tolist(),
            "stops": self.stops.tolist(),
            "kinds": self.kinds.astype(np.int8).tolist(),
            "masks": self.masks.tolist(),
            "capacities": list(self.capacities),
            "enforce_capacity": self.enforce_capacity,
            "flops": self.flops,
            "batch_hits": self.batch_hits,
            "read_calls": self.read_calls,
            "peaks": list(self.peaks),
            "totals": [list(row) for row in self.totals],
            "fault_digest": self.fault_digest,
            "fault_seqs": list(self.fault_seqs),
            "fault_retry_words": self.fault_retry_words,
            "fault_retry_messages": self.fault_retry_messages,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TransferSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        if doc.get("format") != SCHEDULE_FORMAT:
            raise ScheduleError(
                f"unsupported schedule format {doc.get('format')!r}"
            )
        return cls(
            starts=np.asarray(doc["starts"], dtype=np.int64),
            stops=np.asarray(doc["stops"], dtype=np.int64),
            kinds=np.asarray(doc["kinds"], dtype=bool),
            masks=np.asarray(doc["masks"], dtype=np.int64),
            capacities=doc["capacities"],
            enforce_capacity=doc["enforce_capacity"],
            flops=doc["flops"],
            batch_hits=doc["batch_hits"],
            read_calls=doc["read_calls"],
            peaks=doc["peaks"],
            totals=doc["totals"],
            fault_digest=doc.get("fault_digest"),
            fault_seqs=doc.get("fault_seqs", ()),
            fault_retry_words=doc.get("fault_retry_words", 0),
            fault_retry_messages=doc.get("fault_retry_messages", 0),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (corruption detection)."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"TransferSchedule(runs={self.nruns}, "
            f"capacities={self.capacities}, flops={self.flops})"
        )


class ScheduleRecorder:
    """Capture hook: tap every charge a machine makes into arrays.

    Attached as ``machine.recorder`` for the duration of one run on a
    *pristine* machine (all counters zero — asserted here), then
    :meth:`finalize` diffs the counters against the recorded arrays
    and produces a :class:`TransferSchedule`, or ``None`` when the
    self-check fails (in which case nothing is cached and the run
    simply keeps the counts it computed the ordinary way).
    """

    def __init__(self, machine: "HierarchicalMachine") -> None:
        if any(
            lvl.counters.words or lvl.counters.messages or lvl.peak_resident
            for lvl in machine.levels
        ) or machine.flops or machine.batch_hits or machine._read_seq:
            raise ScheduleError("capture requires a pristine machine")
        self.machine = machine
        self.full_mask = (1 << len(machine.levels)) - 1
        self._starts: list[np.ndarray] = []
        self._stops: list[np.ndarray] = []
        self._kinds: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._fault_seqs: list[int] = []

    def record_set(
        self, ivs: "IntervalSet", is_write: bool, mask: int | None = None
    ) -> None:
        """Record one explicit/scope transfer of ``ivs``.

        ``mask`` selects the charged levels; ``None`` means the full
        write-through mask (explicit transfers).
        """
        pairs = ivs.intervals
        if not pairs:
            return
        arr = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
        self._starts.append(arr[:, 0])
        self._stops.append(arr[:, 1])
        self._kinds.append(np.full(len(arr), bool(is_write), dtype=bool))
        self._masks.append(
            np.full(
                len(arr),
                self.full_mask if mask is None else int(mask),
                dtype=np.int64,
            )
        )

    def record_batch(self, batch: "RunBatch") -> None:
        """Record a whole batched charge (always full write-through mask)."""
        if not len(batch.starts):
            return
        self._starts.append(batch.starts.copy())
        self._stops.append(batch.stops.copy())
        self._kinds.append(
            np.repeat(batch.is_write, np.diff(batch.offsets))
        )
        self._masks.append(
            np.full(len(batch.starts), self.full_mask, dtype=np.int64)
        )

    def record_fault(self, seq: int) -> None:
        """Record that explicit read ``seq`` faulted (retry was charged)."""
        self._fault_seqs.append(int(seq))

    def finalize(self) -> TransferSchedule | None:
        """Close the capture and build the schedule, or ``None`` on drift.

        The machine's final counters are the ground truth; the arrays
        must reproduce them exactly (every charging chokepoint hooked,
        no double recording).  A mismatch means the capture is not
        trustworthy — the schedule is discarded, never cached.
        """
        machine = self.machine
        if self._starts:
            starts = np.concatenate(self._starts)
            stops = np.concatenate(self._stops)
            kinds = np.concatenate(self._kinds)
            masks = np.concatenate(self._masks)
        else:
            starts = np.empty(0, dtype=np.int64)
            stops = np.empty(0, dtype=np.int64)
            kinds = np.empty(0, dtype=bool)
            masks = np.empty(0, dtype=np.int64)
        totals = tuple(
            (
                lvl.counters.words_read,
                lvl.counters.messages_read,
                lvl.counters.words_written,
                lvl.counters.messages_written,
            )
            for lvl in machine.levels
        )
        fault_digest = None
        retry_words = retry_messages = 0
        if machine.faults is not None:
            from repro.schedule.cache import fault_plan_digest

            fault_digest = fault_plan_digest(machine.faults.plan)
            retry_words = machine.faults.stats.read_retry_words
            retry_messages = machine.faults.stats.read_retry_messages
            if len(self._fault_seqs) != machine.faults.stats.read_faults:
                return None
        schedule = TransferSchedule(
            starts=starts,
            stops=stops,
            kinds=kinds,
            masks=masks,
            capacities=[lvl.capacity for lvl in machine.levels],
            enforce_capacity=machine.enforce_capacity,
            flops=machine.flops,
            batch_hits=machine.batch_hits,
            read_calls=machine._read_seq,
            peaks=[lvl.peak_resident for lvl in machine.levels],
            totals=totals,
            fault_digest=fault_digest,
            fault_seqs=self._fault_seqs,
            fault_retry_words=retry_words,
            fault_retry_messages=retry_messages,
        )
        try:
            schedule.verify()
        except ScheduleError:
            return None
        return schedule
