"""Schedule compilation: trace one run, replay every same-shape run.

This package is the simulator's JIT.  The communication counts of
every registry algorithm are pure functions of shape — (algorithm,
layout, n, machine capacities, block params, fault plan) — so the
first run of a shape is *captured* into a
:class:`~repro.schedule.compiled.TransferSchedule` and every later run
of the same shape is *replayed*: one real ``dense_cholesky`` for the
numerics plus vectorized NumPy reductions for the counters, with the
Python interpretation of the algorithm skipped entirely.

Pipeline: **capture** (recorder hooks at the machine's charging
chokepoints) → **canonicalize** (struct-of-arrays, self-checked
against the captured counters) → **cache** (content-addressed memory +
disk tiers, keyed by shape and code version) → **replay**
(:meth:`~repro.machine.core.HierarchicalMachine.replay_schedule`).

Compilation is conservative: it engages only for a *pristine* batched
machine with no trace, no span recorder, no budget guard and zero
counters — any observer that sees per-event state falls back to the
ordinary interpreted run, whose counts are pinned against the
element-wise reference by the golden suite.  ``REPRO_NO_COMPILE=1``
(or :func:`set_compile`) switches the whole layer off;
``REPRO_SLOW_PATH=1`` implies off, since capture requires the batched
fast path.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.observability.metrics import METRICS
from repro.observability.spans import NULL_PROFILER
from repro.schedule.cache import (
    ScheduleCache,
    default_cache,
    fault_plan_digest,
    schedule_key,
    set_default_cache,
)
from repro.schedule.compiled import (
    ScheduleError,
    ScheduleRecorder,
    TransferSchedule,
)
from repro.util.fastpath import fastpath_enabled

__all__ = [
    "ScheduleCache",
    "ScheduleError",
    "ScheduleRecorder",
    "TransferSchedule",
    "compile_disabled",
    "compile_enabled",
    "compiled_session",
    "default_cache",
    "fault_plan_digest",
    "last_run_mode",
    "schedule_key",
    "set_compile",
    "set_default_cache",
]

_compile_enabled: bool = os.environ.get("REPRO_NO_COMPILE", "") != "1"


def compile_enabled() -> bool:
    """Whether schedule compilation is currently active."""
    return _compile_enabled and fastpath_enabled()


def set_compile(enabled: bool) -> bool:
    """Set the compilation toggle; returns the previous raw value."""
    global _compile_enabled
    prev = _compile_enabled
    _compile_enabled = bool(enabled)
    return prev


@contextmanager
def compile_disabled() -> Iterator[None]:
    """Run a block with schedule compilation forced off (ablation)."""
    prev = set_compile(False)
    try:
        yield
    finally:
        set_compile(prev)


class _RunMode(threading.local):
    """Per-thread record of how the last ``run_algorithm`` executed."""

    def __init__(self) -> None:
        self.mode = "off"


_run_mode = _RunMode()


def note_run_mode(mode: str) -> None:
    """Record this thread's last run mode (off/capture/replay)."""
    _run_mode.mode = mode


def last_run_mode() -> str:
    """How this thread's most recent algorithm run executed.

    ``"replay"`` — counters folded from a compiled schedule;
    ``"capture"`` — interpreted run that produced a new schedule;
    ``"off"`` — compilation disabled or the run was ineligible.
    """
    return _run_mode.mode


def _machine_eligible(machine) -> bool:
    """Can this machine's next run be captured or replayed?

    Requires the batched fast path plus a machine no observer is
    watching and no previous run has touched: traces, span profilers,
    budget guards and half-finished runs all see per-event state that
    a bulk replay cannot reproduce, so any of them disables the layer
    for this run (never breaking their semantics, only the speedup).
    """
    return (
        machine.batched
        and machine.trace is None
        and machine.profiler is NULL_PROFILER
        and machine.guard is None
        # an armed ChecksumGuardian must observe every boundary live:
        # a bulk replay recomputes the factor without running the
        # algorithm, so it could mask an injected silent fault
        and getattr(machine, "abft", None) is None
        and getattr(machine, "recorder", None) is None
        and machine._scope_depth == 0
        and machine.resident.is_empty()
        and machine.flops == 0
        and machine.batch_hits == 0
        and machine._read_seq == 0
        and not any(
            lvl.counters.words or lvl.counters.messages or lvl.peak_resident
            for lvl in machine.levels
        )
        and (
            machine.faults is None
            or not (
                machine.faults.events or machine.faults.stats.any_injected()
            )
        )
    )


class _CompiledSession:
    """One eligible ``run_algorithm`` invocation's compile/replay plan."""

    __slots__ = ("algorithm", "matrix", "key", "cache")

    def __init__(self, algorithm: str, matrix, key: str, cache: ScheduleCache):
        self.algorithm = algorithm
        self.matrix = matrix
        self.key = key
        self.cache = cache

    def run(self, fn: Callable[[], np.ndarray]) -> np.ndarray:
        """Replay a cached schedule, or run ``fn`` under capture.

        A cached schedule that refuses to apply (:class:`ScheduleError`
        — shape drift, corruption) falls through to a fresh capture;
        the machine is guaranteed untouched by a failed apply.
        """
        schedule = self.cache.get(self.key)
        if schedule is not None:
            try:
                return self._replay(schedule)
            except ScheduleError:
                METRICS.counter(
                    "repro_schedule_events_total", event="apply-mismatch"
                ).inc()
        return self._capture(fn)

    def _canonical_factor(self, source: np.ndarray) -> np.ndarray:
        """Factor ``source`` with the stage-faithful dense kernel and
        poke the result into the tracked matrix.

        Both compiled modes return this factor — a capturing run and a
        later replay of the same input are *bitwise* identical, so
        which mode executed is numerically unobservable (interpreted
        vs compiled stays ``allclose``, as between the two interpreted
        paths).
        """
        from repro.sequential.kernels import dense_cholesky

        A = self.matrix
        L = dense_cholesky(source, stage=self.algorithm)
        tril = np.tril_indices(A.layout.n)
        A.data[tril] = L[tril]
        return A.lower()

    def _replay(self, schedule: TransferSchedule) -> np.ndarray:
        """Numerics first (so a non-SPD input fails before any charge),
        then fold the schedule into the machine in one shot."""
        A = self.matrix
        result = self._canonical_factor(A.data)
        A.machine.replay_schedule(schedule)
        METRICS.counter(
            "repro_schedule_events_total", event="replay"
        ).inc()
        note_run_mode("replay")
        return result

    def _capture(self, fn: Callable[[], np.ndarray]) -> np.ndarray:
        machine = self.matrix.machine
        original = np.array(self.matrix.data, copy=True)
        recorder = ScheduleRecorder(machine)
        machine.recorder = recorder
        try:
            result = fn()
        finally:
            machine.recorder = None
        schedule = recorder.finalize()
        if schedule is None:
            METRICS.counter(
                "repro_schedule_events_total", event="discard"
            ).inc()
            note_run_mode("off")
        else:
            self.cache.put(self.key, schedule)
            result = self._canonical_factor(original)
            METRICS.counter(
                "repro_schedule_events_total", event="capture"
            ).inc()
            note_run_mode("capture")
        return result


def compiled_session(
    algorithm: str, A, params: dict, abft=None
) -> "_CompiledSession | None":
    """Build the compile/replay plan for one run, if it is eligible.

    Returns ``None`` (caller runs uncompiled) when compilation is off,
    the machine is being observed or is not pristine, or the params
    cannot be canonically keyed.  ``abft`` (a protection config) makes
    the run ineligible outright — the registry never compiles
    protected runs — but is still threaded into :func:`schedule_key`
    so any future keyed variant cannot collide with unprotected
    schedules.
    """
    if not compile_enabled():
        return None
    if abft is not None:
        return None
    machine = A.machine
    if not _machine_eligible(machine):
        return None
    try:
        key = schedule_key(
            algorithm=algorithm,
            layout=A.layout,
            base=A.base,
            machine=machine,
            params=params,
            fault_plan=machine.faults.plan if machine.faults else None,
            abft=abft,
        )
    except TypeError:
        return None
    return _CompiledSession(algorithm, A, key, default_cache())
