"""Content-addressed cache for compiled transfer schedules.

A schedule is valid for exactly one *shape*: the tuple (algorithm,
layout incl. block size and packing, matrix base address, machine
capacities and enforcement, algorithm params, fault plan) — plus the
code version, so editing any simulator or algorithm source invalidates
every cached schedule rather than replaying stale counts.

Two tiers, mirroring :class:`repro.experiments.cache.ResultCache`:

* an in-process LRU of decoded :class:`TransferSchedule` objects (the
  hot tier — repeated same-spec jobs on a serving shard hit here);
* an on-disk JSON tier at ``$REPRO_SCHEDULE_DIR`` or
  ``<cache-root>/schedules``, content-addressed as
  ``<dir>/<key[:2]>/<key>.json`` with atomic writes and a stored
  digest that is re-verified on every load, so corruption demotes to a
  miss instead of replaying damaged counts.

Every lookup is counted under ``repro_schedule_cache_hits_total``
(labelled by tier) or ``repro_schedule_cache_misses_total`` so the
compile-vs-replay speedup is attributable from metrics alone.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict

from repro.observability.metrics import METRICS
from repro.schedule.compiled import ScheduleError, TransferSchedule
from repro.util.serialization import atomic_write_json

SCHEDULE_DIR_ENV = "REPRO_SCHEDULE_DIR"

#: Schedules with more runs than this stay memory-only (a naive n=512
#: schedule is ~130k runs ≈ a few MB of JSON; the cap keeps pathological
#: captures from writing hundred-MB cache entries).
MAX_DISK_RUNS = 2_000_000

logger = logging.getLogger("repro.schedule.cache")


def fault_plan_digest(plan) -> str | None:
    """Canonical digest of a fault plan (``None`` stays ``None``).

    Hashes the plan's ``to_dict`` form, so two plans with identical
    parameters share schedules and any parameter change (seed,
    probability) is a different key.
    """
    if plan is None:
        return None
    blob = json.dumps(plan.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def schedule_key(
    *,
    algorithm: str,
    layout,
    base: int,
    machine,
    params: dict,
    fault_plan=None,
    abft=None,
    version: str | None = None,
) -> str:
    """Content-address of one run shape under the current code version.

    Raises ``TypeError`` for params that have no canonical JSON form —
    the caller treats that as "not compilable" and runs uncompiled.
    ``abft`` is the run's protection mode (an
    :class:`~repro.abft.AbftConfig` or its dict form): protected runs
    never share a key with unprotected ones, and an unprotected run's
    key is byte-identical to the pre-ABFT format so existing cached
    schedules stay valid.
    """
    if version is None:
        from repro.experiments.cache import code_version

        version = code_version()
    payload = {
        "version": version,
        "algorithm": algorithm,
        "layout": {
            "name": layout.name,
            "n": layout.n,
            "block": getattr(layout, "block", None),
            "packed": layout.packed,
            "storage_words": layout.storage_words,
        },
        "base": int(base),
        "capacities": [lvl.capacity for lvl in machine.levels],
        "enforce_capacity": machine.enforce_capacity,
        "params": sorted((str(k), v) for k, v in params.items()),
        "faults": fault_plan_digest(fault_plan),
    }
    if abft is not None:
        payload["abft"] = abft if isinstance(abft, dict) else abft.to_dict()
    blob = json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        default=_reject_unknown,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _reject_unknown(obj):
    raise TypeError(f"parameter {obj!r} has no canonical JSON form")


class ScheduleCache:
    """Two-tier (memory LRU + disk) store of compiled schedules.

    Parameters
    ----------
    directory:
        Disk tier root, or ``None`` for a memory-only cache (tests and
        benches use this to isolate runs from ambient disk state).
    version:
        Code-version token recorded in disk entries; defaults to
        :func:`repro.experiments.cache.code_version`.
    memory_entries:
        LRU capacity of the in-process tier.
    max_disk_runs:
        Largest schedule (in runs) the disk tier will persist.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        version: str | None = None,
        memory_entries: int = 32,
        max_disk_runs: int = MAX_DISK_RUNS,
    ) -> None:
        self.directory = str(directory) if directory is not None else None
        self._version = version
        self.memory_entries = int(memory_entries)
        self.max_disk_runs = int(max_disk_runs)
        self._memory: "OrderedDict[str, TransferSchedule]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0

    @property
    def version(self) -> str:
        """The code-version token mixed into disk entries (lazy)."""
        if self._version is None:
            from repro.experiments.cache import code_version

            self._version = code_version()
        return self._version

    def _path_for(self, key: str) -> str | None:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def get(self, key: str) -> TransferSchedule | None:
        """Look up a compiled schedule; ``None`` on miss or corruption."""
        with self._lock:
            sched = self._memory.get(key)
            if sched is not None:
                self._memory.move_to_end(key)
                self.hits_memory += 1
                METRICS.counter(
                    "repro_schedule_cache_hits_total", tier="memory"
                ).inc()
                return sched
        sched = self._load_disk(key)
        if sched is not None:
            with self._lock:
                self._remember(key, sched)
                self.hits_disk += 1
            METRICS.counter(
                "repro_schedule_cache_hits_total", tier="disk"
            ).inc()
            return sched
        with self._lock:
            self.misses += 1
        METRICS.counter("repro_schedule_cache_misses_total").inc()
        return None

    def _load_disk(self, key: str) -> TransferSchedule | None:
        path = self._path_for(key)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if (
                not isinstance(entry, dict)
                or entry.get("key") != key
                or entry.get("version") != self.version
            ):
                raise ValueError("malformed or stale schedule entry")
            sched = TransferSchedule.from_dict(entry["schedule"])
            if sched.digest() != entry.get("digest"):
                raise ValueError("schedule entry digest mismatch")
            sched.verify()
            return sched
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, ScheduleError) as exc:
            logger.warning("corrupt schedule entry %s: %s", path, exc)
            return None

    def put(self, key: str, schedule: TransferSchedule) -> None:
        """Store a schedule in both tiers (disk only below the run cap)."""
        with self._lock:
            self._remember(key, schedule)
        path = self._path_for(key)
        if path is None or schedule.nruns > self.max_disk_runs:
            return
        entry = {
            "key": key,
            "version": self.version,
            "schedule": schedule.to_dict(),
            "digest": schedule.digest(),
        }
        try:
            atomic_write_json(path, entry)
        except OSError as exc:  # cache dir unwritable: degrade, don't fail
            logger.warning("cannot persist schedule %s: %s", path, exc)

    def _remember(self, key: str, schedule: TransferSchedule) -> None:
        self._memory[key] = schedule
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss counters for summaries and engine reports."""
        with self._lock:
            return {
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "entries_memory": len(self._memory),
            }


_default_cache: ScheduleCache | None = None
_default_lock = threading.Lock()


def default_schedule_dir() -> str:
    """``$REPRO_SCHEDULE_DIR`` if set, else ``<cache-root>/schedules``."""
    env = os.environ.get(SCHEDULE_DIR_ENV)
    if env:
        return env
    from repro.experiments.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "schedules")


def default_cache() -> ScheduleCache:
    """The process-wide schedule cache (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ScheduleCache(default_schedule_dir())
        return _default_cache


def set_default_cache(cache: ScheduleCache | None) -> ScheduleCache | None:
    """Swap the process-wide cache; returns the previous one.

    Tests and benches install a memory-only cache to isolate
    themselves from (and avoid polluting) the on-disk tier.
    """
    global _default_cache
    with _default_lock:
        prev = _default_cache
        _default_cache = cache
        return prev
