"""Algorithm 1 end-to-end, plus the machine-instrumented variant.

``multiply_via_cholesky`` is the paper's Algorithm 1 verbatim: build
T', factor it classically over masked values, return ``L₃₂ᵀ``.

``multiply_via_cholesky_counted`` additionally runs the factorization
as an *instrumented* left-looking sweep over a machine-bound
``StarredMatrix``, so the bench can compare the measured words of
step 3 against the ITT04 matmul lower bound — the empirical face of
Theorem 1 (and of Corollary 2.3's bookkeeping: steps 2 and 4 cost
only O(n²) words).
"""

from __future__ import annotations

import numpy as np

from repro.layouts.registry import make_layout
from repro.machine.core import HierarchicalMachine, ModelError, SequentialMachine
from repro.reduction.construct import build_reduction_input, extract_product
from repro.starred.linalg import starred_cholesky
from repro.starred.tracked import StarredMatrix
from repro.starred.value import ssqrt


def multiply_via_cholesky(
    a, b, order: str = "left", backend: str = "object"
) -> np.ndarray:
    """Compute ``A·B`` through a classical Cholesky factorization.

    Parameters
    ----------
    a, b:
        Square float matrices of equal size.
    order:
        Which classical schedule to run the factorization with
        (``"left"``, ``"right"``, ``"recursive"``); by Lemma 2.2 all
        orders give the same product.
    backend:
        ``"object"`` — scalar masked values (any order); or
        ``"bitflag"`` — the paper's vectorized "extra bit per word"
        encoding (left-looking order only), which is orders of
        magnitude faster and lets the reduction run at real sizes.

    Returns the float matrix ``A·B``.
    """
    t = build_reduction_input(a, b)
    n = np.asarray(a).shape[0]
    if backend == "bitflag":
        if order != "left":
            raise ValueError(
                "the bitflag backend implements the left-looking order"
            )
        from repro.starred.bitflag import BitFlagArray, bitflag_cholesky

        ell = bitflag_cholesky(BitFlagArray.from_object(t)).to_object()
    elif backend == "object":
        ell = starred_cholesky(t, order=order)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return extract_product(ell, n)


def multiply_via_cholesky_counted(
    a,
    b,
    *,
    M: int | None = None,
    layout: str = "column-major",
    machine: HierarchicalMachine | None = None,
) -> tuple[np.ndarray, HierarchicalMachine, dict[str, int]]:
    """Algorithm 1 with measured communication.

    Runs the naïve left-looking schedule over a machine-bound masked
    matrix (Algorithm 2's exact movement pattern, so the step-3 counts
    are the ones §3.1.4 predicts for a 3n-sized Cholesky), and
    accounts steps 2 (building T') and 4 (extracting the product) as
    the O(n²) transfers Corollary 2.3 charges them.

    Returns ``(product, machine, phase_words)`` where ``phase_words``
    maps ``"setup"``/``"cholesky"``/``"extract"`` to word counts.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    big = 3 * n
    if machine is None:
        machine = SequentialMachine(max(4 * big, 8) if M is None else M)
    if machine.M < 2 * big:
        raise ModelError(
            f"instrumented reduction needs M >= 2·(3n) = {2 * big}, "
            f"got M={machine.M}"
        )
    lay = make_layout(layout, big)
    t = StarredMatrix(build_reduction_input(a, b), lay, machine)

    # -- step 2: writing T' into slow memory costs ≤ 18n² words ----------
    # (streamed column by column so the working set stays within M)
    before = machine.counters.snapshot()
    for c in range(big):
        ivs = t.intervals(0, big, c, c + 1)
        machine.allocate(ivs)
        machine.write(ivs)
        machine.release(ivs)
    setup_words = (machine.counters - before).words

    # -- step 3: classical (left-looking) Cholesky over masked values ----
    before = machine.counters.snapshot()
    _starred_left_looking(t)
    chol_words = (machine.counters - before).words

    # -- step 4: read the product block back out -------------------------
    before = machine.counters.snapshot()
    product = np.empty((n, n), dtype=np.float64)
    for c in range(n):
        col = t.load_column(n + c, 2 * n, 3 * n)  # column of L32
        product[c, :] = [float(v) for v in col]  # transposed extraction
        t.release_column(n + c, 2 * n, 3 * n)
    extract_words = (machine.counters - before).words

    phases = {
        "setup": setup_words,
        "cholesky": chol_words,
        "extract": extract_words,
    }
    return product, machine, phases


def _starred_left_looking(t: StarredMatrix) -> None:
    """Algorithm 2's movement pattern over masked values (Alg', step 1).

    Identical loop structure and identical transfers to
    :func:`repro.sequential.naive.naive_left_looking`; only the scalar
    arithmetic is swapped for the Table 3 operations — exactly the
    paper's "attach an extra bit and check it before each operation"
    transformation.
    """
    n = t.n
    machine = t.machine
    for j in range(n):
        colj = t.load_column(j, j, n)
        for k in range(j):
            colk = t.load_column(k, j, n)
            colj = colj - colk * colk[0]
            machine.add_flops(2 * (n - j))
            t.release_column(k, j, n)
        pivot = ssqrt(colj[0])
        colj[0] = pivot
        for i in range(1, n - j):
            colj[i] = colj[i] / pivot
        machine.add_flops(n - j)
        t.store_column(j, j, n, colj)
        t.release_column(j, j, n)
