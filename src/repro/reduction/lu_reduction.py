"""The LU warm-up reduction (paper, Equation 1).

Before the Cholesky construction, Section 2 recalls the classical
embedding of a product into an LU factorization:

        ⎛ I   0  −B ⎞   ⎛ I        ⎞ ⎛ I   0   −B  ⎞
        ⎜ A   I   0 ⎟ = ⎜ A  I     ⎟ ⎜     I   A·B ⎟
        ⎝ 0   0   I ⎠   ⎝ 0  0   I ⎠ ⎝         I   ⎠

so ``A·B`` appears in the ``U₂₃`` block of the (unpivoted) LU factor.
Unlike the Cholesky case this needs no masked values — the diagonal is
all ones, so no pivoting is required and nothing must be hidden
(there is no ``A·Aᵀ`` block to mask).  The paper notes pivoting can be
accommodated by scaling; :func:`multiply_via_lu` exposes that ``scale``
knob so the tests can check the invariance.

This module implements the construction plus a classical unpivoted LU
(both elementwise and blocked-recursive orders) — a second, simpler
end-to-end instance of "factorizations compute products" alongside
Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.util.imath import split_point
from repro.util.validation import check_positive_int


def lu_nopivot(a: np.ndarray, order: str = "right") -> tuple[np.ndarray, np.ndarray]:
    """Classical LU without pivoting: ``A = L·U``, unit-diagonal L.

    Parameters
    ----------
    a:
        Square matrix whose leading principal minors are nonsingular
        (guaranteed for the Equation 1 construction: every pivot is 1).
    order:
        ``"right"`` — the eager outer-product schedule; or
        ``"recursive"`` — the Toledo-style column recursion.  Both are
        classical (no distributivity), so both serve the reduction.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError(f"need a square matrix, got {a.shape}")
    work = a.copy()
    if order == "right":
        _lu_right(work)
    elif order == "recursive":
        _lu_recursive(work, 0, n)
    else:
        raise ValueError(f"unknown order {order!r}")
    lower = np.tril(work, -1) + np.eye(n)
    upper = np.triu(work)
    return lower, upper


def _lu_right(a: np.ndarray) -> None:
    n = a.shape[0]
    for k in range(n):
        pivot = a[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError(
                f"zero pivot at step {k}: unpivoted LU needs nonsingular "
                "leading minors"
            )
        a[k + 1 :, k] /= pivot
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])


def _lu_recursive(a: np.ndarray, lo: int, hi: int) -> None:
    n = hi - lo
    if n == 1:
        if a[lo, lo] == 0.0:
            raise ZeroDivisionError(f"zero pivot at step {lo}")
        return
    k = lo + split_point(n)
    _lu_recursive(a, lo, k)
    # panel solves: L21 = A21·U11⁻¹ and U12 = L11⁻¹·A12
    l11 = np.tril(a[lo:k, lo:k], -1) + np.eye(k - lo)
    u11 = np.triu(a[lo:k, lo:k])
    a[k:hi, lo:k] = np.linalg.solve(u11.T, a[k:hi, lo:k].T).T
    a[lo:k, k:hi] = np.linalg.solve(l11, a[lo:k, k:hi])
    a[k:hi, k:hi] -= a[k:hi, lo:k] @ a[lo:k, k:hi]
    _lu_recursive(a, k, hi)


def build_lu_input(a, b, scale: float = 1.0) -> np.ndarray:
    """The 3n×3n matrix of Equation (1), optionally scaled.

    ``scale`` multiplies A and B and divides nothing — the product
    block comes out scaled by ``scale²`` and callers rescale; the
    paper's pivoting remark is that scaling A and B *down* keeps them
    too small to be chosen as pivots in a pivoted LU.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != a.shape:
        raise ValueError(f"need equal square inputs, got {a.shape}, {b.shape}")
    t = np.zeros((3 * n, 3 * n))
    eye = np.eye(n)
    t[:n, :n] = eye
    t[n : 2 * n, n : 2 * n] = eye
    t[2 * n :, 2 * n :] = eye
    t[n : 2 * n, :n] = scale * a
    t[:n, 2 * n :] = -scale * b
    return t


def multiply_via_lu(a, b, order: str = "right", scale: float = 1.0) -> np.ndarray:
    """Compute ``A·B`` through an unpivoted LU factorization (Eq. 1).

    Returns the float matrix ``A·B`` (rescaled if ``scale != 1``).
    """
    n = np.asarray(a).shape[0]
    check_positive_int("n", n)
    t = build_lu_input(a, b, scale=scale)
    _lower, upper = lu_nopivot(t, order=order)
    return upper[n : 2 * n, 2 * n :] / (scale * scale)
