"""Algorithm 1: matrix multiplication via Cholesky decomposition.

The constructive half of the paper's Main Theorem: given ``A`` and
``B``, build the 3n×3n masked matrix

          ⎛ I    Aᵀ   −B ⎞
    T' =  ⎜ A    C     0 ⎟        C = 1* on the diagonal, 0* off it,
          ⎝ −Bᵀ  0     C ⎠

run *any* classical Cholesky on it, and read ``A·B`` out of the
``L₃₂ᵀ`` block of the factor.  Because constructing T' and extracting
the product cost only O(n²) words, every communication lower bound
for classical matmul transfers to classical Cholesky (Theorem 1,
Corollaries 2.3–2.4).

This package provides the construction, the end-to-end multiplication
(under several Cholesky schedules — Lemma 2.2 says any schedule
works), and a machine-instrumented variant whose measured traffic the
benches compare against the ITT04 bound.
"""

from repro.reduction.construct import build_reduction_input, expected_factor
from repro.reduction.algorithm1 import (
    multiply_via_cholesky,
    multiply_via_cholesky_counted,
)
from repro.reduction.lu_reduction import lu_nopivot, multiply_via_lu

__all__ = [
    "build_reduction_input",
    "expected_factor",
    "multiply_via_cholesky",
    "multiply_via_cholesky_counted",
    "multiply_via_lu",
    "lu_nopivot",
]
