"""Construction of the reduction input T' (paper, Equation 4).

``T'`` is symmetric, 3n×3n, with identity / data / masked-C blocks.
Its (unique, classical) Cholesky factor is

         ⎛ I                  ⎞
    L =  ⎜ A     C'           ⎟     with  C'  lower-unitriangular of
         ⎝ −Bᵀ   (A·B)ᵀ   C'  ⎠     1* diagonal / 0* sub-diagonal,

so the product sits in ``L₃₂ᵀ``.  ``expected_factor`` builds this L
directly for the tests.
"""

from __future__ import annotations

import numpy as np

from repro.starred.value import ONE_STAR, ZERO_STAR


def _as_float_matrix(name: str, a) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def _masked_c(n: int) -> np.ndarray:
    """The matrix C: 1* on the diagonal, 0* everywhere else."""
    c = np.empty((n, n), dtype=object)
    c[...] = ZERO_STAR
    for i in range(n):
        c[i, i] = ONE_STAR
    return c


def _masked_c_factor(n: int) -> np.ndarray:
    """C' (Equation 3): 1* diagonal, 0* strictly below, real 0 above."""
    c = np.empty((n, n), dtype=object)
    c[...] = 0.0
    for i in range(n):
        c[i, i] = ONE_STAR
        for j in range(i):
            c[i, j] = ZERO_STAR
    return c


def build_reduction_input(a, b) -> np.ndarray:
    """The 3n×3n masked matrix T' of Equation (4), as an object array."""
    a = _as_float_matrix("A", a)
    b = _as_float_matrix("B", b)
    if a.shape != b.shape:
        raise ValueError(f"A {a.shape} and B {b.shape} must match")
    n = a.shape[0]
    t = np.empty((3 * n, 3 * n), dtype=object)
    t[...] = 0.0
    # block row/column 1
    t[:n, :n] = np.eye(n)
    t[:n, n : 2 * n] = a.T
    t[n : 2 * n, :n] = a
    t[:n, 2 * n :] = -b
    t[2 * n :, :n] = -b.T
    # masked diagonal blocks
    t[n : 2 * n, n : 2 * n] = _masked_c(n)
    t[2 * n :, 2 * n :] = _masked_c(n)
    return t


def expected_factor(a, b) -> np.ndarray:
    """The factor L of Equation (4), built directly (for verification)."""
    a = _as_float_matrix("A", a)
    b = _as_float_matrix("B", b)
    n = a.shape[0]
    ell = np.empty((3 * n, 3 * n), dtype=object)
    ell[...] = 0.0
    ell[:n, :n] = np.eye(n)
    ell[n : 2 * n, :n] = a
    ell[2 * n :, :n] = -b.T
    ell[n : 2 * n, n : 2 * n] = _masked_c_factor(n)
    ell[2 * n :, n : 2 * n] = (a @ b).T
    ell[2 * n :, 2 * n :] = _masked_c_factor(n)
    return ell


def extract_product(ell: np.ndarray, n: int) -> np.ndarray:
    """``A·B = L₃₂ᵀ`` as a float array (Algorithm 1, step 4)."""
    block = ell[2 * n : 3 * n, n : 2 * n]
    out = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            v = block[j, i]  # transpose
            out[i, j] = float(v)
    return out
