"""Command-line report generator.

``python -m repro.cli [experiment ...]`` regenerates the paper's
tables and writes them under ``reports/``.  With no arguments, every
experiment runs.  These are the same measurements the benchmark
harness validates (``pytest benchmarks/``); the CLI exists so a reader
can reproduce any single table in seconds without pytest.

The sweep-shaped experiments (Tables 1–2) are submitted to the
:mod:`repro.experiments` engine: ``--jobs N`` fans the points out over
a process pool, and every point is served from the content-addressed
result cache when its configuration and the code are unchanged
(``--no-cache`` / ``--cache-dir`` control this).  Each engine run also
leaves a JSON artifact with per-point wall times under
``reports/experiments/``.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict

import numpy as np

from repro.analysis.report import ReportWriter
from repro.bounds.parallel import (
    parallel_bandwidth_lower_bound,
    parallel_latency_lower_bound,
    scalapack_messages,
    scalapack_words,
)
from repro.bounds.matmul import matmul_bandwidth_lower_bound
from repro.bounds.multilevel import multilevel_bounds
from repro.bounds.sequential import (
    cholesky_bandwidth_lower_bound,
    cholesky_latency_lower_bound,
)
from repro.experiments import ExperimentEngine, ExperimentSpec, ResultCache
from repro.layouts import make_layout
from repro.machine import HierarchicalMachine
from repro.matrices import TrackedMatrix
from repro.matrices.generators import random_spd
from repro.reduction import multiply_via_cholesky_counted
from repro.sequential import cholesky_flops, lapack_blocked, square_recursive


def report_table1(
    n: int = 128, M: int = 768, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Sequential census vs lower bounds (Table 1)."""
    engine = engine or ExperimentEngine()
    census = [
        ("naive-left", "column-major", {}),
        ("naive-right", "column-major", {}),
        ("lapack", "column-major", {}),
        ("lapack", "blocked", {"layout_block": int(math.isqrt(M // 3))}),
        ("toledo", "column-major", {}),
        ("toledo", "morton", {}),
        ("square-recursive", "recursive-packed-hybrid", {}),
        ("square-recursive", "morton", {}),
    ]
    spec = ExperimentSpec.from_cases(
        "cli_table1",
        [
            {"algorithm": algo, "layout": layout, "n": n, "M": M, "params": kw}
            for algo, layout, kw in census
        ],
    )
    result = engine.run(spec)
    bw_lb = cholesky_bandwidth_lower_bound(n, M)
    lat_lb = cholesky_latency_lower_bound(n, M)
    writer = ReportWriter("cli_table1")
    rows = []
    for (algo, layout, _kw), m in zip(census, result.measurements):
        rows.append(
            [algo, layout, m.words, m.words / bw_lb, m.messages,
             m.messages / lat_lb]
        )
    writer.add_table(
        ["algorithm", "storage", "words", "W/LB", "messages", "M/LB"],
        rows,
        title=f"Table 1 (measured): n={n}, M={M}",
    )
    return writer


def report_table2(
    n: int = 96, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Parallel ScaLAPACK vs lower bounds (Table 2)."""
    engine = engine or ExperimentEngine()
    configs = []
    for P in (4, 16):
        root = math.isqrt(P)
        for b in sorted({max(1, n // (4 * root)), n // root}):
            configs.append((n, b, P))
    result = engine.run(ExperimentSpec.parallel("cli_table2", configs))
    writer = ReportWriter("cli_table2")
    rows = []
    for m in result.measurements:
        P, b = m.P, m.block
        rows.append(
            [
                P,
                b,
                m.words,
                scalapack_words(n, b, P),
                m.words / parallel_bandwidth_lower_bound(n, P),
                m.messages,
                scalapack_messages(n, b, P),
                m.messages / parallel_latency_lower_bound(P),
                m.flops / (cholesky_flops(n) / P),
            ]
        )
    writer.add_table(
        ["P", "b", "words", "pred W", "W/LB", "msgs", "pred M", "M/LB",
         "flop bal"],
        rows,
        title=f"Table 2 (measured): PxPOTRF, n={n}",
    )
    return writer


def report_reduction(
    n: int = 16, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Algorithm 1 phase accounting (Theorem 1 / Corollary 2.3).

    Not sweep-shaped (one instrumented run with phase diffing), so the
    ``engine`` parameter is accepted for a uniform registry signature
    but unused.
    """
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    M = 2 * 3 * n
    product, machine, phases = multiply_via_cholesky_counted(a, b, M=M)
    assert np.allclose(product, a @ b, atol=1e-8)
    writer = ReportWriter("cli_reduction")
    writer.add_kv(
        f"Algorithm 1: {n}x{n} matmul via {3 * n}x{3 * n} Cholesky (M={M})",
        [
            ("step 2 (build T') words", phases["setup"]),
            ("step 3 (Cholesky) words", phases["cholesky"]),
            ("step 4 (extract) words", phases["extract"]),
            ("ITT04 matmul bound", max(matmul_bandwidth_lower_bound(n, M=M), 0.0)),
        ],
    )
    return writer


def report_multilevel(
    n: int = 128, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Hierarchy behaviour (Corollary 3.2, Conclusions 4–5).

    Runs on a shared :class:`HierarchicalMachine` (per-level counters,
    deliberate capacity violations), which the point-per-run engine
    does not model; ``engine`` is accepted but unused.
    """
    levels = [48, 768, 12288]
    writer = ReportWriter("cli_multilevel")
    rows = []
    a0 = random_spd(n, seed=1)
    runs: Dict[str, HierarchicalMachine] = {}
    for name, algo, kw in [
        ("AP00", square_recursive, {}),
        ("LAPACK(b=4)", lapack_blocked, {"block": 4}),
        ("LAPACK(b=64)", lapack_blocked, {"block": 64}),
    ]:
        machine = HierarchicalMachine(levels, enforce_capacity=False)
        A = TrackedMatrix(a0, make_layout("morton", n), machine)
        algo(A, **kw)
        runs[name] = machine
    for name, machine in runs.items():
        for lvl, lb in zip(machine.levels, multilevel_bounds(n, levels)):
            rows.append(
                [name, lvl.capacity, lvl.words,
                 lvl.words / max(lb.bandwidth, 1.0),
                 "viol" if lvl.capacity_violated else ""]
            )
    writer.add_table(
        ["algorithm", "level M", "words", "W/LB", "capacity"],
        rows,
        title=f"Multilevel hierarchy {levels}, n={n}",
    )
    return writer


EXPERIMENTS: Dict[str, Callable[..., ReportWriter]] = {
    "table1": report_table1,
    "table2": report_table2,
    "reduction": report_reduction,
    "multilevel": report_multilevel,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-reports",
        description="Regenerate the paper's tables from (cached) simulations.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, or 'all' "
        "(default: all)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="save reports without printing"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep points (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
        ".repro-cache at the repo root)",
    )
    args = parser.parse_args(argv)
    unknown = [e for e in args.experiments if e != "all" and e not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'"
        )
    wanted = (
        list(EXPERIMENTS)
        if "all" in args.experiments or not args.experiments
        else args.experiments
    )
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = "default"
    engine = ExperimentEngine(
        jobs=args.jobs, cache=cache, verbose=not args.quiet
    )
    for name in wanted:
        writer = EXPERIMENTS[name](engine=engine)
        path = writer.emit(echo=not args.quiet)
        print(f"[saved] {path}", file=sys.stderr)
    for path in engine.save_artifacts():
        print(f"[saved] {path}", file=sys.stderr)
    if engine.results:
        print(engine.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
