"""Command-line report generator.

``python -m repro.cli [experiment ...]`` regenerates the paper's
tables and writes them under ``reports/``.  With no arguments, every
experiment runs.  These are the same measurements the benchmark
harness validates (``pytest benchmarks/``); the CLI exists so a reader
can reproduce any single table in seconds without pytest.

The sweep-shaped experiments (Tables 1–2) are submitted to the
:mod:`repro.experiments` engine: ``--jobs N`` fans the points out over
a process pool, and every point is served from the content-addressed
result cache when its configuration and the code are unchanged
(``--no-cache`` / ``--cache-dir`` control this).  Each engine run also
leaves a JSON artifact with per-point wall times under
``reports/experiments/``.  ``--require-warm`` fails the run if any
point had to be simulated — CI uses it to assert cache warmness on
the second pass.

``repro trace`` is the observability subcommand: it runs one
configuration with span recording on and writes a Chrome
``trace_event`` JSON (loadable in ``chrome://tracing`` or Perfetto)
and/or a phase-attribution text report::

    repro trace chol --algorithm blocked_right --n 256 --out trace.json
    repro trace pxpotrf --n 64 --block 16 --P 4 --out ptrace.json

``repro chaos`` is the robustness subcommand: it runs the same
configuration twice — once failure-free, once under a deterministic
:class:`~repro.faults.FaultPlan` — verifies the recovered result is
*bit-identical* to the clean one, and reports the injected faults and
the overhead the resilience protocol paid::

    repro chaos pxpotrf --n 48 --block 12 --P 16 --failstop 3:1 --drop 0.02
    repro chaos summa --n 32 --block 8 --P 4 --corrupt 0.05 --metrics
    repro chaos chol --algorithm lapack --n 64 --read-fault 0.01
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict

import numpy as np

from repro.analysis.report import ReportWriter
from repro.bounds.parallel import (
    parallel_bandwidth_lower_bound,
    parallel_latency_lower_bound,
    scalapack_messages,
    scalapack_words,
)
from repro.bounds.matmul import matmul_bandwidth_lower_bound
from repro.bounds.multilevel import multilevel_bounds
from repro.bounds.sequential import (
    cholesky_bandwidth_lower_bound,
    cholesky_latency_lower_bound,
)
from repro.experiments import ExperimentEngine, ExperimentSpec, ResultCache
from repro.layouts import make_layout
from repro.machine import HierarchicalMachine
from repro.matrices import TrackedMatrix
from repro.matrices.generators import random_spd
from repro.reduction import multiply_via_cholesky_counted
from repro.sequential import (
    available_algorithms,
    cholesky_flops,
    lapack_blocked,
    square_recursive,
)


def report_table1(
    n: int = 128, M: int = 768, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Sequential census vs lower bounds (Table 1)."""
    engine = engine or ExperimentEngine()
    census = [
        ("naive-left", "column-major", {}),
        ("naive-right", "column-major", {}),
        ("lapack", "column-major", {}),
        ("lapack", "blocked", {"layout_block": int(math.isqrt(M // 3))}),
        ("toledo", "column-major", {}),
        ("toledo", "morton", {}),
        ("square-recursive", "recursive-packed-hybrid", {}),
        ("square-recursive", "morton", {}),
    ]
    spec = ExperimentSpec.from_cases(
        "cli_table1",
        [
            {"algorithm": algo, "layout": layout, "n": n, "M": M, "params": kw}
            for algo, layout, kw in census
        ],
    )
    result = engine.run(spec)
    bw_lb = cholesky_bandwidth_lower_bound(n, M)
    lat_lb = cholesky_latency_lower_bound(n, M)
    writer = ReportWriter("cli_table1")
    rows = []
    for (algo, layout, _kw), m in zip(census, result.measurements):
        rows.append(
            [algo, layout, m.words, m.words / bw_lb, m.messages,
             m.messages / lat_lb]
        )
    writer.add_table(
        ["algorithm", "storage", "words", "W/LB", "messages", "M/LB"],
        rows,
        title=f"Table 1 (measured): n={n}, M={M}",
    )
    return writer


def report_table2(
    n: int = 96, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Parallel ScaLAPACK vs lower bounds (Table 2)."""
    engine = engine or ExperimentEngine()
    configs = []
    for P in (4, 16):
        root = math.isqrt(P)
        for b in sorted({max(1, n // (4 * root)), n // root}):
            configs.append((n, b, P))
    result = engine.run(ExperimentSpec.parallel("cli_table2", configs))
    writer = ReportWriter("cli_table2")
    rows = []
    for m in result.measurements:
        P, b = m.P, m.block
        rows.append(
            [
                P,
                b,
                m.words,
                scalapack_words(n, b, P),
                m.words / parallel_bandwidth_lower_bound(n, P),
                m.messages,
                scalapack_messages(n, b, P),
                m.messages / parallel_latency_lower_bound(P),
                m.flops / (cholesky_flops(n) / P),
            ]
        )
    writer.add_table(
        ["P", "b", "words", "pred W", "W/LB", "msgs", "pred M", "M/LB",
         "flop bal"],
        rows,
        title=f"Table 2 (measured): PxPOTRF, n={n}",
    )
    return writer


def report_reduction(
    n: int = 16, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Algorithm 1 phase accounting (Theorem 1 / Corollary 2.3).

    Not sweep-shaped (one instrumented run with phase diffing), so the
    ``engine`` parameter is accepted for a uniform registry signature
    but unused.
    """
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    M = 2 * 3 * n
    product, machine, phases = multiply_via_cholesky_counted(a, b, M=M)
    assert np.allclose(product, a @ b, atol=1e-8)
    writer = ReportWriter("cli_reduction")
    writer.add_kv(
        f"Algorithm 1: {n}x{n} matmul via {3 * n}x{3 * n} Cholesky (M={M})",
        [
            ("step 2 (build T') words", phases["setup"]),
            ("step 3 (Cholesky) words", phases["cholesky"]),
            ("step 4 (extract) words", phases["extract"]),
            ("ITT04 matmul bound", max(matmul_bandwidth_lower_bound(n, M=M), 0.0)),
        ],
    )
    return writer


def report_multilevel(
    n: int = 128, engine: ExperimentEngine | None = None
) -> ReportWriter:
    """Hierarchy behaviour (Corollary 3.2, Conclusions 4–5).

    Runs on a shared :class:`HierarchicalMachine` (per-level counters,
    deliberate capacity violations), which the point-per-run engine
    does not model; ``engine`` is accepted but unused.
    """
    levels = [48, 768, 12288]
    writer = ReportWriter("cli_multilevel")
    rows = []
    a0 = random_spd(n, seed=1)
    runs: Dict[str, HierarchicalMachine] = {}
    for name, algo, kw in [
        ("AP00", square_recursive, {}),
        ("LAPACK(b=4)", lapack_blocked, {"block": 4}),
        ("LAPACK(b=64)", lapack_blocked, {"block": 64}),
    ]:
        machine = HierarchicalMachine(levels, enforce_capacity=False)
        A = TrackedMatrix(a0, make_layout("morton", n), machine)
        algo(A, **kw)
        runs[name] = machine
    for name, machine in runs.items():
        for lvl, lb in zip(machine.levels, multilevel_bounds(n, levels)):
            rows.append(
                [name, lvl.capacity, lvl.words,
                 lvl.words / max(lb.bandwidth, 1.0),
                 "viol" if lvl.capacity_violated else ""]
            )
    writer.add_table(
        ["algorithm", "level M", "words", "W/LB", "capacity"],
        rows,
        title=f"Multilevel hierarchy {levels}, n={n}",
    )
    return writer


EXPERIMENTS: Dict[str, Callable[..., ReportWriter]] = {
    "table1": report_table1,
    "table2": report_table2,
    "reduction": report_reduction,
    "multilevel": report_multilevel,
}

#: Friendly spellings accepted by ``repro trace --algorithm`` on top of
#: the registry names (underscores normalize to dashes first).
ALGORITHM_ALIASES: Dict[str, str] = {
    "blocked-right": "lapack-right",
    "lapack-blocked": "lapack",
    "blocked": "lapack",
    "naive": "naive-left",
    "recursive": "square-recursive",
    "ap00": "square-recursive",
}


def normalize_algorithm(name: str) -> str:
    """Map a CLI algorithm spelling onto a registry name.

    Underscores become dashes (``blocked_right`` → ``blocked-right``)
    and the :data:`ALGORITHM_ALIASES` table resolves the common
    shorthands; unknown names pass through for the registry to reject
    with its own message.
    """
    key = name.strip().lower().replace("_", "-")
    return ALGORITHM_ALIASES.get(key, key)


def trace_main(argv: "list[str]") -> int:
    """``repro trace``: one observed run → Chrome trace / phase report."""
    import math as _math
    import os

    from repro.analysis.sweeps import measure
    from repro.matrices.generators import random_spd
    from repro.observability import (
        SpanProfile,
        phase_report,
        write_chrome_trace,
    )
    from repro.parallel.pxpotrf import pxpotrf
    from repro.parallel.summa import summa

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one configuration with phase spans recorded and "
        "export a Chrome trace_event JSON and/or a phase report.",
    )
    parser.add_argument(
        "target",
        choices=("chol", "pxpotrf", "summa"),
        help="what to trace: a sequential Cholesky ('chol'), the "
        "parallel PxPOTRF, or the SUMMA baseline",
    )
    parser.add_argument(
        "--algorithm",
        default="lapack",
        metavar="NAME",
        help="sequential algorithm (chol only); registry names plus "
        "aliases like 'blocked_right' (default: lapack)",
    )
    parser.add_argument("--n", type=int, default=128, help="matrix dimension")
    parser.add_argument(
        "--M", type=int, default=None,
        help="fast-memory words (chol only; default: 3*n)",
    )
    parser.add_argument(
        "--layout", default="column-major", help="storage layout (chol only)"
    )
    parser.add_argument(
        "--block", type=int, default=None,
        help="distribution block size (parallel; default: n/sqrt(P))",
    )
    parser.add_argument(
        "--P", type=int, default=4,
        help="processors, a perfect square (parallel; default: 4)",
    )
    parser.add_argument("--seed", type=int, default=0, help="input matrix seed")
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the Chrome trace_event JSON here",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the phase-attribution report to stdout",
    )
    args = parser.parse_args(argv)

    try:
        if args.target == "chol":
            algorithm = normalize_algorithm(args.algorithm)
            if algorithm not in available_algorithms():
                parser.error(
                    f"unknown algorithm {args.algorithm!r}; "
                    f"available: {', '.join(available_algorithms())}"
                )
            M = args.M if args.M is not None else 3 * args.n
            m = measure(
                algorithm,
                args.n,
                M,
                layout=args.layout,
                seed=args.seed,
                observe=True,
            )
            profile = SpanProfile.from_dict(m.profile)
            words, messages = m.words, m.messages
        else:
            root = _math.isqrt(args.P)
            if root * root != args.P:
                parser.error(f"--P must be a perfect square, got {args.P}")
            block = (
                args.block if args.block is not None
                else max(1, args.n // root)
            )
            a0 = random_spd(args.n, seed=args.seed)
            if args.target == "pxpotrf":
                res = pxpotrf(a0, block, args.P, observe_spans=True)
            else:
                rng = np.random.default_rng(args.seed + 1)
                res = summa(
                    a0, rng.standard_normal((args.n, args.n)), block, args.P,
                    observe_spans=True,
                )
            profile = res.profile
            words, messages = res.critical_words, res.critical_messages
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        # scripts get a stable one-line failure and exit 1, not a traceback
        print(
            f"[trace] FAIL: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1

    if args.out:
        path = write_chrome_trace(profile, args.out)
        print(f"[trace] {os.path.abspath(path)}", file=sys.stderr)
    if args.report or not args.out:
        print(phase_report(profile))
    print(
        f"[trace] {args.target}: {words} words, {messages} messages, "
        f"{sum(1 for _ in profile.walk())} spans",
        file=sys.stderr,
    )
    return 0


def _parse_failstop(text: str) -> "tuple[int, int]":
    """Parse a ``RANK:ROUND`` fail-stop spec."""
    try:
        rank, rnd = text.split(":")
        return int(rank), int(rnd)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected RANK:ROUND, got {text!r}"
        ) from exc


def _parse_slow_link(text: str) -> "tuple[int, int, float]":
    """Parse a ``SRC:DST:FACTOR`` degraded-link spec."""
    try:
        src, dst, factor = text.split(":")
        return int(src), int(dst), float(factor)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected SRC:DST:FACTOR, got {text!r}"
        ) from exc


def chaos_main(argv: "list[str]") -> int:
    """``repro chaos``: one faulty run vs its failure-free twin.

    Exits 0 only when the run under faults produced a result
    bit-identical to the clean run — the acceptance check for the
    recovery protocol — and prints the realized fault schedule plus
    the overhead (resent/checkpoint/recovery words and messages) the
    resilience machinery charged.
    """
    from repro.abft import AbftConfig
    from repro.faults import FaultPlan
    from repro.machine import SequentialMachine
    from repro.matrices.generators import random_spd
    from repro.observability.metrics import (
        METRICS,
        publish_abft,
        publish_faults,
    )
    from repro.parallel.pxpotrf import pxpotrf
    from repro.parallel.summa import summa
    from repro.sequential.registry import run_algorithm as _run_algorithm

    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run one configuration under a deterministic fault "
        "plan, verify the result matches the failure-free run exactly, "
        "and report the injected faults and recovery overhead.",
    )
    parser.add_argument(
        "target",
        choices=("pxpotrf", "summa", "chol"),
        help="what to stress: the parallel Cholesky, the SUMMA "
        "baseline, or a sequential Cholesky ('chol', read faults only)",
    )
    parser.add_argument("--n", type=int, default=48, help="matrix dimension")
    parser.add_argument(
        "--block", type=int, default=None,
        help="distribution block size (parallel; default: n/sqrt(P))",
    )
    parser.add_argument(
        "--P", type=int, default=16,
        help="processors, a perfect square (parallel; default: 16)",
    )
    parser.add_argument(
        "--algorithm", default="lapack", metavar="NAME",
        help="sequential algorithm (chol only; default: lapack)",
    )
    parser.add_argument(
        "--M", type=int, default=None,
        help="fast-memory words (chol only; default: 3*n)",
    )
    parser.add_argument("--seed", type=int, default=0, help="input matrix seed")
    parser.add_argument(
        "--fault-seed", type=int, default=1,
        help="fault-plan seed: same seed, same schedule (default: 1)",
    )
    parser.add_argument(
        "--drop", type=float, default=0.0,
        help="per-message drop probability (network targets)",
    )
    parser.add_argument(
        "--duplicate", type=float, default=0.0,
        help="per-message duplication probability",
    )
    parser.add_argument(
        "--corrupt", type=float, default=0.0,
        help="per-message payload-corruption probability (detected by "
        "checksum, costs a resend)",
    )
    parser.add_argument(
        "--read-fault", type=float, default=0.0,
        help="per-read transient fault probability (chol only)",
    )
    parser.add_argument(
        "--silent", type=float, default=0.0,
        help="per-boundary/per-payload silent bit-flip probability; "
        "undetectable by the transport, so this arms the ABFT checksum "
        "protection automatically",
    )
    parser.add_argument(
        "--silent-double", type=float, default=0.0,
        help="probability a silent strike is a double fault in one "
        "protection tile (uncorrectable: forces the retry ladder)",
    )
    parser.add_argument(
        "--abft", action="store_true",
        help="run checksum-protected even without silent faults "
        "(measures pure protection overhead)",
    )
    parser.add_argument(
        "--abft-attempts", type=int, default=3,
        help="ABFT retry-ladder bound (default: 3)",
    )
    parser.add_argument(
        "--failstop", type=_parse_failstop, action="append", default=[],
        metavar="RANK:ROUND",
        help="fail-stop rank RANK at round ROUND (repeatable; enables "
        "buddy checkpointing + recovery)",
    )
    parser.add_argument(
        "--slow", type=_parse_slow_link, action="append", default=[],
        metavar="SRC:DST:FACTOR",
        help="degrade the SRC→DST link's inverse bandwidth by FACTOR",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the Prometheus-style metrics exposition at the end",
    )
    args = parser.parse_args(argv)

    plan = FaultPlan(
        seed=args.fault_seed,
        drop=args.drop,
        duplicate=args.duplicate,
        corrupt=args.corrupt,
        read_fault=args.read_fault,
        silent=args.silent,
        silent_double=args.silent_double,
        failstops=tuple(args.failstop),
        slow_links=tuple(args.slow),
    )
    if plan.is_empty():
        parser.error(
            "the fault plan is empty; give at least one of --drop, "
            "--duplicate, --corrupt, --read-fault, --silent, "
            "--failstop, --slow"
        )
    # A silent-only plan arms neither the machine nor the transport, so
    # the guardian must carry it explicitly; the clean baseline runs
    # under the same (plan-less) config so both factors come off the
    # identical interpreted ABFT path and compare bit-for-bit.
    abft_on = args.abft or plan.has_silent()
    abft_clean_cfg = (
        AbftConfig(max_attempts=args.abft_attempts) if abft_on else None
    )
    abft_cfg = (
        abft_clean_cfg.with_plan(plan) if abft_clean_cfg is not None else None
    )

    a0 = random_spd(args.n, seed=args.seed)
    if args.target == "chol":
        if plan.failstops or plan.slow_links or plan.drop or plan.duplicate \
                or plan.corrupt:
            if not plan.read_fault:
                parser.error("chol injects read faults; use --read-fault")
        algorithm = normalize_algorithm(args.algorithm)
        M = args.M if args.M is not None else 3 * args.n

        def run(with_faults: bool):
            machine = SequentialMachine(M)
            machine.attach_faults(plan if with_faults else None)
            A = TrackedMatrix(a0, make_layout("column-major", args.n), machine)
            L = _run_algorithm(
                algorithm, A, abft=abft_cfg if with_faults else abft_clean_cfg
            )
            stats = machine.faults.stats if machine.faults else None
            return L.L, L.measurement, stats, getattr(L, "abft", None)

        clean_x, clean_m, _, _ = run(False)
        faulty_x, faulty_m, stats, abft_rec = run(True)
        if stats is not None:
            publish_faults(stats)
        overhead_words = faulty_m.words - clean_m.words
        overhead_msgs = faulty_m.messages - clean_m.messages
    else:
        root = math.isqrt(args.P)
        if root * root != args.P:
            parser.error(f"--P must be a perfect square, got {args.P}")
        block = args.block if args.block is not None else max(1, args.n // root)
        if args.target == "pxpotrf":
            def factor(faults, abft=None):
                return pxpotrf(a0, block, args.P, faults=faults, abft=abft)
            clean_r = factor(None, abft=abft_clean_cfg)
            faulty_r = factor(plan, abft=abft_cfg)
            clean_x, faulty_x = clean_r.L, faulty_r.L
        else:
            rng = np.random.default_rng(args.seed + 1)
            b0 = rng.standard_normal((args.n, args.n))
            clean_r = summa(a0, b0, block, args.P, abft=abft_clean_cfg)
            faulty_r = summa(
                a0, b0, block, args.P, faults=plan, abft=abft_cfg
            )
            clean_x, faulty_x = clean_r.C, faulty_r.C
        stats = faulty_r.fault_stats
        abft_rec = faulty_r.abft
        if stats is not None:
            publish_faults(stats)
        overhead_words = faulty_r.critical_words - clean_r.critical_words
        overhead_msgs = faulty_r.critical_messages - clean_r.critical_messages

    diff = float(np.max(np.abs(faulty_x - clean_x)))
    d = stats.to_dict() if stats is not None else {}
    injected = {
        k: d.get(k, 0)
        for k in ("drops", "duplicates", "corruptions", "failstops",
                  "read_faults")
        if d.get(k, 0)
    }
    overhead = {
        k: d.get(k, 0)
        for k in ("resent_messages", "resent_words", "ack_messages",
                  "checkpoint_words", "checkpoint_messages",
                  "recovery_words", "recovery_messages",
                  "read_retry_words", "read_retry_messages")
        if d.get(k, 0)
    }
    print(f"[chaos] plan: {plan.to_dict()}")
    print(f"[chaos] injected: {injected or 'nothing (schedule was quiet)'}")
    print(f"[chaos] protocol overhead: {overhead or 'none'}")
    if abft_rec is not None:
        s = abft_rec["stats"]
        publish_abft(abft_rec)
        print(
            f"[chaos] abft: injected {s['injected_single']} single + "
            f"{s['injected_double']} double, detected {s['detected']}, "
            f"corrected {s['corrected']}, attempts {s['attempts']}, "
            f"verified {s['verified']}"
        )
        print(f"[chaos] abft attestation: {abft_rec['attestation']}")
    print(
        f"[chaos] critical-path overhead: {overhead_words} words, "
        f"{overhead_msgs} messages"
    )
    print(f"[chaos] max |faulty - clean| = {diff}")
    if args.metrics:
        print(METRICS.render_text(), end="")
    if diff != 0.0:
        print("[chaos] FAIL: faulty run diverged from the clean run",
              file=sys.stderr)
        return 1
    print("[chaos] OK: faulty run matches the failure-free run exactly")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.analysis.wallclock import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serving.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from repro.serving.cli import submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.serving.top import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "metrics":
        from repro.observability.export import metrics_main

        return metrics_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-reports",
        description="Regenerate the paper's tables from (cached) simulations. "
        "Use 'repro trace ...' for the observability subcommand.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, or 'all' "
        "(default: all)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="save reports without printing"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep points (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
        ".repro-cache at the repo root)",
    )
    parser.add_argument(
        "--require-warm",
        action="store_true",
        help="fail (exit 1) if any sweep point missed the result cache "
        "— asserts a previous run already warmed it",
    )
    args = parser.parse_args(argv)
    if args.require_warm and args.no_cache:
        parser.error("--require-warm contradicts --no-cache")
    unknown = [e for e in args.experiments if e != "all" and e not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'"
        )
    wanted = (
        list(EXPERIMENTS)
        if "all" in args.experiments or not args.experiments
        else args.experiments
    )
    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = "default"
    engine = ExperimentEngine(
        jobs=args.jobs, cache=cache, verbose=not args.quiet
    )
    for name in wanted:
        writer = EXPERIMENTS[name](engine=engine)
        path = writer.emit(echo=not args.quiet)
        print(f"[saved] {path}", file=sys.stderr)
    for path in engine.save_artifacts():
        print(f"[saved] {path}", file=sys.stderr)
    if engine.results:
        print(engine.summary(), file=sys.stderr)
    failed = sum(len(r.failures) for r in engine.results)
    if failed:
        # salvage keeps the artifacts, but a run with failed points
        # must not look green to scripts and CI
        print(
            f"[engine] {failed} point(s) failed; see the artifacts for "
            "per-point errors",
            file=sys.stderr,
        )
        return 1
    if args.require_warm:
        misses = sum(r.cache_misses for r in engine.results)
        if misses:
            print(
                f"[engine] --require-warm: {misses} point(s) missed the "
                "cache",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
