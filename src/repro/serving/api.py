"""The serving layer's typed request/response API and its wire schema.

This module is the single definition of what a serving request and a
serving response *are*.  Every front end — the in-process
:class:`~repro.serving.service.FactorizationService`, the sharded
:class:`~repro.serving.cluster.ServingCluster`, the
:class:`~repro.serving.client.ServingClient` facade, the CLI and the
benchmarks — speaks exactly these types, so a response printed by
``repro submit`` deserializes into the same object a cluster shard
produced.

Request side
------------

A :class:`Job` wraps one :class:`~repro.experiments.spec.SpecPoint` —
the same execution unit the experiment engine runs — with the serving
metadata admission control needs: a priority grade, a
:class:`~repro.serving.budget.Budget`, and the submission timestamp
deadlines are measured from.  :func:`chol_request` and
:func:`pxpotrf_request` are the typed builders the CLI and the
workload generators share (they replaced several hand-rolled
point-construction paths).

Response side
-------------

Every job ends in exactly one terminal :class:`ServiceResponse` whose
``status`` is one of

``done``
    The full simulation ran within budget; ``measurement`` is exact.
``degraded``
    The budget, deadline or breaker forbade full simulation; the
    closed-form Table 1/2 prediction is served instead
    (``measurement`` holds the predicted counts, ``prediction``
    carries the documented error bounds, ``reason`` says why).
``shed``
    Admission control refused the job (queue full, in-flight limit,
    eviction by higher priority, shutdown); nothing ran.
``failed``
    The simulation failed for a non-budget reason (fault exhaustion,
    a non-SPD input, an invalid configuration) and no closed form was
    applicable or permitted.

``reason`` is always machine-readable (a stable slug like
``queue-full`` or ``budget-words``); ``detail`` carries the structured
specifics (limits, spends, queue occupancy, predictions).

Wire schema
-----------

Jobs and responses cross process boundaries (cluster shard pipes,
workload files, CLI output, soak artifacts) as JSON dicts stamped with
``schema_version``.  :func:`job_to_wire`/:func:`job_from_wire` and
:func:`response_to_wire`/:func:`response_from_wire` are the only
(de)serializers; both directions round-trip exactly and both reject a
wire document from an incompatible future schema with
:class:`WireError` instead of misreading it.  Version history:

* **1** — initial versioned schema (PR 6).  Unversioned job records
  (the pre-PR-6 workload-file format) are accepted as version 1.
* **2** — distributed tracing (PR 7): jobs may carry a ``trace``
  context (:class:`~repro.observability.tracing.TraceContext` dict)
  minted at submission, and terminal responses may carry ``trace`` —
  the job's cross-process span records
  (:class:`~repro.observability.tracing.SpanRecord` dicts).  Both
  keys are **omitted when absent**, so an untraced job's wire
  documents are byte-identical to version 1 apart from the stamp,
  and version-1 readers that ignore unknown keys keep working.

* **3** — ABFT (this PR): jobs' points may carry an ``abft``
  protection config (inside ``point``, omitted when off, exactly like
  the version-2 ``trace`` discipline), and terminal responses may
  carry ``verified`` — ``True`` when the measurement's checksum
  protection ran end-to-end and the factor attestation was recorded,
  ``False`` when protection was requested but could not complete.
  Omitted for unprotected jobs, so their wire documents are
  byte-identical to version 2 apart from the stamp.

The write-ahead job journal (PR 8,
:mod:`repro.serving.journal`) embeds each accepted job's version-2
wire document verbatim inside its ``accepted`` records, so journal
replay goes through :func:`job_from_wire` and inherits this exact
compatibility contract — including the preservation of the original
``job_id``, which is what lets a recovery run match its terminal
records against a previous incarnation's acceptances.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.experiments.spec import (
    PARALLEL,
    SEQUENTIAL,
    SpecPoint,
    _freeze_abft,
)
from repro.faults.plan import FaultPlan
from repro.observability.tracing import SpanRecord, TraceContext
from repro.results import Measurement, freeze_params
from repro.serving.budget import Budget
from repro.serving.degrade import Prediction
from repro.serving.queue import PRIORITY_NORMAL, parse_priority, priority_name

#: Version stamp every wire document carries.  Bump on any change to
#: the job/response wire layout and keep the old readers working.
SCHEMA_VERSION = 3

#: Terminal response statuses.
DONE = "done"
DEGRADED = "degraded"
SHED = "shed"
FAILED = "failed"

TERMINAL_STATUSES = (DONE, DEGRADED, SHED, FAILED)

_job_ids = itertools.count(1)


class WireError(ValueError):
    """A wire document does not parse under any supported schema."""


def _check_schema_version(d: Mapping[str, Any], what: str) -> int:
    """Validate a document's ``schema_version``; returns the version.

    A missing field means a legacy (pre-versioning) document and is
    accepted as version 1; anything newer than :data:`SCHEMA_VERSION`
    is refused rather than guessed at.
    """
    version = d.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise WireError(f"{what}: bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise WireError(
            f"{what}: schema_version {version} is newer than this "
            f"library understands (max {SCHEMA_VERSION})"
        )
    return version


@dataclass
class Job:
    """One admitted (or about-to-be-admitted) unit of work."""

    point: SpecPoint
    priority: int = PRIORITY_NORMAL
    budget: "Budget | None" = None
    submitted_at: float = 0.0
    job_id: str = field(default_factory=lambda: f"job-{next(_job_ids)}")
    #: Trace context minted at submission when tracing is enabled; an
    #: untraced job carries ``None`` and records nothing anywhere.
    trace: "TraceContext | None" = None

    def label(self) -> str:
        """Short progress-line tag."""
        return f"{self.job_id} [{priority_name(self.priority)}] {self.point.label()}"

    def to_wire(self) -> dict:
        """Versioned JSON-ready wire document for this request."""
        wire = {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "point": self.point.to_dict(),
            "priority": priority_name(self.priority),
            "budget": None if self.budget is None else self.budget.to_dict(),
        }
        if self.trace is not None:
            wire["trace"] = self.trace.to_dict()
        return wire

    @classmethod
    def from_wire(cls, d: Mapping[str, Any]) -> "Job":
        """Rebuild a request from :meth:`to_wire` output (see module doc)."""
        return job_from_wire(d)


@dataclass(frozen=True)
class ServiceResponse:
    """The terminal answer for one job (see module docstring)."""

    job_id: str
    status: str
    reason: "str | None" = None
    detail: dict = field(default_factory=dict)
    measurement: "Measurement | None" = None
    prediction: "Prediction | None" = None
    attempts: int = 0
    wall_seconds: float = 0.0
    priority: int = PRIORITY_NORMAL
    #: The job's cross-process span records (schema v2); ``None`` for
    #: untraced jobs, so disabled-mode payloads match version 1 exactly.
    trace: "tuple[SpanRecord, ...] | None" = None
    #: ABFT outcome (schema v3): ``True`` when the measurement's
    #: checksum protection verified end-to-end, ``False`` when
    #: protection was requested but did not complete; ``None`` (and
    #: omitted on the wire) for unprotected jobs.
    verified: "bool | None" = None

    @property
    def degraded(self) -> bool:
        """True when the answer is a closed-form bound, not a simulation."""
        return self.status == DEGRADED

    @property
    def ok(self) -> bool:
        """True when the job produced an answer (exact or degraded)."""
        return self.status in (DONE, DEGRADED)

    def to_dict(self) -> dict:
        """JSON-ready dict (CLI output, soak artifacts)."""
        out = {
            "job_id": self.job_id,
            "status": self.status,
            "degraded": self.degraded,
            "reason": self.reason,
            "detail": dict(self.detail),
            "measurement": (
                None if self.measurement is None else self.measurement.to_dict()
            ),
            "prediction": (
                None if self.prediction is None else self.prediction.to_dict()
            ),
            "attempts": int(self.attempts),
            "wall_seconds": float(self.wall_seconds),
            "priority": priority_name(self.priority),
        }
        if self.trace is not None:
            out["trace"] = [r.to_dict() for r in self.trace]
        if self.verified is not None:
            out["verified"] = bool(self.verified)
        return out

    def to_wire(self) -> dict:
        """Versioned JSON-ready wire document for this response."""
        wire = self.to_dict()
        wire["schema_version"] = SCHEMA_VERSION
        return wire

    @classmethod
    def from_wire(cls, d: Mapping[str, Any]) -> "ServiceResponse":
        """Rebuild a response from :meth:`to_wire` output."""
        return response_from_wire(d)


class JobTicket:
    """Handle returned by ``submit``: await the job's terminal response."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self._event = threading.Event()
        self._response: "ServiceResponse | None" = None
        self._callbacks: "list[Callable[[ServiceResponse], None]]" = []
        self._lock = threading.Lock()

    @property
    def job_id(self) -> str:
        return self.job.job_id

    def done(self) -> bool:
        """Has the job reached a terminal state?"""
        return self._event.is_set()

    def add_done_callback(self, fn: "Callable[[ServiceResponse], None]") -> None:
        """Run ``fn(response)`` once the job is terminal.

        Fires immediately (on the calling thread) when the ticket is
        already resolved, otherwise on whichever thread resolves it.
        The cluster front door and the client's streaming window use
        this to fan completions into a queue without polling.
        """
        with self._lock:
            if self._response is None:
                self._callbacks.append(fn)
                return
            response = self._response
        fn(response)

    def resolve(self, response: ServiceResponse) -> None:
        """Attach the terminal response (service-internal; idempotent-safe)."""
        with self._lock:
            if self._event.is_set():
                raise RuntimeError(f"{self.job_id} already resolved")
            self._response = response
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(response)

    def result(self, timeout: "float | None" = None) -> ServiceResponse:
        """Block until terminal; raises ``TimeoutError`` on timeout."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(
                f"{self.job_id} not terminal within {timeout}s"
            )
        assert self._response is not None
        return self._response


# -- request builders ------------------------------------------------------


def chol_request(
    *,
    algorithm: str = "lapack",
    layout: str = "column-major",
    n: int = 64,
    M: "int | None" = None,
    seed: int = 0,
    verify: bool = True,
    params: "Mapping[str, Any] | None" = None,
    faults: "FaultPlan | None" = None,
    priority: "str | int" = PRIORITY_NORMAL,
    budget: "Budget | None" = None,
    abft=None,
) -> Job:
    """A sequential-Cholesky job request (``M`` defaults to ``3*n``).

    This is the one construction path for ``chol`` jobs — the CLI, the
    demo/bench/soak workload generators and the docs examples all call
    it, so the default shapes can never drift apart again.  ``abft``
    (config/dict/``True``) requests checksum protection; the terminal
    response then carries ``verified``.
    """
    point = SpecPoint(
        kind=SEQUENTIAL,
        algorithm=algorithm,
        layout=layout,
        n=int(n),
        M=int(M) if M is not None else 3 * int(n),
        seed=int(seed),
        verify=bool(verify),
        params=freeze_params(params),
        faults=() if faults is None or faults.is_empty() else faults.freeze(),
        abft=_freeze_abft(abft),
    )
    return Job(point=point, priority=parse_priority(priority), budget=budget)


def pxpotrf_request(
    *,
    n: int = 64,
    P: int = 4,
    block: "int | None" = None,
    seed: int = 0,
    verify: bool = True,
    faults: "FaultPlan | None" = None,
    priority: "str | int" = PRIORITY_NORMAL,
    budget: "Budget | None" = None,
    abft=None,
) -> Job:
    """A parallel PxPOTRF job request.

    ``P`` must be a perfect square (the 2D processor grid); ``block``
    defaults to ``n // sqrt(P)``.  ``abft`` requests checksum-sealed
    broadcasts (see :func:`chol_request`).
    """
    root = math.isqrt(int(P))
    if root * root != int(P):
        raise ValueError(f"P must be a perfect square, got {P}")
    point = SpecPoint(
        kind=PARALLEL,
        algorithm="pxpotrf",
        layout="block-cyclic",
        n=int(n),
        M=None,
        P=int(P),
        block=int(block) if block is not None else max(1, int(n) // root),
        seed=int(seed),
        verify=bool(verify),
        faults=() if faults is None or faults.is_empty() else faults.freeze(),
        abft=_freeze_abft(abft),
    )
    return Job(point=point, priority=parse_priority(priority), budget=budget)


# -- wire (de)serialization ------------------------------------------------


def job_to_wire(job: Job) -> dict:
    """Serialize a request for the cluster pipe / a workload file."""
    return job.to_wire()


def job_from_wire(d: Mapping[str, Any]) -> Job:
    """Parse a job wire document (or a legacy unversioned record).

    The legacy workload-file shape ``{"point": {...}, "priority":
    "high", "budget": {...}}`` — everything but ``point`` optional —
    is accepted as schema version 1 without a version stamp.
    """
    _check_schema_version(d, "job")
    try:
        point = SpecPoint.from_dict(d["point"])
    except KeyError as exc:
        raise WireError("job: missing 'point'") from exc
    budget = None if d.get("budget") is None else Budget.from_dict(d["budget"])
    kwargs: dict = {}
    if d.get("job_id") is not None:
        kwargs["job_id"] = str(d["job_id"])
    if d.get("trace") is not None:
        kwargs["trace"] = TraceContext.from_dict(d["trace"])
    return Job(
        point=point,
        priority=parse_priority(d.get("priority", PRIORITY_NORMAL)),
        budget=budget,
        **kwargs,
    )


def response_to_wire(response: ServiceResponse) -> dict:
    """Serialize a terminal response for the cluster pipe / artifacts."""
    return response.to_wire()


def response_from_wire(d: Mapping[str, Any]) -> ServiceResponse:
    """Parse a response wire document back into a :class:`ServiceResponse`.

    Inverse of :func:`response_to_wire`: ``response_to_wire(
    response_from_wire(w)) == w`` for any valid ``w`` (the derived
    ``degraded`` flag is recomputed, not trusted).
    """
    _check_schema_version(d, "response")
    try:
        status = d["status"]
        job_id = str(d["job_id"])
    except KeyError as exc:
        raise WireError(f"response: missing {exc}") from exc
    if status not in TERMINAL_STATUSES:
        raise WireError(f"response: unknown status {status!r}")
    measurement = (
        None
        if d.get("measurement") is None
        else Measurement.from_dict(d["measurement"])
    )
    prediction = (
        None
        if d.get("prediction") is None
        else Prediction.from_dict(d["prediction"])
    )
    trace = (
        None
        if d.get("trace") is None
        else tuple(SpanRecord.from_dict(r) for r in d["trace"])
    )
    return ServiceResponse(
        job_id=job_id,
        status=status,
        reason=d.get("reason"),
        detail=dict(d.get("detail") or {}),
        measurement=measurement,
        prediction=prediction,
        attempts=int(d.get("attempts", 0)),
        wall_seconds=float(d.get("wall_seconds", 0.0)),
        priority=parse_priority(d.get("priority", PRIORITY_NORMAL)),
        trace=trace,
        verified=(
            None if d.get("verified") is None else bool(d["verified"])
        ),
    )


def job_from_dict(d: Mapping[str, Any]) -> Job:
    """Build a job from a workload-file record.

    The record is ``{"point": <SpecPoint.to_dict()>, "priority":
    "high"|"normal"|"low"|int, "budget": <Budget.to_dict()>}`` with
    everything but ``point`` optional.  Retained as the historical
    name; it is the same parser as :func:`job_from_wire`.
    """
    return job_from_wire(d)


__all__ = [
    "DEGRADED",
    "DONE",
    "FAILED",
    "SCHEMA_VERSION",
    "SHED",
    "TERMINAL_STATUSES",
    "Job",
    "JobTicket",
    "ServiceResponse",
    "WireError",
    "chol_request",
    "job_from_dict",
    "job_from_wire",
    "job_to_wire",
    "pxpotrf_request",
    "response_from_wire",
    "response_to_wire",
]
