"""Per-algorithm circuit breakers.

A flaky backend — an algorithm that keeps raising
:class:`~repro.faults.FaultExhausted` under the current fault plan, or
keeps timing out against its deadline — should stop being *attempted*:
every doomed run occupies a worker, burns its budget and delays the
healthy traffic behind it.  The breaker implements the classic
three-state machine:

``CLOSED``
    Normal operation.  ``failure_threshold`` *consecutive* failures
    trip it to ``OPEN`` (any success resets the streak).
``OPEN``
    All traffic is refused (the service serves the degradation ladder
    instead).  After ``cooldown`` seconds the next ``allow`` call
    transitions to ``HALF_OPEN``.
``HALF_OPEN``
    A limited number of probes (``half_open_probes``) may pass — the
    service runs a cheap canary before trusting the breaker again.  A
    probe success closes the breaker; a probe failure re-opens it and
    restarts the cooldown.

Every decision reads time exclusively through the injected clock
(:mod:`repro.serving.clock`), never ``time.time``, so tests drive the
full transition diagram deterministically by advancing a
:class:`~repro.serving.clock.ManualClock`.  All methods are
thread-safe.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.serving.clock import MONOTONIC, Clock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the states (exported to the metrics registry).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: ``on_transition`` callback type: (from_state, to_state).
TransitionHook = Callable[[str, str], None]


class CircuitBreaker:
    """Consecutive-failure breaker with clock-injected cooldowns."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
        clock: Clock = MONOTONIC,
        on_transition: TransitionHook | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_inflight = 0

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (reading it performs no transition)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Length of the current failure streak (CLOSED bookkeeping)."""
        with self._lock:
            return self._consecutive_failures

    def _transition(self, to: str) -> None:
        """Move to ``to`` (lock held by caller)."""
        frm = self._state
        if frm == to:
            return
        self._state = to
        if to == OPEN:
            self._opened_at = self._clock()
            self._probes_inflight = 0
        elif to == HALF_OPEN:
            self._probes_inflight = 0
        elif to == CLOSED:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probes_inflight = 0
        if self._on_transition is not None:
            self._on_transition(frm, to)

    # -- decisions ---------------------------------------------------------

    def allow(self) -> bool:
        """May a request proceed right now?

        ``CLOSED`` always allows.  ``OPEN`` refuses until the cooldown
        has elapsed, at which point the breaker moves to ``HALF_OPEN``
        and the call is treated as a probe.  ``HALF_OPEN`` allows up to
        ``half_open_probes`` concurrent probes; each allowed call
        *claims* a probe slot, which the eventual
        :meth:`record_success`/:meth:`record_failure` releases.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return False
                self._transition(HALF_OPEN)
            # HALF_OPEN: hand out probe slots
            if self._probes_inflight >= self.half_open_probes:
                return False
            self._probes_inflight += 1
            return True

    def probing(self) -> bool:
        """True when the breaker is half-open (callers should canary)."""
        with self._lock:
            return self._state == HALF_OPEN

    def record_success(self) -> None:
        """A request (or probe) finished cleanly."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A request (or probe) failed in a breaker-relevant way."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(OPEN)
                return
            if self._state == OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._transition(OPEN)

    def snapshot(self) -> dict:
        """JSON-ready state report (health endpoint payload)."""
        with self._lock:
            due = (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.cooldown
            )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "probe_due": due,
            }


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "CircuitBreaker",
]
