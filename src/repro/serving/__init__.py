"""Resilient job-execution layer over the experiment engine.

Admission control and load shedding
(:class:`~repro.serving.queue.BoundedPriorityQueue`), per-job deadlines
and simulated-cost budgets (:class:`~repro.serving.budget.Budget`),
per-algorithm circuit breakers
(:class:`~repro.serving.breaker.CircuitBreaker`), and graceful
degradation to the paper's closed-form Table 1/2 predictions
(:mod:`repro.serving.degrade`) — composed by
:class:`~repro.serving.service.FactorizationService`.

See ``docs/SERVING.md`` for the full protocol: the admission flow, the
budget chokepoints, the breaker state machine and the degradation
ladder with its documented error bounds.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.budget import Budget, BudgetExceeded, BudgetGuard
from repro.serving.clock import MONOTONIC, ManualClock
from repro.serving.degrade import (
    PARALLEL_BOUND_FACTORS,
    SEQUENTIAL_BOUND_FACTORS,
    Prediction,
    degraded_measurement,
    predict_point,
)
from repro.serving.jobs import (
    DEGRADED,
    DONE,
    FAILED,
    SHED,
    TERMINAL_STATUSES,
    Job,
    JobTicket,
    ServiceResponse,
    job_from_dict,
)
from repro.serving.queue import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    BoundedPriorityQueue,
    QueueClosed,
    parse_priority,
    priority_name,
)
from repro.serving.service import (
    FactorizationService,
    Overloaded,
    canary_point,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetGuard",
    "BoundedPriorityQueue",
    "CircuitBreaker",
    "CLOSED",
    "DEGRADED",
    "DONE",
    "FAILED",
    "FactorizationService",
    "HALF_OPEN",
    "Job",
    "JobTicket",
    "MONOTONIC",
    "ManualClock",
    "OPEN",
    "Overloaded",
    "PARALLEL_BOUND_FACTORS",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Prediction",
    "QueueClosed",
    "SEQUENTIAL_BOUND_FACTORS",
    "SHED",
    "ServiceResponse",
    "TERMINAL_STATUSES",
    "canary_point",
    "degraded_measurement",
    "job_from_dict",
    "parse_priority",
    "predict_point",
    "priority_name",
]
