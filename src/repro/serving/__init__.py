"""Resilient serving layer over the experiment engine.

Admission control and load shedding
(:class:`~repro.serving.queue.BoundedPriorityQueue`), per-job deadlines
and simulated-cost budgets (:class:`~repro.serving.budget.Budget`),
per-algorithm circuit breakers
(:class:`~repro.serving.breaker.CircuitBreaker`), and graceful
degradation to the paper's closed-form Table 1/2 predictions
(:mod:`repro.serving.degrade`) — composed by
:class:`~repro.serving.service.FactorizationService`, scaled out by
the sharded :class:`~repro.serving.cluster.ServingCluster` (a
consistent-hash front door over N shards sharing one result store),
and fronted by the one client facade
(:class:`~repro.serving.client.ServingClient`).  The typed
request/response schema every layer speaks lives in
:mod:`repro.serving.api`.

Durability and self-healing: the front door can write-ahead journal
every job lifecycle transition (:class:`~repro.serving.journal.JobJournal`)
and replay it after a crash (:meth:`ServingCluster.recover`), dead
shards are respawned under a seeded backoff/budget policy
(:class:`~repro.serving.supervisor.ShardSupervisor`), and a
:class:`~repro.faults.ClusterFaultPlan` drives byte-reproducible
cluster chaos soaks.

See ``docs/SERVING.md`` for the full protocol: the admission flow, the
budget chokepoints, the breaker state machine, the degradation ladder
with its documented error bounds, the cluster's ring/rebalance
semantics, and the journal/supervision durability contract.
"""

from repro.serving.api import (
    DEGRADED,
    DONE,
    FAILED,
    SCHEMA_VERSION,
    SHED,
    TERMINAL_STATUSES,
    Job,
    JobTicket,
    ServiceResponse,
    WireError,
    chol_request,
    job_from_dict,
    job_from_wire,
    job_to_wire,
    pxpotrf_request,
    response_from_wire,
    response_to_wire,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.budget import Budget, BudgetExceeded, BudgetGuard
from repro.serving.client import ServingClient
from repro.serving.clock import MONOTONIC, ManualClock
from repro.serving.cluster import ClusterTicket, ServingCluster
from repro.serving.journal import (
    CRASH_EXIT_CODE,
    JobJournal,
    JournalCrash,
    JournalReplay,
    replay_journal,
)
from repro.serving.degrade import (
    PARALLEL_BOUND_FACTORS,
    SEQUENTIAL_BOUND_FACTORS,
    Prediction,
    degraded_measurement,
    predict_point,
)
from repro.serving.queue import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    BoundedPriorityQueue,
    QueueClosed,
    parse_priority,
    priority_name,
)
from repro.serving.ring import HashRing
from repro.serving.service import (
    FactorizationService,
    Overloaded,
    canary_point,
)
from repro.serving.store import SharedResultStore, ShardStoreView
from repro.serving.supervisor import ShardSupervisor

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetGuard",
    "BoundedPriorityQueue",
    "CircuitBreaker",
    "CLOSED",
    "CRASH_EXIT_CODE",
    "ClusterTicket",
    "DEGRADED",
    "DONE",
    "FAILED",
    "FactorizationService",
    "HALF_OPEN",
    "HashRing",
    "Job",
    "JobJournal",
    "JobTicket",
    "JournalCrash",
    "JournalReplay",
    "MONOTONIC",
    "ManualClock",
    "OPEN",
    "Overloaded",
    "PARALLEL_BOUND_FACTORS",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Prediction",
    "QueueClosed",
    "SCHEMA_VERSION",
    "SEQUENTIAL_BOUND_FACTORS",
    "SHED",
    "ServiceResponse",
    "ServingClient",
    "ServingCluster",
    "ShardSupervisor",
    "SharedResultStore",
    "ShardStoreView",
    "TERMINAL_STATUSES",
    "WireError",
    "canary_point",
    "chol_request",
    "degraded_measurement",
    "job_from_dict",
    "job_from_wire",
    "job_to_wire",
    "parse_priority",
    "predict_point",
    "priority_name",
    "pxpotrf_request",
    "replay_journal",
    "response_from_wire",
    "response_to_wire",
]
