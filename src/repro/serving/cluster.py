"""Sharded serving cluster: a consistent-hash front door over N shards.

:class:`ServingCluster` scales the single-process
:class:`~repro.serving.service.FactorizationService` out to N
independent shards behind one submit surface:

* **Routing** — jobs hash onto a :class:`~repro.serving.ring.HashRing`
  by their spec's content key, so identical specs always land on the
  same shard and hit its warm in-memory result tier.  Optional
  bounded-load spill (``spill_depth``) diverts a job to its
  second-choice shard when the owner's backlog is deep — affinity with
  a cap on imbalance.
* **Shared results** — every shard reads and writes one
  :class:`~repro.serving.store.SharedResultStore`, so after a
  rebalance the new owner of a key serves the old owner's work from
  the store instead of recomputing (see the store module docstring for
  the 2.5D-replication analogy).
* **Health aggregation and rebalancing** — the front door tracks shard
  liveness (process exit, stale heartbeats) and breaker state; a dead
  or hard-open shard is removed from the ring (its keys fall through
  to clockwise neighbours), a recovered shard is re-added, and every
  in-flight job of a *dead* shard is resubmitted to a survivor — an
  accepted job is never lost, it is re-routed.

Two substrates, one API:

``mode="inline"``
    Shards are in-process services with ``workers=0``, executed by
    :meth:`ServingCluster.run_pending` in deterministic ring order on
    the caller's thread, with a shared
    :class:`~repro.serving.clock.ManualClock` by default.  This is the
    virtual-clock mode the determinism suite runs: same seed, same
    submission order → identical responses and identical shard
    assignments, for any shard count.
``mode="process"``
    Each shard is a real OS process (``multiprocessing`` spawn) running
    its own service with worker threads, fed over a duplex pipe with
    the versioned wire schema from :mod:`repro.serving.api`.  Shard
    processes emit heartbeats (and, when ``health_dir`` is set, write
    crash-safe health snapshots via
    :func:`~repro.util.serialization.atomic_write_json`); the parent's
    monitor removes silent or dead shards from the ring and resubmits
    their in-flight jobs.

Durability and self-healing (PR 8):

* **Write-ahead job journal** — with ``journal_dir`` set, every
  front-door lifecycle transition (``accepted`` with the full job wire
  document, ``assigned``, ``completed``/``shed``) is durably appended
  to a :class:`~repro.serving.journal.JobJournal` *before* the next
  step proceeds, keyed by the job's content-address.
  :meth:`ServingCluster.recover` folds the journal back and resubmits
  every accepted-but-unterminated job, so a front-door crash loses no
  accepted job: each reaches exactly one terminal response, with
  already-computed work deduplicated through the shared store (replay
  is a cache hit, not a recomputation).
* **Shard supervisor** — with ``supervise=True`` the health pass
  consults a :class:`~repro.serving.supervisor.ShardSupervisor`:
  a dead shard is respawned under seeded exponential backoff and a
  per-shard restart budget, rejoined to the ring, and (process mode)
  warmed from the shared store tier; ``repro_cluster_respawn_total``
  and the ``repro_cluster_restart_state`` gauge track it.
* **Seeded cluster chaos** — a
  :class:`~repro.faults.plan.ClusterFaultPlan` injects shard
  kills/stalls, dispatch drops/delays, poison jobs and a
  front-door crash-at-record-k, every decision a pure SHA-256
  function of the submission index — a chaos soak replays
  byte-identically under the same seed.

Clients should not call this class directly for request/response work
— :class:`~repro.serving.client.ServingClient` wraps either a cluster
or a single service behind one typed API.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import tempfile
import threading
import time
from typing import Any, Callable, Mapping

from repro.experiments.spec import SpecPoint
from repro.faults.plan import ClusterFaultPlan
from repro.observability.metrics import METRICS
from repro.observability.slo import SLOTarget, SLOTracker
from repro.observability.tracing import (
    ROOT_SPAN,
    SpanRecord,
    TraceLog,
    derive_span_id,
    root_context,
    write_cluster_trace,
)
from repro.serving.api import (
    FAILED,
    SHED,
    Job,
    ServiceResponse,
    job_from_wire,
    job_to_wire,
    response_from_wire,
    response_to_wire,
)
from repro.serving.clock import MONOTONIC, Clock, ManualClock
from repro.serving.journal import JobJournal, replay_journal
from repro.serving.ring import HashRing
from repro.serving.service import FactorizationService, _validate_job_point
from repro.serving.store import SharedResultStore
from repro.serving.supervisor import (
    DECIDE_RESPAWN,
    DECIDE_WAIT,
    STATE_GAUGE,
    ShardSupervisor,
)
from repro.serving.telemetry import ClusterTelemetry, TelemetryBus, make_event
from repro.util.serialization import atomic_write_json

#: Process label for front-door span records and telemetry events.
FRONTDOOR = "frontdoor"

INLINE = "inline"
PROCESS = "process"

#: Breaker states considered "hard open" (cooldown still running).
_OPEN = "open"


class ClusterTicket:
    """Front-door handle for one job: await its terminal response.

    Mirrors :class:`~repro.serving.api.JobTicket`'s interface but
    resolves idempotently: a job that was resubmitted after a shard
    death may, in pathological timing, produce two answers — the first
    wins and the duplicate is counted, never raised.
    """

    def __init__(self, job: Job) -> None:
        self.job = job
        self._event = threading.Event()
        self._response: "ServiceResponse | None" = None
        self._callbacks: "list[Callable[[ServiceResponse], None]]" = []
        self._lock = threading.Lock()

    @property
    def job_id(self) -> str:
        return self.job.job_id

    def done(self) -> bool:
        """Has the job reached a terminal state?"""
        return self._event.is_set()

    def add_done_callback(self, fn: "Callable[[ServiceResponse], None]") -> None:
        """Run ``fn(response)`` at resolution (immediately if resolved)."""
        with self._lock:
            if self._response is None:
                self._callbacks.append(fn)
                return
            response = self._response
        fn(response)

    def resolve_once(self, response: ServiceResponse) -> bool:
        """First resolution wins; returns False for a duplicate."""
        with self._lock:
            if self._event.is_set():
                return False
            self._response = response
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(response)
        return True

    def result(self, timeout: "float | None" = None) -> ServiceResponse:
        """Block until terminal; raises ``TimeoutError`` on timeout."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(f"{self.job_id} not terminal within {timeout}s")
        assert self._response is not None
        return self._response


class _Tracked:
    """Cluster-side record of one in-flight job (assignment + ticket)."""

    __slots__ = ("job", "ticket", "shard", "t_submit", "index")

    def __init__(
        self,
        job: Job,
        ticket: ClusterTicket,
        shard: str,
        t_submit: float = 0.0,
        index: int = 0,
    ) -> None:
        self.job = job
        self.ticket = ticket
        self.shard = shard
        #: Front-door clock reading at submission — the origin of the
        #: client-observed latency window the root span covers.
        self.t_submit = t_submit
        #: Submission index — the chaos plan's decision key, kept so
        #: redelivery draws after a resubmission stay deterministic.
        self.index = index


class InlineShard:
    """An in-process shard: a ``workers=0`` service pumped by the cluster."""

    def __init__(self, name: str, service: FactorizationService, view) -> None:
        self.name = name
        self.service = service
        self.view = view
        self.alive = True

    def submit(self, job: Job, done_cb) -> None:
        """Admit one job; ``done_cb`` fires at its terminal response."""
        ticket = self.service.submit(job)
        ticket.add_done_callback(done_cb)

    def pump(self, max_jobs: "int | None" = None) -> int:
        """Run queued jobs on the calling thread; dead shards run nothing."""
        if not self.alive:
            return 0
        return self.service.run_pending(max_jobs)

    def health(self, timeout: float = 0.0) -> dict:
        """The shard's liveness snapshot plus its store-tier stats."""
        h = self.service.health()
        h["reachable"] = self.alive
        h["store"] = self.view.stats()
        return h

    def kill(self) -> None:
        """Simulated crash: stop executing; queued work is stranded."""
        self.alive = False

    def stall(self, seconds: float) -> bool:
        """No-op: inline shards have no heartbeats to suppress."""
        return False

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown of the underlying service."""
        self.service.stop(timeout=timeout)


def _shed_response(job: Job, reason: str, detail: "dict | None" = None) -> ServiceResponse:
    """A front-door shed: nothing ran, structured reason attached."""
    return ServiceResponse(
        job_id=job.job_id,
        status=SHED,
        reason=reason,
        detail=dict(detail or {}),
        priority=job.priority,
    )


def _shard_process_main(conn, name: str, config: dict) -> None:
    """Entry point of one shard process (``mode="process"``).

    Builds a :class:`FactorizationService` over a view of the shared
    store, then serves ops from the duplex pipe: ``submit`` (job wire
    in, ``result`` wire out at terminal), ``health`` (snapshot RPC),
    ``stop`` (graceful shutdown: queued jobs shed, results flushed,
    then ``bye``).  A daemon heartbeat thread emits liveness pings and
    — when ``health_dir`` is set — writes the shard's health snapshot
    crash-safely via :func:`atomic_write_json`, so an external reader
    (or the parent after a crash) never sees a torn snapshot.
    """
    from repro.util.validation import ValidationError

    store = SharedResultStore(
        config["store_dir"],
        version=config.get("store_version"),
        memory_capacity=config.get("memory_capacity", 512),
    )
    view = store.view(name)
    budget_wire = config.get("default_budget")
    from repro.serving.budget import Budget

    bus: "TelemetryBus | None" = (
        TelemetryBus(name) if config.get("telemetry") else None
    )
    if bus is not None:
        view.on_lookup = lambda tier: bus.emit(
            "store", time.monotonic(), {"tier": tier}
        )

    svc = FactorizationService(
        workers=config.get("workers", 2),
        queue_capacity=config.get("queue_capacity", 64),
        retries=config.get("retries", 1),
        breaker_threshold=config.get("breaker_threshold", 3),
        breaker_cooldown=config.get("breaker_cooldown", 30.0),
        half_open_probes=config.get("half_open_probes", 1),
        canary_n=config.get("canary_n", 16),
        default_budget=(
            None if budget_wire is None else Budget.from_dict(budget_wire)
        ),
        cache=view,
        name=name,
        on_event=(
            None
            if bus is None
            else lambda kind, t, attrs: bus.emit(kind, t, attrs)
        ),
    )
    send_lock = threading.Lock()

    def send(msg: dict) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (OSError, BrokenPipeError):
                pass  # parent is gone; we are about to exit anyway

    def flush_telemetry() -> None:
        # batched, not per-event: events ride the pipe piggybacked on
        # result sends and heartbeat ticks, never one message each
        if bus is not None:
            events = bus.drain_wire()
            if events:
                send({"op": "telemetry", "events": events})

    health_dir = config.get("health_dir")
    hb_interval = float(config.get("heartbeat_interval", 1.0))
    stopping = threading.Event()
    #: Chaos: monotonic instant until which heartbeats are suppressed
    #: (the shard keeps working — it just goes silent; the parent's
    #: staleness/debounce/supervisor path is what's under test).
    stall_until = [0.0]

    def snapshot() -> dict:
        h = svc.health()
        h["reachable"] = True
        h["store"] = view.stats()
        return {
            "shard": name,
            "ready": svc.readiness(),
            "health": h,
            "written_at": time.time(),
        }

    def heartbeat_loop() -> None:
        while not stopping.wait(hb_interval):
            if time.monotonic() < stall_until[0]:
                continue  # injected stall: stay alive but go silent
            if bus is not None:
                bus.emit("heartbeat", time.monotonic(), {})
            send({"op": "heartbeat"})
            flush_telemetry()
            if health_dir:
                # the crash-safe write is the point: a reader (or the
                # parent post-mortem) must never see a torn snapshot
                atomic_write_json(
                    os.path.join(health_dir, f"{name}.json"),
                    snapshot(),
                    indent=1,
                    sort_keys=True,
                )

    threading.Thread(target=heartbeat_loop, daemon=True).start()
    send({"op": "ready"})

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "submit":
                job = job_from_wire(msg["job"])

                def on_done(r: ServiceResponse, jid=job.job_id) -> None:
                    send({
                        "op": "result",
                        "job_id": jid,
                        "response": response_to_wire(r),
                    })
                    flush_telemetry()

                try:
                    ticket = svc.submit(job)
                except ValidationError as exc:
                    on_done(
                        ServiceResponse(
                            job_id=job.job_id,
                            status=FAILED,
                            reason="invalid-point",
                            detail={"error": f"{type(exc).__name__}: {exc}"},
                            priority=job.priority,
                        )
                    )
                else:
                    ticket.add_done_callback(on_done)
            elif op == "health":
                send({
                    "op": "health",
                    "seq": msg.get("seq"),
                    "payload": snapshot()["health"],
                })
            elif op == "warm":
                # supervisor respawn: promote recently served entries
                # from the shared disk tier into this (fresh) shard's
                # memory tier before traffic lands on it
                warmed = 0
                for pd in msg.get("points") or []:
                    try:
                        if view.get(SpecPoint.from_dict(pd)) is not None:
                            warmed += 1
                    except Exception:  # noqa: BLE001 - warming is best-effort
                        pass
                if bus is not None:
                    bus.emit("warm", time.monotonic(), {"count": warmed})
            elif op == "stall":
                stall_until[0] = time.monotonic() + float(
                    msg.get("seconds", 0.0)
                )
            elif op == "stop":
                break
    finally:
        stopping.set()
        svc.stop()  # sheds the backlog; callbacks flush results out
        flush_telemetry()
        if health_dir:
            atomic_write_json(
                os.path.join(health_dir, f"{name}.json"),
                snapshot(),
                indent=1,
                sort_keys=True,
            )
        send({"op": "bye"})
        conn.close()


class ProcessShard:
    """Parent-side handle on one shard process (pipe + reader thread)."""

    def __init__(self, name: str, ctx, config: dict) -> None:
        self.name = name
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_process_main,
            args=(child_conn, name, config),
            name=f"repro-shard-{name}",
            daemon=True,
        )
        self._child_conn = child_conn
        self._send_lock = threading.Lock()
        self._pending: "dict[str, Callable[[ServiceResponse], None]]" = {}
        self._pending_lock = threading.Lock()
        self._ready = threading.Event()
        self._bye = threading.Event()
        self._health_seq = 0
        self._health_payload: "dict | None" = None
        self._health_event = threading.Event()
        self.last_heartbeat = MONOTONIC()
        self.alive = False
        self.on_down: "Callable[[ProcessShard], None] | None" = None
        #: Sink for batched telemetry events (wire dicts) off the pipe.
        self.on_telemetry: "Callable[[list], None] | None" = None

    def launch(self) -> None:
        """Spawn the process and its reader; ``wait_ready`` completes it."""
        self.process.start()
        self._child_conn.close()
        self.alive = True
        threading.Thread(
            target=self._reader, name=f"repro-shard-{self.name}-rx", daemon=True
        ).start()

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until the child's ``ready`` handshake arrives."""
        if not self._ready.wait(timeout=timeout):
            raise TimeoutError(f"shard {self.name} did not come up")
        self.last_heartbeat = MONOTONIC()

    def _send(self, msg: dict) -> bool:
        with self._send_lock:
            try:
                self._conn.send(msg)
                return True
            except (OSError, BrokenPipeError):
                return False

    def _reader(self) -> None:
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "result":
                with self._pending_lock:
                    cb = self._pending.pop(msg["job_id"], None)
                if cb is not None:
                    cb(response_from_wire(msg["response"]))
            elif op == "heartbeat":
                self.last_heartbeat = MONOTONIC()
            elif op == "telemetry":
                if self.on_telemetry is not None:
                    self.on_telemetry(msg.get("events") or [])
            elif op == "ready":
                self._ready.set()
            elif op == "health":
                self._health_payload = msg.get("payload")
                self._health_event.set()
            elif op == "bye":
                self._bye.set()
        was_alive, self.alive = self.alive, False
        self._health_event.set()  # unblock any waiting health RPC
        if was_alive and not self._bye.is_set() and self.on_down is not None:
            self.on_down(self)

    def submit(self, job: Job, done_cb) -> None:
        """Ship one job over the pipe; ``done_cb`` fires on its result."""
        with self._pending_lock:
            self._pending[job.job_id] = done_cb
        if not self._send({"op": "submit", "job": job_to_wire(job)}):
            with self._pending_lock:
                self._pending.pop(job.job_id, None)
            raise BrokenPipeError(f"shard {self.name} is unreachable")

    def pump(self, max_jobs: "int | None" = None) -> int:
        """No-op: a process shard's workers drain its queue themselves."""
        return 0

    def health(self, timeout: float = 5.0) -> dict:
        """RPC the shard's snapshot; unreachable shards report as such."""
        if not self.alive:
            return {"reachable": False}
        self._health_event.clear()
        self._health_seq += 1
        if not self._send({"op": "health", "seq": self._health_seq}):
            return {"reachable": False}
        if not self._health_event.wait(timeout=timeout) or not self.alive:
            return {"reachable": False}
        payload = self._health_payload or {}
        payload.setdefault("reachable", True)
        return payload

    def pending_count(self) -> int:
        """Jobs shipped to this shard that have not answered yet."""
        with self._pending_lock:
            return len(self._pending)

    def kill(self) -> None:
        """Hard-kill the shard process (chaos / soak testing)."""
        if self.process.is_alive():
            self.process.terminate()

    def stall(self, seconds: float) -> bool:
        """Chaos: suppress the shard's heartbeats for ``seconds``."""
        return self._send({"op": "stall", "seconds": float(seconds)})

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain the shed responses, then join."""
        if self.alive:
            self._send({"op": "stop"})
            self._bye.wait(timeout=timeout)
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.alive = False


class ServingCluster:
    """N independent factorization shards behind one consistent-hash door.

    Parameters
    ----------
    shards:
        Shard count (or pass explicit ``shard_names``).
    mode:
        ``"process"`` (default) spawns one OS process per shard;
        ``"inline"`` builds deterministic in-process shards pumped by
        :meth:`run_pending` on a virtual clock.
    workers_per_shard / queue_capacity / retries / breaker_* / canary_n
    / default_budget:
        Per-shard :class:`FactorizationService` configuration (inline
        shards always run ``workers=0``).
    store / store_dir / memory_capacity:
        The shared result store (an instance, or a directory to build
        one in; default a fresh temp directory cleaned up at
        :meth:`stop`).
    replicas / spill_depth:
        Ring geometry, and the bounded-load threshold: when the
        owner's outstanding backlog reaches ``spill_depth`` and its
        second choice is shallower, the job spills there (``None``
        disables spill — strict affinity).
    clock:
        Front-door time source; defaults to a fresh
        :class:`ManualClock` in inline mode and the monotonic clock in
        process mode.
    heartbeat_interval / heartbeat_timeout / monitor_interval:
        Process-mode liveness: shards ping every ``interval`` seconds;
        a shard silent for ``timeout`` seconds is treated as dead.
        ``monitor_interval`` starts a background thread calling
        :meth:`check_shards`; ``None`` leaves checks to the caller.
    rebalance_debounce:
        Grace window (seconds) a heartbeat-stale shard gets before
        eviction: staleness must *persist* that long across health
        passes.  A slow-but-alive shard (GC pause, CPU contention)
        that resumes heartbeating inside the window is never evicted.
        Default 0.0 — evict on first stale observation (the PR 6
        behavior).
    journal_dir / journal_sync / journal_crash_mode:
        When ``journal_dir`` is set, the front door write-ahead
        journals every accepted/assigned/terminal transition there
        (see :mod:`repro.serving.journal`); :meth:`recover` replays
        it after a crash.  ``journal_sync=False`` trades the fsync
        per record for speed; ``journal_crash_mode`` selects how an
        armed ``crash_at_record`` chaos fault dies (``"raise"`` /
        ``"exit"``).  Off (``None``) by default — zero cost, responses
        byte-identical to the unjournaled cluster.
    chaos:
        A seeded :class:`~repro.faults.plan.ClusterFaultPlan`; every
        injection decision is a pure function of the submission index
        (shard kills/stalls, dispatch drops/delays, poison jobs,
        front-door crash-at-record-k).  ``None`` (default) injects
        nothing and costs nothing.
    supervise / supervisor / restart_budget / restart_backoff_base /
    restart_backoff_cap / supervisor_seed:
        ``supervise=True`` (or an explicit ``supervisor``) makes
        :meth:`check_shards` respawn dead shards under the
        :class:`~repro.serving.supervisor.ShardSupervisor` policy:
        seeded exponential backoff between attempts, at most
        ``restart_budget`` respawns per shard, ring rejoin + shared
        store warm-up on success.  Off by default.
    health_dir:
        When set (process mode), every shard writes its health
        snapshot there crash-safely on each heartbeat.
    tracing:
        When true, the front door mints a trace context for every job
        (from its spec cache key), shards record their stages under
        it, and each terminal response carries the merged
        cross-process span tree (kept for :meth:`write_trace`).  Off
        by default: payloads stay byte-identical to the untraced
        schema.
    telemetry:
        When true, shards emit structured events (queue waits, sheds,
        breaker transitions, store tiers, retries, heartbeats) to a
        central :class:`~repro.serving.telemetry.ClusterTelemetry`
        aggregator — over the pipes in process mode, synchronously in
        inline mode — published with per-shard labels.
    slo_target:
        Declared :class:`~repro.observability.slo.SLOTarget` the
        always-on :class:`~repro.observability.slo.SLOTracker`
        accounts terminal responses against (default objective:
        99.9% availability, no latency clause).
    """

    def __init__(
        self,
        *,
        shards: int = 3,
        mode: str = PROCESS,
        workers_per_shard: int = 2,
        queue_capacity: int = 64,
        retries: int = 1,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        half_open_probes: int = 1,
        canary_n: int = 16,
        default_budget=None,
        store: "SharedResultStore | None" = None,
        store_dir: "str | None" = None,
        memory_capacity: int = 512,
        replicas: int = 64,
        spill_depth: "int | None" = None,
        clock: "Clock | None" = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        monitor_interval: "float | None" = None,
        rebalance_debounce: float = 0.0,
        health_dir: "str | None" = None,
        shard_names: "list[str] | None" = None,
        tracing: bool = False,
        telemetry: bool = False,
        slo_target: "SLOTarget | None" = None,
        journal_dir: "str | None" = None,
        journal_sync: bool = True,
        journal_crash_mode: str = "raise",
        chaos: "ClusterFaultPlan | None" = None,
        supervise: bool = False,
        supervisor: "ShardSupervisor | None" = None,
        restart_budget: int = 3,
        restart_backoff_base: float = 0.1,
        restart_backoff_cap: float = 5.0,
        supervisor_seed: int = 0,
    ) -> None:
        if mode not in (INLINE, PROCESS):
            raise ValueError(f"mode must be 'inline' or 'process', got {mode!r}")
        names = list(shard_names or [])
        if not names:
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            names = [f"shard-{i}" for i in range(int(shards))]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        self.mode = mode
        self.spill_depth = spill_depth
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.rebalance_debounce = float(rebalance_debounce)
        self._clock: Clock = clock or (ManualClock() if mode == INLINE else MONOTONIC)
        self.tracing = bool(tracing)
        self.telemetry: "ClusterTelemetry | None" = (
            ClusterTelemetry() if telemetry else None
        )
        self.slo = SLOTracker(slo_target)
        self._chaos = chaos if (chaos is not None and not chaos.is_empty()) else None
        self._journal: "JobJournal | None" = None
        if journal_dir is not None:
            self._journal = JobJournal(
                journal_dir,
                clock=self._clock,
                sync=journal_sync,
                crash_at_record=(
                    self._chaos.crash_at_record if self._chaos else None
                ),
                crash_mode=journal_crash_mode,
            )
        self._supervisor: "ShardSupervisor | None" = supervisor
        if self._supervisor is None and supervise:
            self._supervisor = ShardSupervisor(
                seed=supervisor_seed,
                restart_budget=restart_budget,
                backoff_base=restart_backoff_base,
                backoff_cap=restart_backoff_cap,
            )
        #: shard name -> first time its heartbeat was observed stale
        #: (the rebalance-debounce state machine; see check_shards).
        self._stale_since: "dict[str, float]" = {}
        #: monotone submission counter — the chaos plan's decision index.
        self._submit_index = 0
        #: recently resolved points, newest last (respawn warm-up set).
        self._recent_points: "list[SpecPoint]" = []
        self._recent_points_cap = 64
        #: tickets :meth:`recover` resubmitted from the journal.
        self.recovered: "tuple[ClusterTicket, ...]" = ()
        #: job_id -> merged span records of resolved traced jobs
        #: (bounded; oldest evicted first — insertion order).
        self._traces: "dict[str, tuple[SpanRecord, ...]]" = {}
        self._trace_capacity = 4096
        self._owns_store_dir: "str | None" = None
        if store is None:
            directory = store_dir
            if directory is None:
                directory = tempfile.mkdtemp(prefix="repro-cluster-store-")
                self._owns_store_dir = directory
            store = SharedResultStore(directory, memory_capacity=memory_capacity)
        self.store = store
        self.health_dir = health_dir
        if health_dir:
            os.makedirs(health_dir, exist_ok=True)

        self._lock = threading.Lock()
        self._inflight: "dict[str, _Tracked]" = {}
        self._outstanding: "dict[str, int]" = {name: 0 for name in names}
        self._assignment_log: "list[tuple[str, str]]" = []
        self._status_counts: "dict[str, int]" = {}
        self._rebalances = 0
        self._resubmitted = 0
        self._closed = False
        self.ring = HashRing(names, replicas=replicas)

        # Shard construction configs are stashed so the supervisor can
        # rebuild a shard from scratch on respawn (both modes).
        self._service_config = {
            "queue_capacity": queue_capacity,
            "retries": retries,
            "breaker_threshold": breaker_threshold,
            "breaker_cooldown": breaker_cooldown,
            "half_open_probes": half_open_probes,
            "canary_n": canary_n,
            "default_budget": default_budget,
        }
        self._ctx = None
        self._shard_config: "dict | None" = None
        self.shards: "dict[str, InlineShard | ProcessShard]" = {}
        if mode == INLINE:
            for name in names:
                self.shards[name] = self._make_inline_shard(name)
        else:
            self._ctx = multiprocessing.get_context("spawn")
            self._shard_config = {
                "store_dir": self.store.directory,
                "store_version": self.store.cache.version,
                "memory_capacity": memory_capacity,
                "workers": workers_per_shard,
                "queue_capacity": queue_capacity,
                "retries": retries,
                "breaker_threshold": breaker_threshold,
                "breaker_cooldown": breaker_cooldown,
                "half_open_probes": half_open_probes,
                "canary_n": canary_n,
                "default_budget": (
                    None if default_budget is None else default_budget.to_dict()
                ),
                "heartbeat_interval": heartbeat_interval,
                "health_dir": health_dir,
                "telemetry": self.telemetry is not None,
            }
            for name in names:
                self.shards[name] = self._make_process_shard(name)
            for shard in self.shards.values():
                shard.launch()
            deadline = MONOTONIC() + 120.0
            for shard in self.shards.values():
                shard.wait_ready(timeout=max(0.1, deadline - MONOTONIC()))

        self._monitor_stop = threading.Event()
        self._monitor: "threading.Thread | None" = None
        if monitor_interval is not None and mode == PROCESS:
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                args=(float(monitor_interval),),
                name="repro-cluster-monitor",
                daemon=True,
            )
            self._monitor.start()

    # -- shard construction ------------------------------------------------

    def _make_inline_shard(self, name: str) -> InlineShard:
        view = self.store.view(name)
        on_event = None
        if self.telemetry is not None:
            # inline shards feed the aggregator synchronously, stamped
            # with the shard's name (same event shape the pipe batches
            # carry in process mode)
            def on_event(kind, t, attrs, _shard=name):
                self.telemetry.ingest(make_event(kind, _shard, t, attrs))

            def on_lookup(tier, _shard=name):
                self.telemetry.ingest(
                    make_event("store", _shard, self._clock(), {"tier": tier})
                )

            view.on_lookup = on_lookup
        svc = FactorizationService(
            workers=0,
            cache=view,
            clock=self._clock,
            name=name,
            on_event=on_event,
            **self._service_config,
        )
        return InlineShard(name, svc, view)

    def _make_process_shard(self, name: str) -> "ProcessShard":
        shard = ProcessShard(name, self._ctx, self._shard_config)
        shard.on_down = self._on_shard_down
        if self.telemetry is not None:
            shard.on_telemetry = self.telemetry.ingest_wire
        return shard

    # -- routing -----------------------------------------------------------

    @property
    def clock(self) -> Clock:
        """The front door's time source (a ManualClock in inline mode)."""
        return self._clock

    @property
    def needs_pump(self) -> bool:
        """True when the caller must drive :meth:`run_pending` (inline)."""
        return self.mode == INLINE

    @property
    def assignments(self) -> "tuple[tuple[str, str], ...]":
        """``(job_id, shard)`` pairs in submission order (determinism)."""
        with self._lock:
            return tuple(self._assignment_log)

    def route_key(self, point: SpecPoint) -> str:
        """The ring key for a point: its content hash (cache key core)."""
        return point.key()

    def _pick_shard(self, key: str) -> "str | None":
        """The owner, or its second choice under bounded-load spill."""
        candidates = self.ring.nodes_for(key, 2 if self.spill_depth else 1)
        candidates = [c for c in candidates if self.shards[c].alive]
        if not candidates:
            return None
        owner = candidates[0]
        if (
            self.spill_depth is not None
            and len(candidates) > 1
            and self._outstanding.get(owner, 0) >= self.spill_depth
            and self._outstanding.get(candidates[1], 0)
            < self._outstanding.get(owner, 0)
        ):
            METRICS.counter("repro_cluster_spills_total").inc()
            return candidates[1]
        return owner

    def submit(
        self, job: "Job | SpecPoint | Mapping", *, _recovered: bool = False
    ) -> ClusterTicket:
        """Route one job to its shard; returns the front-door ticket.

        Accepts the same shapes as ``FactorizationService.submit``: a
        :class:`Job`, a bare :class:`SpecPoint`, or a job wire
        document.  Structural validation happens here — before
        anything crosses a pipe.  With no routable shard (empty ring,
        shutdown) the ticket resolves immediately with a structured
        shed response; nothing hangs.

        With a journal attached the job's wire document is durably
        appended *before* routing (the write-ahead contract); with a
        chaos plan attached, this submission's seeded injections
        (shard kill/stall, poison) fire first.
        """
        if isinstance(job, SpecPoint):
            job = Job(point=job)
        elif isinstance(job, Mapping):
            job = job_from_wire(job)
        _validate_job_point(job.point)
        with self._lock:
            index = self._submit_index
            self._submit_index += 1
        if self._chaos is not None:
            job = self._inject_chaos(index, job)
        # The front door is the client-facing boundary, so it mints the
        # trace context (deterministically, from the spec cache key)
        # and owns the root span: opened here, closed at resolution.
        if self.tracing and job.trace is None:
            job.trace = root_context(job.point.key())
        key = self.route_key(job.point)
        if self._journal is not None:
            # the WAL write: from here on, a crashed front door will
            # resubmit this job on recovery unless a terminal record
            # also made it to disk
            self._journal.record_accepted(job, key, recovered=_recovered)
        t_submit = self._clock()
        ticket = ClusterTicket(job)
        with self._lock:
            if self._closed:
                shard_name = None
                reason = "shutdown"
            else:
                shard_name = self._pick_shard(key)
                reason = "no-shards"
            if shard_name is not None:
                self._inflight[job.job_id] = _Tracked(
                    job, ticket, shard_name, t_submit, index
                )
                self._outstanding[shard_name] = (
                    self._outstanding.get(shard_name, 0) + 1
                )
                self._assignment_log.append((job.job_id, shard_name))
        if shard_name is None:
            METRICS.counter("repro_cluster_shed_total", reason=reason).inc()
            self._finish(ticket, _shed_response(
                job, reason, {"ring": self.ring.snapshot()}
            ))
            return ticket
        if self._journal is not None:
            self._journal.record_assigned(job.job_id, key, shard_name)
        self._publish_depth(shard_name)
        self._dispatch(shard_name, job, index)
        return ticket

    def _inject_chaos(self, index: int, job: Job) -> Job:
        """Fire this submission's seeded cluster faults; returns the job
        (point wrapped in a fatal fault plan if the draw poisons it)."""
        chaos = self._chaos
        key = job.point.key()
        with self._lock:
            live = [
                n
                for n, s in self.shards.items()
                if s.alive and n in self.ring
            ]
        victim = chaos.kill_target(index, live)
        if victim is not None:
            METRICS.counter("repro_cluster_chaos_total", kind="kill").inc()
            self.kill_shard(victim)
        target = chaos.stall_target(index, live)
        if target is not None:
            shard = self.shards.get(target)
            if (
                shard is not None
                and shard.alive
                and shard.stall(chaos.stall_seconds)
            ):
                METRICS.counter("repro_cluster_chaos_total", kind="stall").inc()
        if chaos.poisons(index, key):
            METRICS.counter("repro_cluster_chaos_total", kind="poison").inc()
            plan = chaos.poison_plan(index, key)
            job.point = dataclasses.replace(job.point, faults=plan.freeze())
        return job

    def _dispatch(self, shard_name: str, job: Job, index: int = 0) -> None:
        shard = self.shards[shard_name]
        if self._chaos is not None:
            key = job.point.key()
            attempt = 0
            while self._chaos.drops_dispatch(index, key, attempt):
                # the pipe ate the submit; the front door redelivers
                # (draws are per-attempt, so the loop terminates)
                attempt += 1
                METRICS.counter(
                    "repro_cluster_pipe_drops_total", shard=shard_name
                ).inc()
            delay = self._chaos.dispatch_delay(index, key)
            if delay:
                if isinstance(self._clock, ManualClock):
                    self._clock.advance(delay)
                else:
                    time.sleep(delay)

        def on_done(response: ServiceResponse, jid=job.job_id) -> None:
            self._on_result(jid, response)

        try:
            shard.submit(job, on_done)
        except (BrokenPipeError, OSError):
            # the shard died between routing and send: the reader's
            # death path will (or already did) resubmit; make sure
            self._on_shard_down(shard)

    def _on_result(self, job_id: str, response: ServiceResponse) -> None:
        now = self._clock()
        with self._lock:
            tracked = self._inflight.pop(job_id, None)
            if tracked is not None:
                self._outstanding[tracked.shard] = max(
                    0, self._outstanding.get(tracked.shard, 0) - 1
                )
                self._status_counts[response.status] = (
                    self._status_counts.get(response.status, 0) + 1
                )
        if tracked is None:
            METRICS.counter("repro_cluster_duplicate_results_total").inc()
            return
        METRICS.counter(
            "repro_cluster_jobs_total",
            shard=tracked.shard,
            status=response.status,
        ).inc()
        self.slo.record(
            tracked.job.point.algorithm,
            response.status,
            max(0.0, now - tracked.t_submit),
        )
        if tracked.job.trace is not None:
            response = self._merge_trace(tracked, response, now)
            self._store_trace(job_id, response.trace)
        self._publish_depth(tracked.shard)
        delivered = tracked.ticket.resolve_once(response)
        if delivered and self._journal is not None:
            # terminal record strictly *after* delivery: a crash in the
            # gap resubmits the job on recovery, deduplicated by its
            # content-address — at-least-once inside, exactly one
            # terminal response outside
            self._journal.record_terminal(
                job_id,
                tracked.job.point.key(),
                response.status,
                reason=response.reason,
            )
        if self._supervisor is not None and response.status not in (FAILED, SHED):
            self._note_recent_point(tracked.job.point)

    def _note_recent_point(self, point: SpecPoint) -> None:
        """Remember a served point for the respawn warm-up set."""
        with self._lock:
            self._recent_points.append(point)
            excess = len(self._recent_points) - self._recent_points_cap
            if excess > 0:
                del self._recent_points[:excess]

    def _merge_trace(
        self, tracked: _Tracked, response: ServiceResponse, now: float
    ) -> ServiceResponse:
        """Graft the shard's span records under the front door's root.

        The root span covers exactly the client-observed window
        (front-door submit → resolution); a zero-width ``route`` child
        pins which shard served the job (a volatile attr, excluded
        from the canonical form).  In process mode the shard's records
        are on the *child's* clock — they are re-based so the shard's
        first stage starts at the front-door submit instant, which is
        exact in inline mode (shared clock, delta 0) and off by only
        the pipe transit in process mode.
        """
        ctx = tracked.job.trace
        shard_records = list(response.trace or ())
        if shard_records:
            base = min(r.t_start for r in shard_records)
            delta = tracked.t_submit - base
            if delta:
                shard_records = [
                    dataclasses.replace(
                        r, t_start=r.t_start + delta, t_end=r.t_end + delta
                    )
                    for r in shard_records
                ]
        m = response.measurement
        root = SpanRecord(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_span_id=None,
            name=ROOT_SPAN,
            process=FRONTDOOR,
            t_start=tracked.t_submit,
            t_end=now,
            status=response.status,
            words=0 if m is None else int(m.words),
            messages=0 if m is None else int(m.messages),
            flops=0 if m is None else int(m.flops),
            attrs=(
                ("algorithm", tracked.job.point.algorithm),
                ("job_id", tracked.job.job_id),
            ),
        )
        route = SpanRecord(
            trace_id=ctx.trace_id,
            span_id=derive_span_id(ctx.trace_id, ctx.span_id, "route", 0),
            parent_span_id=ctx.span_id,
            name="route",
            process=FRONTDOOR,
            t_start=tracked.t_submit,
            t_end=tracked.t_submit,
            attrs=(("shard", tracked.shard),),
        )
        # the tail of the window the shard's stages don't explain —
        # response pipe transit plus front-door merge (zero-width under
        # the inline shared clock); with it, the recorded stages tile
        # the client-observed window completely.
        shard_end = (
            max(r.t_end for r in shard_records)
            if shard_records
            else tracked.t_submit
        )
        resolve = SpanRecord(
            trace_id=ctx.trace_id,
            span_id=derive_span_id(ctx.trace_id, ctx.span_id, "resolve", 0),
            parent_span_id=ctx.span_id,
            name="resolve",
            process=FRONTDOOR,
            t_start=min(shard_end, now),
            t_end=now,
        )
        return dataclasses.replace(
            response, trace=tuple([root, route] + shard_records + [resolve])
        )

    def _store_trace(self, job_id: str, records) -> None:
        with self._lock:
            self._traces[job_id] = tuple(records)
            while len(self._traces) > self._trace_capacity:
                self._traces.pop(next(iter(self._traces)))

    def _finish(self, ticket: ClusterTicket, response: ServiceResponse) -> None:
        """Resolve a job the front door itself terminates (sheds).

        Nothing crossed a pipe, so the whole trace — root plus an
        ``admission`` leaf — is front-door-local and zero-counter.
        """
        job = ticket.job
        now = self._clock()
        if job.trace is not None and response.trace is None:
            log = TraceLog(
                job.trace, process=FRONTDOOR, minted_root=True, start=now
            )
            log.add(
                "admission", now, status=response.status, reason=response.reason
            )
            log.close_root(
                now,
                t_start=now,
                status=response.status,
                algorithm=job.point.algorithm,
                job_id=job.job_id,
            )
            response = dataclasses.replace(response, trace=log.records())
            self._store_trace(job.job_id, response.trace)
        self.slo.record(job.point.algorithm, response.status, 0.0)
        if self.telemetry is not None:
            self.telemetry.ingest(
                make_event(
                    "shed", FRONTDOOR, now, {"reason": response.reason}
                )
            )
        with self._lock:
            self._status_counts[response.status] = (
                self._status_counts.get(response.status, 0) + 1
            )
        if ticket.resolve_once(response) and self._journal is not None:
            self._journal.record_terminal(
                job.job_id,
                job.point.key(),
                response.status,
                reason=response.reason,
            )

    def _publish_depth(self, shard_name: str) -> None:
        with self._lock:
            depth = self._outstanding.get(shard_name, 0)
        METRICS.gauge(
            "repro_cluster_shard_depth", shard=shard_name
        ).set(depth)

    # -- rebalancing -------------------------------------------------------

    def _remove_from_ring(self, name: str) -> bool:
        removed = self.ring.remove(name)
        if removed:
            self._rebalances += 1
            METRICS.counter(
                "repro_cluster_ring_rebalances_total", direction="remove"
            ).inc()
        return removed

    def _on_shard_down(self, shard) -> None:
        """Death path: de-ring the shard, resubmit its in-flight jobs."""
        shard.alive = False
        with self._lock:
            self._remove_from_ring(shard.name)
            victims = [
                t for t in self._inflight.values() if t.shard == shard.name
            ]
            self._outstanding[shard.name] = 0
        for tracked in victims:
            self._resubmit(tracked)

    def _resubmit(self, tracked: _Tracked) -> None:
        with self._lock:
            if tracked.ticket.done():
                return
            new_shard = self._pick_shard(self.route_key(tracked.job.point))
            if new_shard is not None:
                old = tracked.shard
                tracked.shard = new_shard
                self._outstanding[new_shard] = (
                    self._outstanding.get(new_shard, 0) + 1
                )
                self._resubmitted += 1
        if new_shard is None:
            self._inflight.pop(tracked.job.job_id, None)
            self._finish(
                tracked.ticket,
                _shed_response(
                    tracked.job, "no-shards", {"ring": self.ring.snapshot()}
                ),
            )
            return
        METRICS.counter(
            "repro_cluster_resubmitted_jobs_total", from_shard=old
        ).inc()
        if self._journal is not None:
            self._journal.record_assigned(
                tracked.job.job_id,
                self.route_key(tracked.job.point),
                new_shard,
            )
        self._publish_depth(new_shard)
        self._dispatch(new_shard, tracked.job, tracked.index)

    def kill_shard(self, name: str) -> None:
        """Chaos hook: hard-kill one shard and run the death path now."""
        shard = self.shards[name]
        shard.kill()
        self._on_shard_down(shard)

    def stall_shard(self, name: str, seconds: float) -> bool:
        """Chaos hook: suppress one process shard's heartbeats."""
        return self.shards[name].stall(seconds)

    def _shard_healthy(self, shard, health: dict) -> bool:
        """Alive, reachable, and not every breaker hard-open.

        Heartbeat staleness is *not* re-checked here — check_shards
        already classified the shard through the debounce state
        machine, and a merely-suspect shard must not be quarantined.
        """
        if not shard.alive or not health.get("reachable", False):
            return False
        breakers = health.get("breakers") or {}
        if breakers and all(
            b.get("state") == _OPEN and not b.get("probe_due")
            for b in breakers.values()
        ):
            return False
        return True

    def _supervisor_now(self) -> float:
        """Supervision timebase: heartbeat clock in process mode (the
        one staleness is measured on), the injected clock inline."""
        return MONOTONIC() if self.mode == PROCESS else float(self._clock())

    def check_shards(self) -> dict:
        """One health-aggregation pass; rebalances the ring as needed.

        Dead shards (process gone, heartbeat stale beyond the
        debounce) are removed and their in-flight jobs resubmitted; a
        stale-but-within-debounce shard is merely *suspect* — left in
        the ring untouched until staleness persists or the heartbeat
        resumes.  Shards that are alive but unhealthy (every breaker
        hard-open) are *quarantined* — removed from the ring so no new
        keys route to them, but left to finish their backlog;
        quarantined shards that recovered are re-added.  Under a
        supervisor, dead shards are respawned (seeded backoff, restart
        budget) and rejoin the ring.  Returns the actions taken, keyed
        by shard name.
        """
        actions: "dict[str, str]" = {}
        now = self._supervisor_now()
        for name, shard in list(self.shards.items()):
            health = shard.health()
            stale = False
            if self.mode == PROCESS and shard.alive:
                silent = MONOTONIC() - shard.last_heartbeat
                if silent > self.heartbeat_timeout:
                    first = self._stale_since.setdefault(name, now)
                    if now - first >= self.rebalance_debounce:
                        stale = True
                    else:
                        # suspect: stale, but inside the debounce
                        # window — no eviction, no quarantine
                        actions[name] = "suspect"
                        continue
                else:
                    self._stale_since.pop(name, None)
            if not shard.alive or stale:
                self._stale_since.pop(name, None)
                if stale:
                    shard.kill()
                with self._lock:
                    pending_here = any(
                        t.shard == name for t in self._inflight.values()
                    )
                    in_ring = name in self.ring
                if in_ring or pending_here:
                    self._on_shard_down(shard)
                    actions[name] = "removed-dead"
                decision = self._maybe_respawn(name, now)
                if decision is not None:
                    actions[name] = decision
                continue
            healthy = self._shard_healthy(shard, health)
            with self._lock:
                in_ring = name in self.ring
                if in_ring and not healthy:
                    self._remove_from_ring(name)
                    actions[name] = "quarantined"
                elif not in_ring and healthy:
                    if self.ring.add(name):
                        self._rebalances += 1
                        METRICS.counter(
                            "repro_cluster_ring_rebalances_total",
                            direction="add",
                        ).inc()
                        actions[name] = "restored"
        return actions

    # -- supervision -------------------------------------------------------

    def _publish_restart_state(self, name: str) -> None:
        METRICS.gauge("repro_cluster_restart_state", shard=name).set(
            STATE_GAUGE[self._supervisor.state_of(name)]
        )

    def _maybe_respawn(self, name: str, now: float) -> "str | None":
        """Consult the supervisor about one dead shard; maybe respawn."""
        sup = self._supervisor
        if sup is None or self._closed:
            return None
        decision = sup.on_dead(name, now)
        self._publish_restart_state(name)
        if decision == DECIDE_WAIT:
            return "backoff"
        if decision != DECIDE_RESPAWN:
            return "exhausted"
        try:
            self._respawn_shard(name)
        except Exception:  # noqa: BLE001 - a failed spawn charges budget
            sup.note_respawn_failed(name, now)
            self._publish_restart_state(name)
            return "respawn-failed"
        restarts = sup.note_respawned(name)
        self._publish_restart_state(name)
        METRICS.counter("repro_cluster_respawn_total", shard=name).inc()
        if self.telemetry is not None:
            self.telemetry.ingest(
                make_event(
                    "respawn", name, self._clock(), {"restarts": restarts}
                )
            )
        with self._lock:
            if self.ring.add(name):
                self._rebalances += 1
                METRICS.counter(
                    "repro_cluster_ring_rebalances_total", direction="add"
                ).inc()
        return "respawned"

    def _respawn_shard(self, name: str):
        """Rebuild one shard from its stashed config and warm it."""
        if self.mode == INLINE:
            shard = self._make_inline_shard(name)
            self.shards[name] = shard
        else:
            shard = self._make_process_shard(name)
            shard.launch()
            shard.wait_ready(timeout=30.0)
            self.shards[name] = shard
        with self._lock:
            self._outstanding[name] = 0
        self._warm_shard(shard)
        return shard

    def _warm_shard(self, shard) -> None:
        """Promote recently served keys into the fresh shard's memory
        tier from the shared store (no recomputation)."""
        with self._lock:
            points = list(self._recent_points)
        if not points:
            return
        if self.mode == PROCESS:
            shard._send(
                {"op": "warm", "points": [p.to_dict() for p in points]}
            )
        else:
            for p in points:
                shard.view.get(p)

    def _monitor_loop(self, interval: float) -> None:
        while not self._monitor_stop.wait(interval):
            try:
                self.check_shards()
            except Exception:  # noqa: BLE001 - the monitor must survive
                pass

    # -- execution (inline mode) -------------------------------------------

    def run_pending(self, max_jobs: "int | None" = None) -> int:
        """Pump inline shards in deterministic ring order; returns runs.

        Iterates sorted shard names repeatedly until no shard makes
        progress, so work created *during* the pass (resubmissions
        after a :meth:`kill_shard`, cache write-backs) still runs.
        Process-mode shards drain themselves; this is then a no-op.
        """
        total = 0
        while True:
            progressed = 0
            for name in sorted(self.shards):
                shard = self.shards[name]
                budget = None if max_jobs is None else max_jobs - total
                if budget is not None and budget <= 0:
                    return total
                progressed += shard.pump(budget)
            total += progressed
            if progressed == 0:
                return total

    # -- introspection -----------------------------------------------------

    def health(self) -> dict:
        """Aggregated cluster snapshot: ring, shards, store, jobs."""
        shard_healths = {
            name: shard.health() for name, shard in sorted(self.shards.items())
        }
        store_totals = {"memory": 0, "shared": 0, "disk": 0, "miss": 0, "puts": 0}
        for h in shard_healths.values():
            for k, v in (h.get("store") or {}).items():
                store_totals[k] = store_totals.get(k, 0) + v
        with self._lock:
            counts = dict(self._status_counts)
            inflight = len(self._inflight)
            rebalances = self._rebalances
            resubmitted = self._resubmitted
            closed = self._closed
        self.slo.publish()
        doc = {
            "mode": self.mode,
            "accepting": not closed and len(self.ring) > 0,
            "ring": self.ring.snapshot(),
            "rebalances": rebalances,
            "resubmitted": resubmitted,
            "inflight": inflight,
            "jobs": counts,
            "shards": shard_healths,
            "store": store_totals,
            "slo": self.slo.snapshot(),
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry.counts()
        if self._journal is not None:
            doc["journal"] = self._journal.stats()
        if self._supervisor is not None:
            doc["supervisor"] = {
                "respawns": self._supervisor.respawns,
                "budget": self._supervisor.restart_budget,
                "shards": self._supervisor.snapshot(),
            }
        if self.recovered:
            doc["recovered"] = len(self.recovered)
        return doc

    def readiness(self) -> dict:
        """May the front door take new traffic right now?"""
        with self._lock:
            closed = self._closed
        ready = not closed and len(self.ring) > 0
        return {
            "ready": ready,
            "accepting": not closed,
            "ring": self.ring.snapshot(),
        }

    def write_health(self, path: str) -> str:
        """Crash-safely persist the aggregate health snapshot to ``path``."""
        doc = self.health()
        doc["readiness"] = self.readiness()
        return atomic_write_json(path, doc, indent=1, sort_keys=True)

    def job_traces(self) -> "dict[str, tuple[SpanRecord, ...]]":
        """Merged span records of resolved traced jobs, by job id."""
        with self._lock:
            return dict(self._traces)

    def write_trace(self, path: str) -> str:
        """Write one merged Chrome trace over every retained job trace.

        One track per process (front door + each shard that served
        work), slices linked by trace id — load it in
        ``chrome://tracing`` / Perfetto.
        """
        return write_cluster_trace(self.job_traces().values(), path)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def recover(cls, journal_dir: str, **kwargs) -> "ServingCluster":
        """Rebuild a cluster from a crashed front door's journal.

        Folds the journal in ``journal_dir`` (tolerating a torn tail),
        builds a fresh cluster journaling into the *same* directory
        (so the merged history stays replayable), and resubmits every
        accepted-but-unterminated job in its original acceptance
        order, preserving original job ids.  The resubmitted tickets
        are exposed as :attr:`recovered`; each resolves to exactly one
        terminal response, with already-computed work served from the
        shared store rather than recomputed.  Extra keyword arguments
        are the regular constructor's.
        """
        replay = replay_journal(journal_dir)
        kwargs.setdefault("journal_dir", journal_dir)
        cluster = cls(**kwargs)
        counts = replay.counts()
        METRICS.counter("repro_cluster_recovered_jobs_total").inc(
            counts["open"]
        )
        if cluster.telemetry is not None:
            cluster.telemetry.ingest(
                make_event(
                    "recovered", FRONTDOOR, cluster._clock(), dict(counts)
                )
            )
        tickets = [
            cluster.submit(wire, _recovered=True)
            for wire in replay.unterminated()
        ]
        cluster.recovered = tuple(tickets)
        return cluster

    def stop(self, timeout: float = 15.0) -> None:
        """Shut down every shard; unresolved jobs resolve as shed."""
        with self._lock:
            self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
        for shard in self.shards.values():
            shard.stop(timeout=timeout)
        # anything still unresolved (e.g. stranded on a killed shard
        # with no survivors) gets a structured terminal answer
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for tracked in leftovers:
            if not tracked.ticket.done():
                self._finish(
                    tracked.ticket, _shed_response(tracked.job, "shutdown")
                )
        if self._journal is not None:
            self._journal.close()
        if self._owns_store_dir:
            import shutil

            shutil.rmtree(self._owns_store_dir, ignore_errors=True)

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "INLINE",
    "PROCESS",
    "ClusterTicket",
    "InlineShard",
    "ProcessShard",
    "ServingCluster",
]
