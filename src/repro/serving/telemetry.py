"""Shard telemetry bus: structured events from shards to the front door.

The cluster's shards already talk to the front door over duplex pipes
(results, heartbeats, health) — but everything *interesting* that
happens inside a shard (a job shed at admission, a breaker tripping, a
store lookup served from the shared tier, a retry) was only visible as
whichever metric the shard's own registry incremented, and in process
mode that registry lives in the child and dies with it.  This module
gives those moments a first-class representation:

* :class:`TelemetryEvent` — one structured occurrence on one shard
  (``kind``, shard name, injected-clock timestamp, frozen attrs) with
  an exact JSON wire round-trip.
* :class:`TelemetryBus` — a bounded in-memory ring the emitting side
  appends to; in process mode the shard main loop drains it
  (:meth:`TelemetryBus.drain_wire`) into ``{"op": "telemetry"}``
  batches piggybacked on the existing pipe, flushed after each result
  and on every heartbeat tick.
* :class:`ClusterTelemetry` — the front door's aggregator: ingests
  events from every shard (inline callbacks or pipe batches), keeps a
  bounded recent-events window for ``repro top``, and publishes
  per-shard-labeled series into the shared metrics registry
  (``repro_telemetry_events_total{shard,kind}``,
  ``repro_shard_queue_wait_seconds{shard}``,
  ``repro_shard_store_events_total{shard,tier}``,
  ``repro_cluster_breaker_state{shard,algorithm}``).

Event kinds emitted by the serving layer:

=================  ========================================================
kind               meaning / attrs
=================  ========================================================
``queue_wait``     job left the queue; ``seconds``, ``job_id``, ``priority``
``shed``           admission refused a job; ``reason``, ``job_id``
``degraded``       degradation ladder served a job; ``reason``, ``job_id``
``done``           job served exactly; ``job_id``, ``cached`` (bool)
``failed``         job failed terminally; ``reason``, ``job_id``
``retry``          one attempt failed and will be retried; ``algorithm``
``breaker``        breaker transition; ``algorithm``, ``to`` (state name)
``canary``         half-open probe outcome; ``algorithm``, ``outcome``
``store``          store-view lookup; ``tier`` (memory/shared/disk/miss)
``heartbeat``      shard liveness tick (process mode); ``inflight``
``warm``           respawned shard pre-warmed from the store; ``count``
``respawn``        supervisor restarted a dead shard; ``restarts``
``recovered``      journal replay resubmitted jobs; replay counts
=================  ========================================================

Zero cost when disabled: services emit through an optional ``on_event``
callable that defaults to ``None`` — no event object is ever built,
matching the null-profiler discipline PR 2 established (and the golden
equality suite enforces).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.observability.metrics import METRICS, MetricsRegistry

#: Bucket bounds for ``repro_shard_queue_wait_seconds`` (seconds).
QUEUE_WAIT_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)

#: Breaker state name -> gauge value (mirrors repro_service_breaker_state).
BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured occurrence on one shard at one (injected) clock time."""

    kind: str
    shard: str
    t: float = 0.0
    attrs: "tuple[tuple[str, Any], ...]" = ()

    def attr(self, key: str, default: Any = None) -> Any:
        """One attribute value by key."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def to_wire(self) -> dict:
        """JSON-ready form shipped over the shard pipe."""
        return {
            "kind": self.kind,
            "shard": self.shard,
            "t": float(self.t),
            "attrs": [[k, v] for k, v in self.attrs],
        }

    @classmethod
    def from_wire(cls, d: Mapping[str, Any]) -> "TelemetryEvent":
        """Rebuild from :meth:`to_wire` output."""
        return cls(
            kind=str(d["kind"]),
            shard=str(d["shard"]),
            t=float(d.get("t", 0.0)),
            attrs=tuple((str(k), v) for k, v in (d.get("attrs") or ())),
        )


def make_event(
    kind: str, shard: str, t: float, attrs: "Mapping[str, Any] | None" = None
) -> TelemetryEvent:
    """Build an event with deterministically ordered attrs."""
    frozen = (
        () if not attrs else tuple(sorted((str(k), v) for k, v in attrs.items()))
    )
    return TelemetryEvent(kind=str(kind), shard=str(shard), t=float(t),
                          attrs=frozen)


class TelemetryBus:
    """Bounded event ring for one emitting process (shard side).

    ``emit`` appends and fans out to subscribers; ``drain_wire`` hands
    the pending batch to the pipe flusher exactly once.  Thread-safe:
    a shard's worker threads emit while the ops loop drains.
    """

    def __init__(self, shard: str, *, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.shard = str(shard)
        self._recent: "deque[TelemetryEvent]" = deque(maxlen=capacity)
        self._outbox: "deque[TelemetryEvent]" = deque(maxlen=capacity)
        self._subscribers: "list[Callable[[TelemetryEvent], None]]" = []
        self._counts: "dict[str, int]" = {}
        self._lock = threading.Lock()

    def emit(
        self, kind: str, t: float, attrs: "Mapping[str, Any] | None" = None
    ) -> TelemetryEvent:
        """Record one event; returns it (mostly for tests)."""
        event = make_event(kind, self.shard, t, attrs)
        with self._lock:
            self._recent.append(event)
            self._outbox.append(event)
            self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
            subscribers = tuple(self._subscribers)
        for fn in subscribers:
            fn(event)
        return event

    def subscribe(self, fn: "Callable[[TelemetryEvent], None]") -> None:
        """Register a callback invoked synchronously on every emit."""
        with self._lock:
            self._subscribers.append(fn)

    def counts(self) -> "dict[str, int]":
        """Exact per-kind totals since construction."""
        with self._lock:
            return dict(self._counts)

    def recent(self, limit: "int | None" = None) -> "tuple[TelemetryEvent, ...]":
        """The most recent retained events, oldest first."""
        with self._lock:
            events = tuple(self._recent)
        return events if limit is None else events[-limit:]

    def drain_wire(self) -> "list[dict]":
        """Remove and return all pending events in wire form.

        The process-mode shard loop calls this after each result and on
        every heartbeat tick, shipping the batch as one
        ``{"op": "telemetry", "events": [...]}`` pipe message.
        """
        with self._lock:
            batch = [e.to_wire() for e in self._outbox]
            self._outbox.clear()
        return batch


class ClusterTelemetry:
    """Front-door aggregator over every shard's events.

    One instance per cluster; shard reader threads and inline pumps
    both feed :meth:`ingest`, so all state is lock-guarded and all
    registry publishing goes through the (now thread-safe) metrics
    instruments.
    """

    def __init__(
        self,
        *,
        registry: "MetricsRegistry | None" = None,
        capacity: int = 4096,
    ) -> None:
        self.registry = registry if registry is not None else METRICS
        self._recent: "deque[TelemetryEvent]" = deque(maxlen=capacity)
        self._counts: "dict[tuple[str, str], int]" = {}
        self._lock = threading.Lock()

    # -- ingestion ---------------------------------------------------------

    def ingest(self, event: TelemetryEvent) -> None:
        """Account one event and publish its per-shard metrics."""
        with self._lock:
            self._recent.append(event)
            key = (event.shard, event.kind)
            self._counts[key] = self._counts.get(key, 0) + 1
        reg = self.registry
        reg.counter(
            "repro_telemetry_events_total", shard=event.shard, kind=event.kind
        ).inc()
        if event.kind == "queue_wait":
            reg.histogram(
                "repro_shard_queue_wait_seconds",
                buckets=QUEUE_WAIT_BUCKETS,
                shard=event.shard,
            ).observe(float(event.attr("seconds", 0.0)))
        elif event.kind == "store":
            reg.counter(
                "repro_shard_store_events_total",
                shard=event.shard,
                tier=str(event.attr("tier", "unknown")),
            ).inc()
        elif event.kind == "breaker":
            state = str(event.attr("to", "closed"))
            reg.gauge(
                "repro_cluster_breaker_state",
                shard=event.shard,
                algorithm=str(event.attr("algorithm", "")),
            ).set(BREAKER_STATES.get(state, -1))

    def ingest_wire(self, events: "Iterable[Mapping[str, Any]]") -> int:
        """Ingest a pipe batch of wire-form events; returns how many."""
        n = 0
        for d in events:
            self.ingest(TelemetryEvent.from_wire(d))
            n += 1
        return n

    # -- reads -------------------------------------------------------------

    def counts(self) -> "dict[str, dict[str, int]]":
        """Exact per-shard per-kind totals (shard -> kind -> count)."""
        out: "dict[str, dict[str, int]]" = {}
        with self._lock:
            items = sorted(self._counts.items())
        for (shard, kind), n in items:
            out.setdefault(shard, {})[kind] = n
        return out

    def recent(self, limit: "int | None" = None) -> "tuple[TelemetryEvent, ...]":
        """The most recent retained events across all shards, oldest first."""
        with self._lock:
            events = tuple(self._recent)
        return events if limit is None else events[-limit:]

    @property
    def total(self) -> int:
        """All events ever ingested."""
        with self._lock:
            return sum(self._counts.values())


__all__ = [
    "BREAKER_STATES",
    "QUEUE_WAIT_BUCKETS",
    "ClusterTelemetry",
    "TelemetryBus",
    "TelemetryEvent",
    "make_event",
]
