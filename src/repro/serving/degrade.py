"""The graceful-degradation ladder: closed-form answers without simulating.

The paper hands the service a free fallback tier: Tables 1 and 2 are
*predictions* — closed-form bandwidth/latency/flop curves per
(algorithm, storage) and per (n, b, P) — that :mod:`repro.bounds`
evaluates in microseconds, no machine, no matrix, no simulation.  When
a job's budget, deadline or circuit breaker forbids the full
simulation, the service serves the prediction instead, clearly flagged
``degraded=True`` with a machine-readable reason.

A degraded answer is a *bounded estimate*, not an exact count.  Each
predicted field carries a documented multiplicative bound factor ``f``:
the exact simulated count for the same point is guaranteed (and
test-enforced, see ``tests/serving/test_degrade.py`` and the soak) to
lie within ``[prediction / f, prediction · f]``.  The factors differ
per field because the closed forms differ in fidelity:

* sequential **flops** are the exact polynomial (tiny factor);
* sequential **words** track the Θ-form within small constants;
* sequential **messages** are Θ-forms with suppressed constants and
  log factors (Table 1 footnotes), hence the loose factor;
* parallel counts come from §3.3.1's explicit critical-path formulas
  (modest factors covering the protocol's rounding).

Not every configuration has a closed form: Table 1 only covers the
(algorithm, storage) pairs the paper analyzes.  ``predict_point``
returns ``None`` for the rest, and the service fails such jobs with a
structured reason instead of inventing numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bounds.parallel import (
    scalapack_flops,
    scalapack_messages,
    scalapack_words,
)
from repro.bounds.sequential import table1_predictions
from repro.experiments.spec import PARALLEL, SpecPoint
from repro.results import Measurement
from repro.sequential.flops import cholesky_flops

#: Documented bound factors: the exact simulated count lies within
#: ``[prediction / factor, prediction · factor]`` (see docs/SERVING.md).
SEQUENTIAL_BOUND_FACTORS = {"words": 4.0, "messages": 64.0, "flops": 1.5}
PARALLEL_BOUND_FACTORS = {"words": 4.0, "messages": 4.0, "flops": 2.0}

#: Registry algorithms the paper analyzes under a sibling's name: the
#: up-looking naïve variant shares naive-left's Θ counts, and the
#: right-looking LAPACK variant shares blocked POTRF's.  The bound
#: factors above were calibrated against these aliases too.
TABLE1_ALIASES = {"naive-up": "naive-left", "lapack-right": "lapack"}


@dataclass(frozen=True)
class Prediction:
    """A closed-form answer for one spec point, with its error bounds."""

    source: str  # "table1" | "table2"
    words: float
    messages: float
    flops: float
    bound_factors: dict = field(default_factory=dict)
    detail: dict = field(default_factory=dict)

    def bounds(self) -> dict:
        """Per-field ``[low, high]`` interval the exact count lies in."""
        out = {}
        for name in ("words", "messages", "flops"):
            value = getattr(self, name)
            f = self.bound_factors.get(name, 1.0)
            out[name] = [value / f, value * f]
        return out

    def contains(self, measurement: Measurement) -> bool:
        """Does the exact measurement fall within every documented bound?"""
        bounds = self.bounds()
        return all(
            bounds[name][0] <= getattr(measurement, name) <= bounds[name][1]
            for name in ("words", "messages", "flops")
        )

    def to_dict(self) -> dict:
        """JSON-ready payload for the degraded response."""
        return {
            "source": self.source,
            "words": self.words,
            "messages": self.messages,
            "flops": self.flops,
            "bound_factors": dict(self.bound_factors),
            "bounds": self.bounds(),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, d) -> "Prediction":
        """Rebuild a prediction from :meth:`to_dict` output.

        The derived ``bounds`` field is recomputed from the factors,
        never trusted from the document.
        """
        return cls(
            source=str(d["source"]),
            words=float(d["words"]),
            messages=float(d["messages"]),
            flops=float(d["flops"]),
            bound_factors=dict(d.get("bound_factors") or {}),
            detail=dict(d.get("detail") or {}),
        )


def predict_point(point: SpecPoint) -> "Prediction | None":
    """The closed-form Table 1/2 answer for ``point``, or ``None``.

    Sequential points resolve against the Table 1 row matching their
    (algorithm, storage) pair — the same rows the T1 bench ratios
    measured counts against — plus the exact flop polynomial.
    Parallel points always resolve: §3.3.1's formulas cover every
    (n, b, P).
    """
    if point.kind == PARALLEL:
        n, b, P = int(point.n), int(point.block), int(point.P)
        return Prediction(
            source="table2",
            words=scalapack_words(n, b, P),
            messages=scalapack_messages(n, b, P),
            flops=scalapack_flops(n, b, P),
            bound_factors=dict(PARALLEL_BOUND_FACTORS),
            detail={"n": n, "block": b, "P": P,
                    "formula": "scalapack critical path (§3.3.1)"},
        )
    if point.M is None:
        return None
    algorithm = TABLE1_ALIASES.get(point.algorithm, point.algorithm)
    for row in table1_predictions(int(point.n), int(point.M)):
        if row.algorithm == algorithm and row.storage == point.layout:
            return Prediction(
                source="table1",
                words=float(row.bandwidth),
                messages=float(row.latency),
                flops=float(cholesky_flops(int(point.n))),
                bound_factors=dict(SEQUENTIAL_BOUND_FACTORS),
                detail={
                    "n": int(point.n),
                    "M": int(point.M),
                    "algorithm": row.algorithm,
                    "storage": row.storage,
                    "cache_oblivious": row.cache_oblivious,
                },
            )
    return None


def degraded_measurement(point: SpecPoint, prediction: Prediction) -> Measurement:
    """Wrap a prediction in the unified measurement schema.

    Counts are the (integer-rounded) predictions; ``correct=False``
    records that no factor was computed, and the params carry a
    ``degraded`` marker so the row can never be mistaken for an exact
    simulation in an artifact.
    """
    words = int(math.ceil(prediction.words))
    messages = int(math.ceil(prediction.messages))
    flops = int(math.ceil(prediction.flops))
    return Measurement(
        algorithm=point.algorithm,
        layout=point.layout,
        n=int(point.n),
        M=None if point.M is None else int(point.M),
        words=words,
        messages=messages,
        words_read=words,
        words_written=0,
        flops=flops,
        correct=False,
        P=None if point.P is None else int(point.P),
        block=None if point.block is None else int(point.block),
        seed=point.seed,
        params=tuple(point.params) + (("degraded", True),),
    )


__all__ = [
    "PARALLEL_BOUND_FACTORS",
    "SEQUENTIAL_BOUND_FACTORS",
    "TABLE1_ALIASES",
    "Prediction",
    "degraded_measurement",
    "predict_point",
]
