"""Injectable clocks for the serving layer.

Every time-dependent decision in :mod:`repro.serving` — circuit-breaker
cooldowns, deadline checks, queue-age accounting — reads time through a
*clock*: any zero-argument callable returning seconds as a float.  The
production default is :func:`time.monotonic`; tests inject a
:class:`ManualClock` and advance it explicitly, so every state
transition is deterministic and no test ever sleeps to make a breaker
reopen.
"""

from __future__ import annotations

import time
from typing import Callable

#: The clock type: any ``() -> float`` callable (monotonic seconds).
Clock = Callable[[], float]

#: Production clock.
MONOTONIC: Clock = time.monotonic


class ManualClock:
    """A clock that only moves when told to (deterministic tests).

    Usable anywhere a :data:`Clock` is expected — the instance itself
    is the callable::

        clock = ManualClock()
        breaker = CircuitBreaker(cooldown=30.0, clock=clock)
        clock.advance(31.0)   # the cooldown has now elapsed
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current reading (same as calling the instance)."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds} (negative)")
        self._now += float(seconds)
        return self._now


__all__ = ["Clock", "MONOTONIC", "ManualClock"]
