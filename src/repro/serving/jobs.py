"""Deprecated alias module: the job/response types moved to :mod:`repro.serving.api`.

Everything this module used to define — :class:`Job`,
:class:`JobTicket`, :class:`ServiceResponse`, the terminal status
constants and :func:`job_from_dict` — now lives in
:mod:`repro.serving.api`, which additionally carries the versioned
JSON wire schema and the typed request builders.  Importing any of
those names from here still works but emits a
:class:`DeprecationWarning`; new code should import from
``repro.serving.api`` (or the ``repro.serving`` package root, which
re-exports the public names).
"""

from __future__ import annotations

import warnings

from repro.serving import api as _api

#: Names this module re-exports from :mod:`repro.serving.api`.
_MOVED = (
    "DEGRADED",
    "DONE",
    "FAILED",
    "SHED",
    "TERMINAL_STATUSES",
    "Job",
    "JobTicket",
    "ServiceResponse",
    "job_from_dict",
)

__all__ = list(_MOVED)

# The import itself is deprecated, not just the attribute accesses:
# `import repro.serving.jobs` in a `from ... import *`-free module
# would otherwise warn only at first use, long after the import line
# that needs fixing.
warnings.warn(
    "repro.serving.jobs is deprecated; import from repro.serving.api "
    "(it will be removed in a future release)",
    DeprecationWarning,
    stacklevel=2,
)


def __getattr__(name: str):
    """Serve the moved names with a deprecation warning (PEP 562)."""
    if name in _MOVED:
        warnings.warn(
            f"repro.serving.jobs.{name} moved to repro.serving.api; "
            "this alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_MOVED))
