"""Jobs, tickets and structured responses.

A :class:`Job` wraps one :class:`~repro.experiments.spec.SpecPoint` —
the same execution unit the experiment engine runs — with the serving
metadata admission control needs: a priority grade, a
:class:`~repro.serving.budget.Budget`, and the submission timestamp
deadlines are measured from.

Every job ends in exactly one terminal :class:`ServiceResponse` whose
``status`` is one of

``done``
    The full simulation ran within budget; ``measurement`` is exact.
``degraded``
    The budget, deadline or breaker forbade full simulation; the
    closed-form Table 1/2 prediction is served instead
    (``measurement`` holds the predicted counts, ``prediction``
    carries the documented error bounds, ``reason`` says why).
``shed``
    Admission control refused the job (queue full, in-flight limit,
    eviction by higher priority, shutdown); nothing ran.
``failed``
    The simulation failed for a non-budget reason (fault exhaustion,
    a non-SPD input, an invalid configuration) and no closed form was
    applicable or permitted.

``reason`` is always machine-readable (a stable slug like
``queue-full`` or ``budget-words``); ``detail`` carries the structured
specifics (limits, spends, queue occupancy, predictions).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.experiments.spec import SpecPoint
from repro.results import Measurement
from repro.serving.budget import Budget
from repro.serving.degrade import Prediction
from repro.serving.queue import PRIORITY_NORMAL, priority_name

#: Terminal response statuses.
DONE = "done"
DEGRADED = "degraded"
SHED = "shed"
FAILED = "failed"

TERMINAL_STATUSES = (DONE, DEGRADED, SHED, FAILED)

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One admitted (or about-to-be-admitted) unit of work."""

    point: SpecPoint
    priority: int = PRIORITY_NORMAL
    budget: "Budget | None" = None
    submitted_at: float = 0.0
    job_id: str = field(default_factory=lambda: f"job-{next(_job_ids)}")

    def label(self) -> str:
        """Short progress-line tag."""
        return f"{self.job_id} [{priority_name(self.priority)}] {self.point.label()}"


@dataclass(frozen=True)
class ServiceResponse:
    """The terminal answer for one job (see module docstring)."""

    job_id: str
    status: str
    reason: "str | None" = None
    detail: dict = field(default_factory=dict)
    measurement: "Measurement | None" = None
    prediction: "Prediction | None" = None
    attempts: int = 0
    wall_seconds: float = 0.0
    priority: int = PRIORITY_NORMAL

    @property
    def degraded(self) -> bool:
        """True when the answer is a closed-form bound, not a simulation."""
        return self.status == DEGRADED

    @property
    def ok(self) -> bool:
        """True when the job produced an answer (exact or degraded)."""
        return self.status in (DONE, DEGRADED)

    def to_dict(self) -> dict:
        """JSON-ready dict (CLI output, soak artifacts)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "degraded": self.degraded,
            "reason": self.reason,
            "detail": dict(self.detail),
            "measurement": (
                None if self.measurement is None else self.measurement.to_dict()
            ),
            "prediction": (
                None if self.prediction is None else self.prediction.to_dict()
            ),
            "attempts": int(self.attempts),
            "wall_seconds": float(self.wall_seconds),
            "priority": priority_name(self.priority),
        }


class JobTicket:
    """Handle returned by ``submit``: await the job's terminal response."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self._event = threading.Event()
        self._response: "ServiceResponse | None" = None

    @property
    def job_id(self) -> str:
        return self.job.job_id

    def done(self) -> bool:
        """Has the job reached a terminal state?"""
        return self._event.is_set()

    def resolve(self, response: ServiceResponse) -> None:
        """Attach the terminal response (service-internal; idempotent-safe)."""
        if self._event.is_set():
            raise RuntimeError(f"{self.job_id} already resolved")
        self._response = response
        self._event.set()

    def result(self, timeout: "float | None" = None) -> ServiceResponse:
        """Block until terminal; raises ``TimeoutError`` on timeout."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(
                f"{self.job_id} not terminal within {timeout}s"
            )
        assert self._response is not None
        return self._response


def job_from_dict(d: Mapping[str, Any]) -> Job:
    """Build a job from a workload-file record.

    The record is ``{"point": <SpecPoint.to_dict()>, "priority":
    "high"|"normal"|"low"|int, "budget": <Budget.to_dict()>}`` with
    everything but ``point`` optional.
    """
    from repro.serving.queue import parse_priority

    point = SpecPoint.from_dict(d["point"])
    budget = None if d.get("budget") is None else Budget.from_dict(d["budget"])
    return Job(
        point=point,
        priority=parse_priority(d.get("priority", PRIORITY_NORMAL)),
        budget=budget,
    )


__all__ = [
    "DEGRADED",
    "DONE",
    "FAILED",
    "SHED",
    "TERMINAL_STATUSES",
    "Job",
    "JobTicket",
    "ServiceResponse",
    "job_from_dict",
]
