"""One client API over every serving substrate.

:class:`ServingClient` is the facade the CLI, the benchmarks, and the
tests all submit through.  It wraps *any* backend exposing the common
surface — ``submit(job) -> ticket``, ``stop()``, ``health()``,
``readiness()``, and optionally ``run_pending()`` — which today means a
single in-process :class:`~repro.serving.service.FactorizationService`
or a sharded :class:`~repro.serving.cluster.ServingCluster`, inline or
multi-process.  Code written against the client does not change when
the deployment grows from one service to N shards.

Requests are the typed schema from :mod:`repro.serving.api`: a
:class:`~repro.serving.api.Job`, a bare
:class:`~repro.experiments.spec.SpecPoint`, or a versioned job wire
document; builders like :func:`~repro.serving.api.chol_request`
construct them.  Responses are always
:class:`~repro.serving.api.ServiceResponse`.

Three submission shapes:

* :meth:`submit` — synchronous request/response.
* :meth:`submit_async` — returns the ticket (a future: ``done()``,
  ``result(timeout)``, ``add_done_callback``).
* :meth:`submit_many` / :meth:`stream` — batched submission through a
  *bounded in-flight window*: at most ``window`` jobs are outstanding
  at once, a new one entering as each resolves.  The window is the
  client-side complement of the server's bounded admission queue — a
  client that dumped 10k jobs at once would just shed against its own
  service's waiting room; the window keeps the pipeline full without
  flooding it.  ``stream`` yields ``(job, response)`` pairs in
  *completion* order as they arrive; ``submit_many`` returns responses
  in submission order.

Backends whose execution must be driven by the caller (``workers=0``
services, inline clusters — anything with a truthy ``needs_pump`` or a
``run_pending`` with no worker threads) are pumped automatically
between window refills, so the same batched code runs identically on
deterministic virtual-clock backends and on threaded/process ones.
"""

from __future__ import annotations

import queue
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.experiments.spec import SpecPoint
from repro.serving.api import Job, ServiceResponse, job_from_wire
from repro.serving.service import FactorizationService


def _coerce_job(request: "Job | SpecPoint | Mapping[str, Any]") -> Job:
    """Normalize any accepted request shape to a :class:`Job`."""
    if isinstance(request, Job):
        return request
    if isinstance(request, SpecPoint):
        return Job(point=request)
    if isinstance(request, Mapping):
        return job_from_wire(request)
    raise TypeError(
        f"expected Job, SpecPoint or a job wire mapping, got "
        f"{type(request).__name__}"
    )


class ServingClient:
    """The unified submit facade over a service or a cluster backend.

    Parameters
    ----------
    backend:
        Anything with ``submit(job) -> ticket`` and ``stop()``.
    own_backend:
        When true (the default for the :meth:`local` / :meth:`cluster`
        constructors), :meth:`close` stops the backend too; pass False
        to wrap a backend someone else manages.
    """

    def __init__(self, backend, *, own_backend: bool = True) -> None:
        self.backend = backend
        self._own_backend = own_backend
        self._closed = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def local(cls, **service_kwargs) -> "ServingClient":
        """A client over a fresh single-process service (owned)."""
        return cls(FactorizationService(**service_kwargs))

    @classmethod
    def cluster(cls, **cluster_kwargs) -> "ServingClient":
        """A client over a fresh sharded cluster (owned).

        Keyword arguments go to
        :class:`~repro.serving.cluster.ServingCluster` verbatim —
        ``shards=``, ``mode=``, ``spill_depth=`` and friends.
        """
        from repro.serving.cluster import ServingCluster

        return cls(ServingCluster(**cluster_kwargs))

    # -- pump detection ----------------------------------------------------

    @property
    def needs_pump(self) -> bool:
        """Must the client drive the backend's execution itself?

        True for inline clusters (they declare it) and for services
        with no worker threads; threaded services and process-mode
        clusters drain themselves.
        """
        declared = getattr(self.backend, "needs_pump", None)
        if declared is not None:
            return bool(declared)
        return getattr(self.backend, "workers", None) == 0

    def pump(self, max_jobs: "int | None" = None) -> int:
        """Run pending work on this thread (no-op for self-draining)."""
        if not self.needs_pump:
            return 0
        return self.backend.run_pending(max_jobs)

    # -- submission --------------------------------------------------------

    def submit_async(self, request: "Job | SpecPoint | Mapping") -> Any:
        """Submit one job; returns the backend's ticket (a future)."""
        if self._closed:
            raise RuntimeError("client is closed")
        return self.backend.submit(_coerce_job(request))

    def submit(
        self,
        request: "Job | SpecPoint | Mapping",
        timeout: "float | None" = None,
    ) -> ServiceResponse:
        """Submit one job and block for its terminal response."""
        ticket = self.submit_async(request)
        if self.needs_pump and not ticket.done():
            self.pump()
        return ticket.result(timeout=timeout)

    def stream(
        self,
        requests: "Iterable[Job | SpecPoint | Mapping]",
        *,
        window: int = 32,
        timeout: "float | None" = None,
    ) -> "Iterator[tuple[Job, ServiceResponse]]":
        """Yield ``(job, response)`` in completion order, windowed.

        At most ``window`` jobs are in flight at once; each completion
        admits the next request from the iterable.  ``timeout`` bounds
        the wait for any single completion (a stuck backend raises
        ``TimeoutError`` instead of hanging the generator).  The
        generator owns no results — abandoning it mid-iteration simply
        stops feeding new jobs; already-submitted ones still run.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        completions: "queue.Queue[tuple[Job, ServiceResponse]]" = queue.Queue()
        pending = 0
        it = iter(requests)

        def feed() -> int:
            """Admit jobs until the window is full; returns admissions."""
            nonlocal pending
            admitted = 0
            while pending < window:
                try:
                    request = next(it)
                except StopIteration:
                    break
                job = _coerce_job(request)
                ticket = self.submit_async(job)
                ticket.add_done_callback(
                    lambda response, j=job: completions.put((j, response))
                )
                pending += 1
                admitted += 1
            return admitted

        feed()
        while pending > 0:
            if self.needs_pump:
                if completions.empty():
                    self.pump()
                try:
                    job, response = completions.get_nowait()
                except queue.Empty:
                    # pump ran and resolved nothing: the backend has
                    # stranded work — surface it, never hang
                    raise RuntimeError(
                        f"pumped backend made no progress with "
                        f"{pending} jobs in flight"
                    ) from None
            else:
                try:
                    job, response = completions.get(timeout=timeout)
                except queue.Empty:
                    raise TimeoutError(
                        f"no completion within {timeout}s "
                        f"({pending} in flight)"
                    ) from None
            pending -= 1
            feed()
            yield job, response

    def submit_many(
        self,
        requests: "Iterable[Job | SpecPoint | Mapping]",
        *,
        window: int = 32,
        timeout: "float | None" = None,
    ) -> "list[ServiceResponse]":
        """Run a batch through the window; responses in submission order."""
        jobs = [_coerce_job(r) for r in requests]
        order = {job.job_id: i for i, job in enumerate(jobs)}
        out: "list[ServiceResponse | None]" = [None] * len(jobs)
        for job, response in self.stream(jobs, window=window, timeout=timeout):
            out[order[job.job_id]] = response
        assert all(r is not None for r in out)
        return out  # type: ignore[return-value]

    # -- introspection / lifecycle -----------------------------------------

    def health(self) -> dict:
        """The backend's health snapshot, pass-through."""
        return self.backend.health()

    def readiness(self) -> dict:
        """The backend's readiness snapshot, pass-through."""
        return self.backend.readiness()

    def close(self) -> None:
        """Stop accepting; stops the backend too when owned."""
        if self._closed:
            return
        self._closed = True
        if self._own_backend:
            self.backend.stop()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServingClient"]
