"""The resilient factorization service.

:class:`FactorizationService` turns the experiment engine's worker
function (:func:`repro.experiments.engine.execute_point`) into a
bounded, budgeted, self-protecting job service:

* **Admission control** — a :class:`~repro.serving.queue.BoundedPriorityQueue`
  is the only waiting room.  A full queue sheds the newcomer (or
  evicts a strictly-lower-priority waiter); a closed service sheds
  everything.  Every shed is a structured terminal response, never a
  hang, and :meth:`submit_or_raise` turns admission sheds into an
  :class:`Overloaded` exception for callers that prefer one.
* **Budgets** — each job may carry a :class:`~repro.serving.budget.Budget`.
  Its guard is armed once per job with the *submission* timestamp, so
  the deadline covers queueing time and the simulated-cost caps are
  cumulative across retries.  A mid-run violation surfaces as
  :class:`~repro.serving.budget.BudgetExceeded` from the simulator's
  charging chokepoints.
* **Circuit breakers** — one
  :class:`~repro.serving.breaker.CircuitBreaker` per algorithm.
  Consecutive execution failures (fault exhaustion, non-SPD inputs,
  deadline blowouts) trip it open; while open, jobs for that algorithm
  skip straight to the degradation ladder; after the cooldown a cheap
  canary run probes the backend before real traffic resumes.
* **Graceful degradation** — whenever budget or breaker forbids the
  full simulation, the closed-form Table 1/2 prediction
  (:mod:`repro.serving.degrade`) is served instead, flagged
  ``degraded=True`` with a machine-readable reason and its documented
  error bounds.

Concurrency model: ``workers >= 1`` starts that many daemon threads
which pop the queue and run jobs in-process (the simulators hold no
global state, so threads are safe; the GIL serializes the numeric
work, which is fine for a simulation service whose unit of work is
already seconds-scale).  ``workers=0`` is the deterministic test/CLI
mode: nothing runs until the caller pumps :meth:`run_pending`.

Every decision reads time through the injected clock, so the whole
state machine — deadlines, cooldowns, probes — is testable with a
:class:`~repro.serving.clock.ManualClock`.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Mapping

from repro.abft import SilentCorruptionError
from repro.experiments.cache import ResultCache
from repro.experiments.engine import execute_point
from repro.experiments.spec import PARALLEL, SpecPoint
from repro.faults.injector import FaultExhausted
from repro.observability.metrics import METRICS
from repro.observability.tracing import TraceLog, root_context
from repro.results import Measurement
from repro.serving.breaker import OPEN, STATE_CODES, CircuitBreaker
from repro.serving.budget import Budget, BudgetExceeded
from repro.serving.clock import MONOTONIC, Clock
from repro.serving.degrade import (
    degraded_measurement,
    predict_point,
)
from repro.serving.api import (
    DEGRADED,
    DONE,
    FAILED,
    SHED,
    Job,
    JobTicket,
    ServiceResponse,
)
from repro.serving.queue import (
    BoundedPriorityQueue,
    QueueClosed,
    priority_name,
)
from repro.util.validation import (
    NotPositiveDefiniteError,
    ValidationError,
    check_positive_int,
)


class Overloaded(RuntimeError):
    """Admission control refused the job; carries the shed response."""

    def __init__(self, response: ServiceResponse) -> None:
        super().__init__(
            f"{response.job_id} shed at admission: {response.reason}"
        )
        self.response = response


def canary_point(point: SpecPoint, n: int = 16) -> SpecPoint:
    """A cheap probe configuration for ``point``'s algorithm.

    Same algorithm, layout and fault plan — the things whose health the
    breaker is judging — at a tiny problem size, with verification and
    observation off and algorithm params dropped (they may not be valid
    at the probe size).
    """
    from dataclasses import replace

    if point.kind == PARALLEL:
        return replace(
            point,
            n=n,
            block=max(1, n // 2),
            P=4,
            verify=False,
            observe=False,
            params=(),
        )
    return replace(
        point,
        n=n,
        M=max(64, 4 * n),
        verify=False,
        observe=False,
        params=(),
    )


def _validate_job_point(point: SpecPoint) -> None:
    """Reject structurally invalid points before they reach a worker.

    Always raises :class:`ValidationError` (the structured client-error
    type) — the bare ``TypeError``/``ValueError`` from the low-level
    checkers is wrapped so callers match one exception.
    """
    try:
        check_positive_int("n", point.n)
        if point.kind == PARALLEL:
            if point.block is None or point.P is None:
                raise ValidationError(
                    "parallel points need both block and P set"
                )
            check_positive_int("block", point.block)
            check_positive_int("P", point.P)
        else:
            if point.M is None:
                raise ValidationError("sequential points need M set")
            check_positive_int("M", point.M)
    except ValidationError:
        raise
    except (TypeError, ValueError) as exc:
        raise ValidationError(str(exc)) from exc


class FactorizationService:
    """Bounded, budgeted, breaker-protected factorization jobs.

    Parameters
    ----------
    queue_capacity:
        Waiting-room bound; beyond it admission sheds or evicts.
    workers:
        Worker threads (the in-flight budget).  ``0`` runs nothing
        until :meth:`run_pending` is called — the deterministic mode.
    retries:
        Execution retries per job after the first attempt (all
        attempts share the job's cumulative budget).
    cache:
        ``None`` (default) disables caching; ``"default"`` or an
        explicit :class:`ResultCache` serves repeat points without
        simulating (cache hits spend no budget).
    breaker_threshold / breaker_cooldown / half_open_probes:
        Per-algorithm :class:`CircuitBreaker` configuration.
    canary_n:
        Problem size of the half-open probe runs.
    default_budget:
        Budget applied to jobs that carry none.
    clock:
        Time source for deadlines, cooldowns and latency metrics.
    tracing:
        When true, jobs that arrive without a trace context get one
        minted from their spec cache key and every terminal response
        carries the job's span records.  Off by default: an untraced
        job allocates no log and its payload is byte-identical to the
        pre-tracing schema (the golden suite enforces this).
    name:
        The process label stamped on span records and telemetry events
        (the cluster names each shard; standalone default "service").
    on_event:
        Optional telemetry sink called as ``on_event(kind, t, attrs)``
        for queue waits, sheds, degradations, retries, breaker
        transitions, canaries and completions.  ``None`` (default)
        emits nothing — not even an event object is built.
    """

    def __init__(
        self,
        *,
        queue_capacity: int = 16,
        workers: int = 2,
        retries: int = 1,
        cache: "ResultCache | str | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        half_open_probes: int = 1,
        canary_n: int = 16,
        default_budget: "Budget | None" = None,
        clock: Clock = MONOTONIC,
        tracing: bool = False,
        name: str = "service",
        on_event: "Callable[[str, float, dict], None] | None" = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.workers = int(workers)
        self.retries = int(retries)
        self.tracing = bool(tracing)
        self.name = str(name)
        self.on_event = on_event
        if cache == "default":
            cache = ResultCache.default()
        elif isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache: "ResultCache | None" = cache
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.half_open_probes = int(half_open_probes)
        self.canary_n = int(canary_n)
        self.default_budget = default_budget
        self._clock = clock
        self._queue: BoundedPriorityQueue[Job] = BoundedPriorityQueue(
            queue_capacity
        )
        self._lock = threading.Lock()
        self._tickets: "dict[str, JobTicket]" = {}
        self._trace_logs: "dict[str, TraceLog]" = {}
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._inflight = 0
        self._closed = False
        self._status_counts: "dict[str, int]" = {}
        self._threads: "list[threading.Thread]" = []
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    # -- telemetry ---------------------------------------------------------

    def _emit(self, kind: str, **attrs: Any) -> None:
        """Hand one structured event to the telemetry sink, if any.

        The ``None`` check is the entire disabled-mode cost — no event
        object, no clock read, nothing (the golden suite relies on it).
        """
        if self.on_event is not None:
            self.on_event(kind, self._clock(), attrs)

    # -- breakers ---------------------------------------------------------

    def _breaker(self, algorithm: str) -> CircuitBreaker:
        with self._lock:
            b = self._breakers.get(algorithm)
            if b is None:

                def on_transition(frm: str, to: str, *, alg=algorithm) -> None:
                    METRICS.gauge(
                        "repro_service_breaker_state", algorithm=alg
                    ).set(STATE_CODES[to])
                    METRICS.counter(
                        "repro_service_breaker_transitions_total",
                        algorithm=alg,
                        to=to,
                    ).inc()
                    self._emit("breaker", algorithm=alg, to=to)

                b = CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                    half_open_probes=self.half_open_probes,
                    clock=self._clock,
                    on_transition=on_transition,
                )
                self._breakers[algorithm] = b
            return b

    # -- submission -------------------------------------------------------

    def submit(
        self,
        job: "Job | SpecPoint | Mapping",
        *,
        priority: "int | None" = None,
        budget: "Budget | None" = None,
    ) -> JobTicket:
        """Admit (or immediately resolve) one job; returns its ticket.

        Accepts a :class:`Job`, a bare :class:`SpecPoint`, or a
        point-shaped mapping.  Structurally invalid points raise
        :class:`~repro.util.validation.ValidationError` here — before
        any queueing — so garbage never reaches a worker.  Admission
        sheds (queue full, shutdown) resolve the ticket immediately
        with a structured ``shed`` response; use
        :meth:`submit_or_raise` to get them as exceptions.
        """
        if isinstance(job, SpecPoint):
            job = Job(point=job)
        elif isinstance(job, Mapping):
            job = Job(point=SpecPoint.from_dict(dict(job)))
        if priority is not None:
            job.priority = int(priority)
        if budget is not None:
            job.budget = budget
        _validate_job_point(job.point)
        ticket = JobTicket(job)
        with self._lock:
            self._tickets[job.job_id] = ticket
        job.submitted_at = self._clock()

        # Tracing: a job may arrive already carrying a context (the
        # cluster front door minted it and owns the root span); with
        # ``tracing=True`` a bare job gets one minted here, in which
        # case this service emits the root record too.  Untraced jobs
        # skip all of this — no log, no records, no wire change.
        minted_root = False
        if job.trace is None and self.tracing:
            job.trace = root_context(job.point.key())
            minted_root = True
        if job.trace is not None:
            with self._lock:
                self._trace_logs[job.job_id] = TraceLog(
                    job.trace,
                    process=self.name,
                    minted_root=minted_root,
                    start=job.submitted_at,
                )

        if self._closed:
            self._finish_shed(job, reason="shutdown")
            return ticket

        # Admission estimate: if even the *optimistic* end of the
        # closed-form bound overshoots the job's cost quota, the full
        # simulation is guaranteed to be cancelled mid-run — degrade
        # now instead of burning a worker on a doomed attempt.
        est_reason = self._admission_estimate(job)
        if est_reason is not None:
            self._finish_degraded(
                job,
                reason="admission-estimate",
                attempts=0,
                detail={"exceeds": est_reason},
            )
            return ticket

        # Breaker shortcut: a hard-open breaker (cooldown not yet
        # elapsed) means this job would degrade anyway — answer now
        # and keep the queue for runnable work.  Once a probe is due
        # the job is admitted so a worker can canary.
        snap = self._breaker(job.point.algorithm).snapshot()
        if snap["state"] == OPEN and not snap["probe_due"]:
            self._finish_degraded(
                job, reason="breaker-open", attempts=0, detail=snap
            )
            return ticket

        try:
            admitted, evicted = self._queue.offer(job, job.priority)
        except QueueClosed:
            self._finish_shed(job, reason="shutdown")
            return ticket
        if evicted is not None:
            self._finish_shed(evicted, reason="evicted")
        if not admitted:
            self._finish_shed(job, reason="queue-full")
        self._publish_gauges()
        return ticket

    def submit_or_raise(self, job, **kw) -> JobTicket:
        """Like :meth:`submit`, but admission sheds raise :class:`Overloaded`."""
        ticket = self.submit(job, **kw)
        if ticket.done():
            response = ticket.result(timeout=0)
            if response.status == SHED:
                raise Overloaded(response)
        return ticket

    def _admission_estimate(self, job: Job) -> "str | None":
        budget = job.budget or self.default_budget
        if budget is None:
            return None
        pred = predict_point(job.point)
        if pred is None:
            return None
        lows = {name: lo for name, (lo, _hi) in pred.bounds().items()}
        for cap_name, field in (
            ("max_words", "words"),
            ("max_messages", "messages"),
            ("max_flops", "flops"),
        ):
            cap = getattr(budget, cap_name)
            if cap is not None and lows[field] > cap:
                return field
        return None

    # -- execution --------------------------------------------------------

    def run_pending(self, max_jobs: "int | None" = None) -> int:
        """Run queued jobs on the calling thread (``workers=0`` mode).

        Returns how many jobs ran.  With worker threads active this is
        still safe — it just competes for the same queue.
        """
        ran = 0
        while max_jobs is None or ran < max_jobs:
            job = self._queue.pop(timeout=0)
            if job is None:
                break
            self._execute(job)
            ran += 1
        return ran

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=0.2)
            if job is None:
                if self._queue.closed:
                    return
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        with self._lock:
            self._inflight += 1
        self._publish_gauges()
        try:
            self._run_job(job)
        finally:
            with self._lock:
                self._inflight -= 1
            self._publish_gauges()

    def _run_job(self, job: Job) -> None:
        point = job.point
        if job.trace is not None or self.on_event is not None:
            popped_at = self._clock()
            with self._lock:
                log = self._trace_logs.get(job.job_id)
            if log is not None:
                log.add("queue", popped_at, job_id=job.job_id)
            self._emit(
                "queue_wait",
                seconds=max(0.0, popped_at - job.submitted_at),
                job_id=job.job_id,
                priority=priority_name(job.priority),
            )
        breaker = self._breaker(point.algorithm)
        budget = job.budget or self.default_budget
        guard = None
        if budget is not None and not budget.is_unlimited():
            guard = budget.guard(clock=self._clock, start=job.submitted_at)

        # Deadline may have expired while the job sat in the queue.
        if guard is not None:
            try:
                guard.check_deadline()
            except BudgetExceeded:
                self._finish_degraded(
                    job,
                    reason="deadline",
                    attempts=0,
                    detail={"spent": guard.spent()},
                )
                return

        if not breaker.allow():
            self._finish_degraded(
                job,
                reason="breaker-open",
                attempts=0,
                detail=breaker.snapshot(),
            )
            return
        if breaker.probing():
            if not self._canary(point):
                breaker.record_failure()
                self._finish_degraded(
                    job,
                    reason="canary-failed",
                    attempts=0,
                    detail=breaker.snapshot(),
                )
                return
            breaker.record_success()

        if self.cache is not None:
            entry = self.cache.get(point)
            if entry is not None:
                try:
                    m = Measurement.from_dict(entry["measurement"])
                except (KeyError, TypeError, ValueError):
                    m = None
                if m is not None:
                    breaker.record_success()
                    self._finish_done(
                        job, m, attempts=0, detail={"cached": True}
                    )
                    return

        last_error: "Exception | None" = None
        for attempt in range(1, self.retries + 2):
            try:
                if guard is not None:
                    guard.check_deadline()
                m, _dt = execute_point(point, guard=guard)
            except BudgetExceeded as exc:
                if exc.reason == "deadline":
                    # a deadline blowout is a timeout — breaker-relevant
                    breaker.record_failure()
                detail = {
                    "violated": exc.reason,
                    "spent": exc.spent,
                    "limit": exc.limit,
                }
                if guard is not None:
                    detail["totals"] = guard.spent()
                self._finish_degraded(
                    job,
                    reason=f"budget-{exc.reason}",
                    attempts=attempt,
                    detail=detail,
                )
                return
            except ValidationError as exc:
                # client error, not backend health: no breaker impact
                self._finish_failed(
                    job,
                    reason="invalid-point",
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=attempt,
                )
                return
            except Exception as exc:  # noqa: BLE001 - terminal boundary
                breaker.record_failure()
                last_error = exc
                METRICS.counter(
                    "repro_service_retries_total",
                    algorithm=point.algorithm,
                ).inc()
                self._emit(
                    "retry",
                    algorithm=point.algorithm,
                    job_id=job.job_id,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                if breaker.state == OPEN:
                    # the breaker tripped on this job's own failures;
                    # stop hammering the backend and serve the ladder
                    self._finish_degraded(
                        job,
                        reason="breaker-open",
                        attempts=attempt,
                        detail={
                            "last_error": f"{type(exc).__name__}: {exc}"
                        },
                    )
                    return
                continue
            else:
                breaker.record_success()
                if self.cache is not None:
                    self.cache.put(point, m.to_dict(), _dt)
                detail = {}
                if guard is not None:
                    detail["spent"] = guard.spent()
                self._finish_done(job, m, attempts=attempt, detail=detail)
                return

        self._finish_failed(
            job,
            reason=self._classify_error(last_error),
            error=(
                f"{type(last_error).__name__}: {last_error}"
                if last_error is not None
                else "unknown"
            ),
            attempts=self.retries + 1,
        )

    @staticmethod
    def _classify_error(exc: "Exception | None") -> str:
        if isinstance(exc, FaultExhausted):
            return "fault-exhausted"
        if isinstance(exc, SilentCorruptionError):
            # the ABFT retry ladder exhausted its attempts with an
            # uncorrectable double fault every time
            return "silent-corruption"
        if isinstance(exc, NotPositiveDefiniteError):
            return "not-positive-definite"
        return "execution-error"

    def _canary(self, point: SpecPoint) -> bool:
        """Run the cheap probe; True when the backend looks healthy."""
        try:
            execute_point(canary_point(point, self.canary_n))
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            METRICS.counter(
                "repro_service_canary_runs_total",
                algorithm=point.algorithm,
                outcome="failure",
            ).inc()
            self._emit("canary", algorithm=point.algorithm, outcome="failure")
            return False
        METRICS.counter(
            "repro_service_canary_runs_total",
            algorithm=point.algorithm,
            outcome="success",
        ).inc()
        self._emit("canary", algorithm=point.algorithm, outcome="success")
        return True

    # -- terminal transitions ----------------------------------------------

    def _attach_trace(
        self, log: TraceLog, job: Job, response: ServiceResponse
    ) -> ServiceResponse:
        """Record the terminal span (and root, if minted) onto ``response``.

        The terminal span is the job's *work* leaf and carries the
        measurement's simulated counter deltas; everything before it
        (queue, admission) is zero-counter, so the leaf-sum invariant
        (:func:`repro.observability.tracing.validate_trace`) holds by
        construction.  When the engine observed the run, the
        measurement's span-profile tree is grafted under ``execute``,
        splitting the same counters into per-phase leaves.
        """
        now = self._clock()
        m = response.measurement
        counts = {
            "words": 0 if m is None else int(m.words),
            "messages": 0 if m is None else int(m.messages),
            "flops": 0 if m is None else int(m.flops),
        }
        if response.status == DONE:
            name = "cache" if response.detail.get("cached") else "execute"
            extra = {}
            if name == "execute":
                # Compile-vs-replay attribution lives on the span only
                # (the trace key is stripped from golden comparisons);
                # same worker thread as the run, so the thread-local
                # mode is this job's.
                from repro.schedule import last_run_mode

                extra["schedule"] = last_run_mode()
            if m is not None and getattr(m, "abft", None):
                stats = (m.abft or {}).get("stats") or {}
                extra["abft_detected"] = int(stats.get("detected", 0))
                extra["abft_corrected"] = int(stats.get("corrected", 0))
                extra["abft_verified"] = bool(stats.get("verified"))
            span = log.add(
                name,
                now,
                status=DONE,
                attempts=response.attempts,
                **counts,
                **extra,
            )
            if name == "execute" and m is not None and m.profile:
                log.graft_profile(span, m.profile)
        elif response.status == DEGRADED:
            log.add(
                "degrade",
                now,
                status=DEGRADED,
                reason=response.reason,
                attempts=response.attempts,
                **counts,
            )
        elif response.status == SHED:
            log.add("admission", now, status=SHED, reason=response.reason)
        else:
            log.add(
                "failed",
                now,
                status=FAILED,
                reason=response.reason,
                attempts=response.attempts,
            )
        if log.minted_root:
            log.close_root(
                now,
                t_start=job.submitted_at,
                status=response.status,
                algorithm=job.point.algorithm,
                job_id=job.job_id,
                **counts,
            )
        return dataclasses.replace(response, trace=log.records())

    def _emit_terminal(self, job: Job, response: ServiceResponse) -> None:
        attrs = {"job_id": job.job_id, "algorithm": job.point.algorithm}
        if response.status == DONE:
            self._emit(
                "done", cached=bool(response.detail.get("cached")), **attrs
            )
        else:
            self._emit(response.status, reason=response.reason, **attrs)

    def _finish(self, job: Job, response: ServiceResponse) -> None:
        with self._lock:
            log = self._trace_logs.pop(job.job_id, None)
        if log is not None:
            response = self._attach_trace(log, job, response)
        if self.on_event is not None:
            self._emit_terminal(job, response)
        with self._lock:
            ticket = self._tickets.get(job.job_id)
            self._status_counts[response.status] = (
                self._status_counts.get(response.status, 0) + 1
            )
        METRICS.counter(
            "repro_service_jobs_total",
            status=response.status,
            priority=priority_name(job.priority),
        ).inc()
        METRICS.histogram(
            "repro_service_job_wall_seconds",
            priority=priority_name(job.priority),
        ).observe(response.wall_seconds)
        if ticket is not None:
            ticket.resolve(response)

    def _wall(self, job: Job) -> float:
        return max(0.0, self._clock() - job.submitted_at)

    def _finish_done(
        self, job: Job, m: Measurement, *, attempts: int, detail: dict
    ) -> None:
        # schema v3: a protected job's response says whether the
        # checksum protection verified end-to-end; unprotected jobs
        # omit the key entirely
        verified = None
        abft_rec = getattr(m, "abft", None)
        if abft_rec is not None:
            verified = bool((abft_rec.get("stats") or {}).get("verified"))
        elif job.point.abft:
            verified = False
        self._finish(
            job,
            ServiceResponse(
                job_id=job.job_id,
                status=DONE,
                measurement=m,
                attempts=attempts,
                wall_seconds=self._wall(job),
                priority=job.priority,
                detail=detail,
                verified=verified,
            ),
        )

    def _finish_degraded(
        self,
        job: Job,
        *,
        reason: str,
        attempts: int,
        detail: "dict | None" = None,
    ) -> None:
        pred = predict_point(job.point)
        if pred is None:
            # no closed form to fall back on: the honest answer is a
            # failure that says which rung of the ladder was missing
            self._finish_failed(
                job,
                reason="no-closed-form",
                error=f"degradation ({reason}) has no Table 1/2 row for "
                f"{job.point.label()}",
                attempts=attempts,
                extra_detail={"degrade_reason": reason},
            )
            return
        METRICS.counter("repro_service_degraded_total", reason=reason).inc()
        self._finish(
            job,
            ServiceResponse(
                job_id=job.job_id,
                status=DEGRADED,
                reason=reason,
                detail=dict(detail or {}),
                measurement=degraded_measurement(job.point, pred),
                prediction=pred,
                attempts=attempts,
                wall_seconds=self._wall(job),
                priority=job.priority,
                # a closed-form answer never ran the protection
                verified=False if job.point.abft else None,
            ),
        )

    def _finish_shed(self, job: Job, *, reason: str) -> None:
        METRICS.counter("repro_service_shed_total", reason=reason).inc()
        self._finish(
            job,
            ServiceResponse(
                job_id=job.job_id,
                status=SHED,
                reason=reason,
                wall_seconds=self._wall(job),
                priority=job.priority,
                detail={"queue": self._queue.snapshot()},
            ),
        )

    def _finish_failed(
        self,
        job: Job,
        *,
        reason: str,
        error: str,
        attempts: int,
        extra_detail: "dict | None" = None,
    ) -> None:
        detail = {"error": error}
        detail.update(extra_detail or {})
        self._finish(
            job,
            ServiceResponse(
                job_id=job.job_id,
                status=FAILED,
                reason=reason,
                detail=detail,
                attempts=attempts,
                wall_seconds=self._wall(job),
                priority=job.priority,
                verified=False if job.point.abft else None,
            ),
        )

    # -- introspection -----------------------------------------------------

    def _publish_gauges(self) -> None:
        METRICS.gauge("repro_service_queue_depth").set(len(self._queue))
        with self._lock:
            METRICS.gauge("repro_service_inflight").set(self._inflight)

    def health(self) -> dict:
        """Liveness snapshot: queue, in-flight, breakers, job counts."""
        with self._lock:
            breakers = {
                alg: b.snapshot() for alg, b in sorted(self._breakers.items())
            }
            counts = dict(self._status_counts)
            inflight = self._inflight
            closed = self._closed
        return {
            "accepting": not closed,
            "queue": self._queue.snapshot(),
            "inflight": inflight,
            "workers": self.workers,
            "breakers": breakers,
            "jobs": counts,
        }

    def readiness(self) -> dict:
        """Readiness snapshot: may this instance take *new* traffic?

        ``ready`` is false when the service is closed or the waiting
        room is full (a submit right now would shed or evict).
        """
        h = self.health()
        q = h["queue"]
        ready = h["accepting"] and q["depth"] < q["capacity"]
        return {"ready": ready, "accepting": h["accepting"], "queue": q}

    # -- lifecycle ---------------------------------------------------------

    def stop(self, *, shed_pending: bool = True, timeout: float = 10.0) -> None:
        """Shut down: refuse new work, resolve the backlog, join workers.

        ``shed_pending=True`` (default) resolves every queued job with
        a ``shed``/``shutdown`` response immediately; ``False`` lets
        the workers drain the backlog first (``workers=0`` callers
        should pump :meth:`run_pending` before stopping).
        """
        with self._lock:
            self._closed = True
        if shed_pending:
            for job in self._queue.drain():
                self._finish_shed(job, reason="shutdown")
        self._queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        self._publish_gauges()

    def __enter__(self) -> "FactorizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "FactorizationService",
    "Overloaded",
    "canary_point",
]
