"""``repro top``: a live terminal dashboard over the serving cluster.

Renders, once per refresh interval, what an operator staring at the
cluster wants on one screen:

* per-shard rows — liveness, queue depth/capacity, in-flight count,
  worst breaker state, job counts by status, store-tier hits;
* the SLO panel — availability vs target, error-budget burn, exact
  p50/p90/p99/p999 latency over terminal responses;
* the durability panel (when the cluster journals and/or supervises) —
  journal path and records written, per-shard supervision state and
  restarts-vs-budget, total respawns, recovered-job count;
* the telemetry tail — the most recent structured events off the bus
  (sheds, breaker transitions, retries, store tiers, respawns).

Two ways to drive it:

* ``repro top --demo N`` builds its own cluster (inline by default —
  fully deterministic; ``--process`` for real shard subprocesses),
  pushes a demo workload through it and renders ``--frames`` frames.
  This is also what CI smoke-tests.
* ``render_dashboard`` is a pure function of the health/SLO/telemetry
  snapshots — embed it over any live cluster (``repro serve`` holds
  one) or feed it persisted health JSON.

Rendering is plain text with no cursor tricks beyond an ANSI
clear-screen between frames (suppressed by ``--no-clear``, which CI
uses to keep logs readable).
"""

from __future__ import annotations

import argparse
from typing import Any, Iterable, Mapping

#: Breaker state -> compact glyph for the shard table.
_BREAKER_GLYPH = {"closed": "ok", "half-open": "half", "open": "OPEN"}

#: Terminal statuses in display order.
_STATUSES = ("done", "degraded", "shed", "failed")


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _shard_row(name: str, h: Mapping[str, Any]) -> str:
    if not h.get("reachable", False):
        return f"  {name:<12} DOWN"
    q = h.get("queue") or {}
    jobs = h.get("jobs") or {}
    store = h.get("store") or {}
    breakers = h.get("breakers") or {}
    worst = "closed"
    for snap in breakers.values():
        state = snap.get("state", "closed")
        if state == "open":
            worst = "open"
            break
        if state == "half-open":
            worst = "half-open"
    counts = "/".join(str(jobs.get(s, 0)) for s in _STATUSES)
    tiers = (
        f"{store.get('memory', 0)}m {store.get('shared', 0)}s "
        f"{store.get('disk', 0)}d {store.get('miss', 0)}x"
    )
    return (
        f"  {name:<12} up   q {q.get('depth', 0):>3}/{q.get('capacity', 0):<3}"
        f" infl {h.get('inflight', 0):>3}  brk {_BREAKER_GLYPH[worst]:<4}"
        f" jobs {counts:<15} store {tiers}"
    )


def render_dashboard(
    health: Mapping[str, Any],
    *,
    slo: "Mapping[str, Any] | None" = None,
    events: "Iterable[Any] | None" = None,
    title: str = "repro top",
    max_events: int = 8,
) -> str:
    """Render one dashboard frame from snapshots (pure — no I/O, no clock).

    ``health`` is :meth:`ServingCluster.health` output (``slo``
    defaults to its embedded ``"slo"`` key); ``events`` is an optional
    iterable of :class:`~repro.serving.telemetry.TelemetryEvent`.
    """
    slo = slo if slo is not None else health.get("slo")
    lines = []
    ring = health.get("ring") or {}
    jobs = health.get("jobs") or {}
    total_jobs = sum(jobs.values())
    lines.append(
        f"{title} — mode {health.get('mode', '?')}"
        f"  ring {len(ring.get('nodes', ()))} shard(s)"
        f"  accepting {'yes' if health.get('accepting') else 'NO'}"
        f"  inflight {health.get('inflight', 0)}"
        f"  rebalances {health.get('rebalances', 0)}"
    )
    counts = "  ".join(f"{s} {jobs.get(s, 0)}" for s in _STATUSES)
    lines.append(f"jobs {total_jobs}: {counts}")
    lines.append("")
    lines.append("shards")
    for name, h in sorted((health.get("shards") or {}).items()):
        lines.append(_shard_row(name, h))
    if slo:
        target = slo.get("target") or {}
        budget = slo.get("error_budget") or {}
        lat = slo.get("latency") or {}
        burn = budget.get("burn", 0.0)
        violations = slo.get("violations") or []
        lines.append("")
        lines.append(
            f"slo [{target.get('name', 'default')}]"
            f"  avail {slo.get('availability', 1.0) * 100:.3f}%"
            f" (target {target.get('availability', 0.0) * 100:.3f}%)"
            f"  budget burn {burn:.2f}x"
            f"  {'VIOLATED: ' + ','.join(violations) if violations else 'ok'}"
        )
        lines.append(
            "latency  "
            + "  ".join(
                f"{q} {_fmt_latency(lat.get(q, 0.0))}"
                for q in ("p50", "p90", "p99", "p999")
            )
        )
    journal = health.get("journal")
    supervisor = health.get("supervisor")
    if journal or supervisor or health.get("recovered"):
        lines.append("")
        bits = []
        if journal:
            sync = "fsync" if journal.get("sync", True) else "nosync"
            bits.append(
                f"journal {journal.get('records', 0)} rec ({sync})"
                f" @ {journal.get('path', '?')}"
            )
        if health.get("recovered"):
            bits.append(f"recovered {health['recovered']}")
        if supervisor:
            bits.append(f"respawns {supervisor.get('respawns', 0)}")
        lines.append("durability  " + "  ".join(bits))
        for name, st in sorted((supervisor or {}).get("shards", {}).items()):
            lines.append(
                f"  {name:<12} {st.get('state', '?'):<10}"
                f" restarts {st.get('restarts', 0)}/{st.get('budget', 0)}"
            )
    if events is not None:
        tail = list(events)[-max_events:]
        lines.append("")
        lines.append(f"events (last {len(tail)})")
        for e in tail:
            attrs = " ".join(f"{k}={v}" for k, v in e.attrs)
            lines.append(f"  {e.t:>10.3f} {e.shard:<12} {e.kind:<10} {attrs}")
    return "\n".join(lines) + "\n"


def _demo_cluster(args) -> "tuple[Any, Any]":
    """Build the demo cluster + workload iterator for ``--demo``."""
    from repro.serving.client import ServingClient
    from repro.serving.workloads import demo_workload

    client = ServingClient.cluster(
        shards=args.shards,
        mode="process" if args.process else "inline",
        tracing=True,
        telemetry=True,
        monitor_interval=0.5 if args.process else None,
        health_dir=args.health_dir,
    )
    return client, demo_workload(args.demo)


def top_main(argv: "list[str] | None" = None) -> int:
    """``repro top`` entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live terminal dashboard over a serving cluster.",
    )
    parser.add_argument(
        "--demo",
        type=int,
        default=24,
        metavar="N",
        help="drive N demo jobs through a self-contained cluster "
        "(default 24)",
    )
    parser.add_argument(
        "--shards", type=int, default=3, help="shard count (default 3)"
    )
    parser.add_argument(
        "--process",
        action="store_true",
        help="real shard subprocesses (default: deterministic inline)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="K",
        help="render K frames then exit (0 = until the workload drains); "
        "CI uses small K",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between frames in process mode (default 0.5)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between frames (log-friendly)",
    )
    parser.add_argument(
        "--health-dir",
        default=None,
        help="process mode: shard health snapshot directory",
    )
    args = parser.parse_args(argv)

    import time as _time

    client, workload = _demo_cluster(args)
    try:
        tickets = [client.submit_async(job) for job in workload]
        frame = 0
        while True:
            if client.needs_pump:
                # inline: a bounded slice of work per frame, so the
                # dashboard shows the workload actually draining
                client.pump(max_jobs=max(1, len(tickets) // 4))
            backend = client.backend
            text = render_dashboard(
                backend.health(),
                events=(
                    backend.telemetry.recent()
                    if backend.telemetry is not None
                    else None
                ),
            )
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(text, end="", flush=True)
            frame += 1
            done = all(t.done() for t in tickets)
            if args.frames and frame >= args.frames:
                break
            if not args.frames and done:
                break
            if not client.needs_pump:
                _time.sleep(args.interval)
        return 0
    finally:
        client.close()


__all__ = ["render_dashboard", "top_main"]
