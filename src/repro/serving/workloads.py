"""Deterministic workload builders shared by the CLI, benches and soaks.

One place to construct the canonical job mixes, so ``repro serve
--demo``, the serving/cluster benchmarks and the soak suites all drive
the *same* traffic shapes instead of each hand-rolling a divergent
copy.  Every builder is a pure function of ``(count, seed)`` — the
determinism suites rely on byte-identical workloads across runs and
across processes.

Builders
--------
:func:`demo_workload`
    Clean mixed-priority, mixed-kind jobs (verification on, no faults,
    no budgets) — the ``repro serve --demo`` shape.
:func:`bench_workload`
    The throughput-bench mix: both kinds, occasional fault plans and
    tight word budgets (the historical ``BENCH_5`` workload).
:func:`soak_workload`
    The chaos mix: heavier faults, word *and* flop budgets — what the
    CI soak drives through admission control.
:func:`repeated_spec_workload`
    ``count`` jobs cycling over a small pool of ``unique`` distinct
    specs.  Repeat-heavy traffic is the serving regime the cluster's
    consistent-hash affinity and shared result store are built for;
    this is the job mix the cluster benchmark feeds to both sides of
    its baseline/cluster comparison.
"""

from __future__ import annotations

from repro.experiments.spec import PARALLEL, SEQUENTIAL, SpecPoint
from repro.faults.plan import FaultPlan
from repro.serving.api import Job
from repro.serving.budget import Budget
from repro.serving.queue import parse_priority

#: The sequential algorithms the mixes cycle through.
SEQ_ALGOS = ("naive-left", "lapack", "toledo", "square-recursive")
#: The priority rotation (normal-heavy, as real traffic is).
PRIORITIES = ("low", "normal", "normal", "high")


def demo_workload(count: int, seed: int = 0) -> "list[Job]":
    """Clean deterministic mix: both kinds, verification on."""
    jobs = []
    for i in range(count):
        if i % 5 == 4:
            n = 16 + 8 * (i % 3)
            point = SpecPoint(
                kind=PARALLEL,
                algorithm="pxpotrf",
                layout="block-cyclic",
                n=n,
                M=None,
                P=4,
                block=max(1, n // 2),
                seed=seed + i,
                verify=True,
            )
        else:
            n = 24 + 8 * (i % 4)
            point = SpecPoint(
                kind=SEQUENTIAL,
                algorithm=SEQ_ALGOS[i % len(SEQ_ALGOS)],
                layout="column-major",
                n=n,
                M=4 * n,
                seed=seed + i,
                verify=True,
            )
        jobs.append(
            Job(point=point, priority=parse_priority(PRIORITIES[i % 4]))
        )
    return jobs


def bench_workload(count: int, seed: int = 0) -> "list[Job]":
    """The throughput-bench mix: fault plans and tight word budgets."""
    jobs = []
    for i in range(count):
        budget = None
        if i % 4 == 0:
            budget = Budget(max_words=2500 + 500 * (i % 5))
        if i % 5 == 4:
            n = 16 + 8 * (i % 2)
            faults = (
                FaultPlan(seed=seed + i, drop=0.3, max_attempts=3).freeze()
                if i % 10 == 9
                else ()
            )
            point = SpecPoint(
                kind=PARALLEL,
                algorithm="pxpotrf",
                layout="block-cyclic",
                n=n,
                M=None,
                P=4,
                block=n // 2,
                seed=seed + i,
                verify=False,
                faults=faults,
            )
        else:
            n = 24 + 8 * (i % 4)
            point = SpecPoint(
                kind=SEQUENTIAL,
                algorithm=SEQ_ALGOS[i % len(SEQ_ALGOS)],
                layout="column-major",
                n=n,
                M=4 * n,
                seed=seed + i,
                verify=False,
            )
        jobs.append(
            Job(
                point=point,
                priority=parse_priority(PRIORITIES[i % 4]),
                budget=budget,
            )
        )
    return jobs


def soak_workload(count: int, seed: int = 0) -> "list[Job]":
    """The chaos mix: heavier faults, word and flop budgets."""
    jobs = []
    for i in range(count):
        priority = parse_priority(PRIORITIES[i % 4])
        budget = None
        if i % 3 == 0:
            # tight simulated-cost caps: some of these will cancel
            budget = Budget(max_words=2000 + 500 * (i % 7))
        elif i % 3 == 1:
            budget = Budget(max_flops=4000 + 1000 * (i % 5))
        if i % 5 == 4:
            n = 16 + 8 * (i % 2)
            faults = None
            if i % 10 == 9:
                # heavy drops, few attempts: some FaultExhausted
                faults = FaultPlan(
                    seed=seed + i, drop=0.4, max_attempts=2
                ).freeze()
            point = SpecPoint(
                kind=PARALLEL,
                algorithm="pxpotrf",
                layout="block-cyclic",
                n=n,
                M=None,
                P=4,
                block=n // 2,
                seed=seed + i,
                verify=False,
                faults=faults or (),
            )
        else:
            faults = None
            if i % 7 == 6:
                faults = FaultPlan(
                    seed=seed + i, read_fault=0.05, max_attempts=3
                ).freeze()
            n = 24 + 8 * (i % 4)
            point = SpecPoint(
                kind=SEQUENTIAL,
                algorithm=SEQ_ALGOS[i % len(SEQ_ALGOS)],
                layout="column-major",
                n=n,
                M=4 * n,
                seed=seed + i,
                verify=False,
                faults=faults or (),
            )
        jobs.append(Job(point=point, priority=priority, budget=budget))
    return jobs


def repeated_spec_workload(
    count: int, seed: int = 0, *, unique: int = 12, n: "int | None" = None
) -> "list[Job]":
    """``count`` jobs cycling a pool of ``unique`` distinct specs.

    The specs come from :func:`demo_workload`'s clean mix (seeded), so
    the pool spans both kinds and all sequential algorithms; the i-th
    job reuses spec ``i % unique``.  Identical specs hash to the same
    shard (affinity) and, once computed, are cache hits everywhere —
    the workload that separates a cluster with a shared result store
    from N isolated services.

    ``n`` rebases the pool's matrix dimensions (keeping the demo mix's
    per-spec stagger and the derived ``M``/``block``): the cluster
    benchmark uses it to make one spec's simulation expensive relative
    to a cache hit, which is the regime repeat-heavy serving lives in.
    """
    if unique < 1:
        raise ValueError(f"unique must be >= 1, got {unique}")
    pool = demo_workload(unique, seed=seed)
    if n is not None:
        from dataclasses import replace

        rebased = []
        for i, template in enumerate(pool):
            point = template.point
            if point.kind == PARALLEL:
                nn = int(n) + 8 * (i % 3)
                point = replace(point, n=nn, block=max(1, nn // 2))
            else:
                nn = int(n) + 8 * (i % 4)
                point = replace(point, n=nn, M=4 * nn)
            rebased.append(Job(point=point, priority=template.priority))
        pool = rebased
    jobs = []
    for i in range(count):
        template = pool[i % unique]
        jobs.append(
            Job(point=template.point, priority=template.priority)
        )
    return jobs


__all__ = [
    "PRIORITIES",
    "SEQ_ALGOS",
    "bench_workload",
    "demo_workload",
    "repeated_spec_workload",
    "soak_workload",
]
