"""Crash-safe write-ahead job journal for the serving front door.

The cluster's one remaining single point of loss (PR 6/7) was the
front door itself: an accepted job lived only in the in-memory
``_inflight`` map, so killing the front-door process lost every job
that had been admitted but not yet answered.  This module closes that
hole with a write-ahead journal in the same spirit as the
checkpoint/recovery discipline PR 3 proved bit-identical for PxPOTRF:

* :class:`JobJournal` — an **append-only JSONL** file.  Each record is
  one line of canonical JSON (sorted keys, compact separators).  The
  sync discipline is asymmetric, and deliberately so.  An ``accepted``
  record is the WAL write proper — the only copy of a job that has
  been admitted but not yet routed — so it is *flushed* before the
  append returns (and before the cluster routes the job): flushed
  bytes are in the page cache, which survives a SIGKILL of the front
  door.  Machine-crash durability is **group-committed**: every
  ``sync_every``-th acceptance (default 64), plus :meth:`close` and any
  injected crash, takes an ``os.fsync`` — bounding what a *power*
  failure can lose to the last ``sync_every`` acceptances while
  keeping the fsync rate an order of magnitude below one-per-record
  (under concurrent shard store writes an fsync serializes on the
  filesystem journal and costs ~10x its idle price; per-record syncing
  measurably throttles admission).  The bookkeeping records
  (``assigned``, the terminals) are cheaper still — *write-behind*:
  appended to the same handle under the same lock (so ordering is
  exact) but left in the userspace buffer until the next flush.
  Losing a tail of them is safe by construction — replay then merely
  resubmits jobs that had in fact finished, resubmission is idempotent
  (content-addressed store dedup) and each recovered ticket still
  resolves exactly once.  The payoff is that journaling stays off the
  hot path: the result-reader threads never touch the disk, and the
  submit thread syncs once per group.  Appends never rewrite the file,
  so a crash can only tear the final buffered span, which replay
  detects and ignores line by line (a torn record was never
  acknowledged).
* Record kinds mirror a job's front-door lifecycle: ``accepted``
  (the full v2 job wire document plus the job's content-address),
  ``assigned`` (which shard), and the terminal pair ``completed`` /
  ``shed``.  Records are keyed by the job's **content-address**
  (:meth:`SpecPoint.key`), so replay is idempotent: resubmitting a
  job whose result already reached the shared store is a cache hit,
  not a recomputation.
* :func:`replay_journal` — fold a journal (one file, or a directory
  holding one) back into the set of accepted-but-unterminated jobs,
  in acceptance order.  ``ServingCluster.recover`` resubmits exactly
  those, which is what delivers every accepted job exactly one
  terminal response across a front-door crash.

Determinism: records carry the cluster's *injected* clock reading and
a per-incarnation ``seq`` — never wall time, pids, or thread ids — so
an inline (virtual-clock) chaos soak writes a byte-reproducible
journal, up to the process-global job-id counter.

Chaos: ``crash_at_record=k`` arms the front-door-crash fault of
:class:`~repro.faults.plan.ClusterFaultPlan` — the journal durably
writes record ``k`` and then crashes, either by raising
:class:`JournalCrash` (inline tests) or via ``os._exit`` (the CLI,
modeling a SIGKILL: no cleanup, daemon shards die with the parent).
"""

from __future__ import annotations

import json
import os
import threading

#: Journal record kinds, in lifecycle order.
ACCEPTED = "accepted"
ASSIGNED = "assigned"
COMPLETED = "completed"
SHED_RECORD = "shed"

RECORD_KINDS = (ACCEPTED, ASSIGNED, COMPLETED, SHED_RECORD)

#: Record kinds that terminate a job (exactly one per accepted job).
TERMINAL_RECORDS = (COMPLETED, SHED_RECORD)

#: The journal file name inside a journal directory.
JOURNAL_FILE = "journal.jsonl"

#: Exit code of an injected front-door crash (``crash_mode="exit"``);
#: ``os.EX_TEMPFAIL`` — the condition is transient, recovery applies.
CRASH_EXIT_CODE = 75


class JournalCrash(RuntimeError):
    """The armed front-door crash fired (``crash_mode="raise"``)."""


def journal_path(path_or_dir: str) -> str:
    """Resolve a journal location: a ``.jsonl`` file, or its directory."""
    if path_or_dir.endswith(".jsonl"):
        return path_or_dir
    return os.path.join(path_or_dir, JOURNAL_FILE)


class JobJournal:
    """Append-only, fsync'd JSONL write-ahead journal (see module doc).

    Parameters
    ----------
    directory:
        Journal directory (created if missing); the journal appends to
        ``journal.jsonl`` inside it.  An existing file is appended to,
        never truncated — recovery incarnations extend the same
        journal, so replay always sees the merged history.
    clock:
        Injected time source stamped into every record (the cluster
        passes its own clock: a :class:`ManualClock` in inline mode,
        so inline journals are byte-reproducible).
    sync:
        ``True`` (default) flushes every ``accepted`` append
        (SIGKILL-safety before routing) and fsyncs every
        ``sync_every``-th one (bounded machine-crash window) — the WAL
        crash contract.  ``False`` buffers everything until
        :meth:`close`; benches use it to isolate the sync cost.
    sync_every:
        Group-commit width: acceptances per fsync (default 64; 1 is
        strict fsync-per-acceptance).
    crash_at_record:
        Chaos: after durably writing the N-th record of *this
        incarnation* (1-based), crash the front door.
    crash_mode:
        ``"raise"`` (default) raises :class:`JournalCrash`;
        ``"exit"`` calls ``os._exit(CRASH_EXIT_CODE)`` — no cleanup,
        the closest portable stand-in for SIGKILL.
    """

    def __init__(
        self,
        directory: str,
        *,
        clock=None,
        sync: bool = True,
        sync_every: int = 64,
        crash_at_record: "int | None" = None,
        crash_mode: str = "raise",
    ) -> None:
        if int(sync_every) < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        if crash_mode not in ("raise", "exit"):
            raise ValueError(
                f"crash_mode must be 'raise' or 'exit', got {crash_mode!r}"
            )
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = journal_path(self.directory)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.sync = bool(sync)
        self.sync_every = int(sync_every)
        self._unsynced_accepts = 0
        self.crash_at_record = (
            None if crash_at_record is None else int(crash_at_record)
        )
        self.crash_mode = crash_mode
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        #: Records durably written by this incarnation.
        self.records_written = 0
        #: fsync calls taken (one per accepted record when ``sync``).
        self.fsyncs = 0

    # -- the one append path ---------------------------------------------

    def _append(self, record: dict, *, durable: bool = False) -> None:
        crash = False
        with self._lock:
            if self._fh.closed:
                return  # journal closed mid-shutdown: drop silently
            record["seq"] = self.records_written + 1
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            self._fh.write(line + "\n")
            self.records_written += 1
            crash = (
                self.crash_at_record is not None
                and self.records_written >= self.crash_at_record
            )
            if durable and self.sync:
                self._fh.flush()
                self._unsynced_accepts += 1
            if crash or (
                self.sync and self._unsynced_accepts >= self.sync_every
            ):
                # group commit — and the crash contract promises record
                # N is durable before the crash fires, so that path
                # syncs unconditionally
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
                self._unsynced_accepts = 0
        if crash:
            # record N is durable; everything after this instant is lost
            if self.crash_mode == "exit":
                os._exit(CRASH_EXIT_CODE)
            raise JournalCrash(
                f"injected front-door crash at journal record "
                f"{self.records_written}"
            )

    def _base(self, kind: str, job_id: str, key: str) -> dict:
        return {
            "record": kind,
            "t": float(self._clock()),
            "job_id": str(job_id),
            "key": str(key),
        }

    # -- lifecycle records ------------------------------------------------

    def record_accepted(self, job, key: str, *, recovered: bool = False) -> None:
        """The WAL write: the job's full wire document, pre-routing."""
        rec = self._base(ACCEPTED, job.job_id, key)
        rec["job"] = job.to_wire()
        if recovered:
            rec["recovered"] = True
        self._append(rec, durable=True)

    def record_assigned(self, job_id: str, key: str, shard: str) -> None:
        """Routing outcome: which shard owns the job right now."""
        rec = self._base(ASSIGNED, job_id, key)
        rec["shard"] = str(shard)
        self._append(rec)

    def record_terminal(
        self, job_id: str, key: str, status: str, reason: "str | None" = None
    ) -> None:
        """Terminal record: ``shed`` for sheds, ``completed`` otherwise."""
        kind = SHED_RECORD if status == "shed" else COMPLETED
        rec = self._base(kind, job_id, key)
        rec["status"] = str(status)
        if reason is not None:
            rec["reason"] = str(reason)
        self._append(rec)

    # -- introspection / lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Health-payload snapshot: path + records this incarnation."""
        with self._lock:
            return {
                "path": self.path,
                "records": self.records_written,
                "fsyncs": self.fsyncs,
                "sync": self.sync,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self.sync:
                    os.fsync(self._fh.fileno())
                    self.fsyncs += 1
                self._fh.close()


class JournalReplay:
    """The folded state of one journal: who was accepted, who finished."""

    def __init__(self, records: "list[dict]", torn: int = 0) -> None:
        self.records = records
        #: Undecodable lines skipped (a torn tail counts here).
        self.torn = int(torn)
        #: job_id -> first accepted record (acceptance order preserved).
        self.accepted: "dict[str, dict]" = {}
        #: job_ids holding a terminal (completed/shed) record.
        self.terminated: "set[str]" = set()
        for rec in records:
            kind = rec.get("record")
            jid = rec.get("job_id")
            if not jid:
                continue
            if kind == ACCEPTED and jid not in self.accepted:
                self.accepted[jid] = rec
            elif kind in TERMINAL_RECORDS:
                self.terminated.add(jid)

    def unterminated(self) -> "list[dict]":
        """Accepted-but-unterminated job wire docs, acceptance order."""
        return [
            rec["job"]
            for jid, rec in self.accepted.items()
            if jid not in self.terminated and rec.get("job") is not None
        ]

    def counts(self) -> dict:
        """Summary for logs/CI: accepted/terminated/open/torn."""
        return {
            "records": len(self.records),
            "accepted": len(self.accepted),
            "terminated": len(self.terminated & set(self.accepted)),
            "open": len(
                [j for j in self.accepted if j not in self.terminated]
            ),
            "torn": self.torn,
        }


def replay_journal(path_or_dir: str) -> JournalReplay:
    """Read a journal back, tolerating a torn (partially written) tail.

    A line that does not decode is dropped and counted in
    ``replay.torn``: the only way a well-formed journal gets one is a
    crash mid-append, in which case the record was never acknowledged
    to the writer — dropping it is the correct (and safe) reading.
    A missing file replays as empty: recovering a front door that
    crashed before its first record is a no-op, not an error.
    """
    path = journal_path(str(path_or_dir))
    records: "list[dict]" = []
    torn = 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    torn += 1
                    continue
                if isinstance(rec, dict):
                    records.append(rec)
                else:
                    torn += 1
    except FileNotFoundError:
        pass
    return JournalReplay(records, torn=torn)


__all__ = [
    "ACCEPTED",
    "ASSIGNED",
    "COMPLETED",
    "CRASH_EXIT_CODE",
    "JOURNAL_FILE",
    "JobJournal",
    "JournalCrash",
    "JournalReplay",
    "RECORD_KINDS",
    "SHED_RECORD",
    "TERMINAL_RECORDS",
    "journal_path",
    "replay_journal",
]
