"""Consistent-hash ring: the cluster front door's routing table.

Every shard is hashed onto a ring at ``replicas`` virtual positions
(SHA-256 of ``"<shard>#<i>"``); a job routes to the first shard
clockwise from the hash of its cache key.  The two properties the
cluster leans on:

* **Affinity** — identical specs hash identically, so repeat jobs land
  on the same shard and hit its warm in-memory result tier.  This is
  the serving-side analogue of the paper's observation that a
  factorization's counts are a pure function of its configuration:
  caching is sound, so route for cache locality.
* **Minimal disruption** — removing a shard only reassigns the keys it
  owned (they fall through to their next clockwise neighbour); every
  other key keeps its owner, so a rebalance does not cold-start the
  whole cluster's caches.

Routing is a pure function of (node set, replicas, key): two front
doors with the same ring state assign every key identically, which is
what makes the cluster determinism suite possible.

:meth:`HashRing.nodes_for` returns the first *k* distinct owners
clockwise — the preference list used for bounded-load spill (route to
the second choice when the owner is saturated) and for resubmission
after a shard death.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable


def ring_hash(text: str) -> int:
    """Deterministic 64-bit position for ``text`` (SHA-256 prefix).

    Process- and platform-independent, unlike ``hash()`` — ring
    layouts must agree across shard processes and across runs.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over named nodes with virtual replicas."""

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._nodes: "set[str]" = set()
        #: Sorted virtual positions and their owners, kept in lockstep.
        self._points: "list[int]" = []
        self._owners: "list[str]" = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> "tuple[str, ...]":
        """The member nodes, sorted (deterministic iteration order)."""
        return tuple(sorted(self._nodes))

    def add(self, node: str) -> bool:
        """Insert ``node`` at its virtual positions; False if present."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.replicas):
            pos = ring_hash(f"{node}#{i}")
            idx = bisect.bisect(self._points, pos)
            self._points.insert(idx, pos)
            self._owners.insert(idx, node)
        return True

    def remove(self, node: str) -> bool:
        """Remove ``node``; only its own keys are reassigned."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]
        return True

    def node_for(self, key: str) -> "str | None":
        """The owner of ``key``: first node clockwise from its hash."""
        if not self._points:
            return None
        idx = bisect.bisect(self._points, ring_hash(key)) % len(self._points)
        return self._owners[idx]

    def nodes_for(self, key: str, count: int = 2) -> "list[str]":
        """The first ``count`` distinct owners clockwise from ``key``.

        The preference list: element 0 is :meth:`node_for`'s answer,
        later elements are the fallbacks bounded-load spill and
        post-death resubmission walk in order.
        """
        if not self._points or count < 1:
            return []
        found: "list[str]" = []
        start = bisect.bisect(self._points, ring_hash(key))
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) >= min(count, len(self._nodes)):
                    break
        return found

    def spread(self, keys: Iterable[str]) -> "dict[str, int]":
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def snapshot(self) -> dict:
        """JSON-ready ring state (health endpoint payload)."""
        return {
            "nodes": list(self.nodes),
            "replicas": self.replicas,
            "points": len(self._points),
        }


__all__ = ["HashRing", "ring_hash"]
