"""Shard supervisor policy: seeded backoff + restart budgets.

PR 6's death path removes a crashed or heartbeat-stale shard from the
ring and resubmits its in-flight jobs — correct, but terminal: a long
soak monotonically shrinks the ring.  :class:`ShardSupervisor` is the
missing half of the loop, the policy object
:meth:`ServingCluster.check_shards` consults to *respawn* dead shards:

* **Seeded exponential backoff** — restart ``r`` of a shard waits
  ``min(cap, base · 2^r)`` seconds, jittered by a deterministic
  ±25% drawn through :func:`~repro.faults.plan.fault_unit` from
  ``(seed, shard, r)``.  The jitter decorrelates simultaneous
  respawns (no thundering herd after a correlated kill) while staying
  byte-reproducible: same seed, same delays, every run.
* **Restart budgets** — after ``restart_budget`` respawns a shard is
  *exhausted* and stays out of the ring for good; a crash-looping
  shard cannot flap the ring forever.  Budgets are per shard.
* **States** — each supervised shard is ``running``, ``backoff``
  (death noticed, respawn scheduled), or ``exhausted``; the cluster
  publishes them as the ``repro_cluster_restart_state`` gauge
  (0/1/2) and ``repro top`` renders them.

The supervisor is pure policy: it holds no threads, spawns no
processes, and reads time only through the ``now`` its caller passes —
inline clusters drive it on the virtual clock, which is what makes the
respawn tests deterministic.
"""

from __future__ import annotations

from repro.faults.plan import fault_unit

#: Supervision states (gauge values for repro_cluster_restart_state).
RUNNING = "running"
BACKOFF = "backoff"
EXHAUSTED = "exhausted"

STATE_GAUGE = {RUNNING: 0, BACKOFF: 1, EXHAUSTED: 2}

#: check_shards decisions for one dead supervised shard.
DECIDE_WAIT = "wait"
DECIDE_RESPAWN = "respawn"
DECIDE_EXHAUSTED = "exhausted"


class _ShardState:
    __slots__ = ("restarts", "due", "state")

    def __init__(self) -> None:
        self.restarts = 0
        self.due: "float | None" = None
        self.state = RUNNING


class ShardSupervisor:
    """Respawn policy for a cluster's shards (see module docstring).

    Parameters
    ----------
    seed:
        Root of the backoff jitter draws (deterministic).
    restart_budget:
        Respawns allowed per shard before it is declared exhausted.
    backoff_base / backoff_cap:
        Exponential-backoff geometry in seconds: restart ``r`` waits
        ``min(cap, base · 2^r)``, jittered ±25%.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        restart_budget: int = 3,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
    ) -> None:
        if int(restart_budget) < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        self.seed = int(seed)
        self.restart_budget = int(restart_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._shards: "dict[str, _ShardState]" = {}
        #: Total successful respawns across all shards.
        self.respawns = 0

    def _state(self, name: str) -> _ShardState:
        if name not in self._shards:
            self._shards[name] = _ShardState()
        return self._shards[name]

    # -- policy ----------------------------------------------------------

    def delay(self, name: str, restarts: int) -> float:
        """Backoff before restart ``restarts`` (0-based), jittered ±25%."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** restarts))
        jitter = 0.75 + 0.5 * fault_unit(self.seed, "respawn", name, restarts)
        return base * jitter

    def on_dead(self, name: str, now: float) -> str:
        """One supervision decision for a dead shard at time ``now``.

        Returns :data:`DECIDE_EXHAUSTED` (budget spent — leave it
        down), :data:`DECIDE_WAIT` (backoff running), or
        :data:`DECIDE_RESPAWN` (the backoff elapsed: the caller should
        attempt a respawn and report back via :meth:`note_respawned`
        or :meth:`note_respawn_failed`).
        """
        st = self._state(name)
        if st.state == EXHAUSTED or st.restarts >= self.restart_budget:
            st.state = EXHAUSTED
            st.due = None
            return DECIDE_EXHAUSTED
        if st.due is None:
            st.due = float(now) + self.delay(name, st.restarts)
            st.state = BACKOFF
            return DECIDE_WAIT
        if now < st.due:
            return DECIDE_WAIT
        return DECIDE_RESPAWN

    def note_respawned(self, name: str) -> int:
        """A respawn succeeded; returns the shard's restart count."""
        st = self._state(name)
        st.restarts += 1
        st.due = None
        st.state = RUNNING
        self.respawns += 1
        return st.restarts

    def note_respawn_failed(self, name: str, now: float) -> None:
        """A respawn attempt failed: charge the budget, back off again."""
        st = self._state(name)
        st.restarts += 1
        if st.restarts >= self.restart_budget:
            st.state = EXHAUSTED
            st.due = None
            return
        st.due = float(now) + self.delay(name, st.restarts)
        st.state = BACKOFF

    # -- introspection ---------------------------------------------------

    def state_of(self, name: str) -> str:
        """The shard's supervision state name."""
        return self._state(name).state

    def snapshot(self) -> dict:
        """Health-payload form: per-shard restarts/state/budget."""
        return {
            name: {
                "restarts": st.restarts,
                "budget": self.restart_budget,
                "state": st.state,
                "due": st.due,
            }
            for name, st in sorted(self._shards.items())
        }


__all__ = [
    "BACKOFF",
    "DECIDE_EXHAUSTED",
    "DECIDE_RESPAWN",
    "DECIDE_WAIT",
    "EXHAUSTED",
    "RUNNING",
    "STATE_GAUGE",
    "ShardSupervisor",
]
