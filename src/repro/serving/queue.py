"""Bounded priority queue with load-shedding admission.

The service's waiting room.  Capacity is a hard bound: an ``offer``
against a full queue either *sheds the newcomer* (same or higher
priority already queued everywhere) or *evicts the lowest-priority
waiter* to make room for a strictly more important job — the classic
shed-from-the-tail policy, so a burst of bulk work can never starve
interactive traffic, and a burst of interactive work sheds the bulk
backlog first.

Blocking ``pop`` with timeout feeds the worker threads; ``close``
wakes every popper so shutdown never hangs.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Generic, Iterable, TypeVar

T = TypeVar("T")

#: Priority levels (larger = more important).  Any int works; these
#: are the named grades the CLI and the workload generators use.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2

PRIORITY_NAMES = {
    PRIORITY_LOW: "low",
    PRIORITY_NORMAL: "normal",
    PRIORITY_HIGH: "high",
}


def priority_name(priority: int) -> str:
    """Human label for a priority grade (falls back to the number)."""
    return PRIORITY_NAMES.get(int(priority), str(int(priority)))


def parse_priority(text: "str | int") -> int:
    """Accept ``low``/``normal``/``high`` or a bare integer."""
    if isinstance(text, int):
        return text
    key = text.strip().lower()
    for value, name in PRIORITY_NAMES.items():
        if key == name:
            return value
    try:
        return int(key)
    except ValueError:
        raise ValueError(
            f"unknown priority {text!r}; use low/normal/high or an integer"
        ) from None


class QueueClosed(RuntimeError):
    """``offer`` after ``close`` (the service is shutting down)."""


class BoundedPriorityQueue(Generic[T]):
    """Thread-safe bounded max-priority queue with eviction.

    Pops return the highest-priority item; ties break FIFO (earliest
    ``offer`` first).  ``offer`` never blocks: admission control is a
    decision, not a wait.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._cond = threading.Condition()
        # heap entries: (-priority, seq, item); seq keeps FIFO within a
        # priority and makes entries totally ordered (items never compared)
        self._heap: "list[tuple[int, int, T]]" = []
        self._seq = 0
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def offer(self, item: T, priority: int) -> "tuple[bool, T | None]":
        """Try to admit ``item``; returns ``(admitted, evicted)``.

        * queue has room → ``(True, None)``;
        * queue full, some waiter has strictly lower priority → the
          lowest-priority (and, among those, youngest) waiter is
          evicted and returned: ``(True, evicted_item)`` — the caller
          owes the evictee a structured shed response;
        * queue full of same-or-higher priority → ``(False, None)``:
          the newcomer is shed.
        """
        with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed to new work")
            evicted: T | None = None
            if len(self._heap) >= self.capacity:
                # find the least-important waiter: max (-neg_pri, seq)
                idx = max(
                    range(len(self._heap)),
                    key=lambda i: (self._heap[i][0], self._heap[i][1]),
                )
                neg_pri, _seq, victim = self._heap[idx]
                if -neg_pri >= priority:
                    return False, None
                self._heap[idx] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                evicted = victim
            heapq.heappush(self._heap, (-int(priority), self._seq, item))
            self._seq += 1
            self._cond.notify()
            return True, evicted

    def pop(self, timeout: "float | None" = None) -> "T | None":
        """Highest-priority item, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and
        empty (the worker-loop exit signal).
        """
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            _neg, _seq, item = heapq.heappop(self._heap)
            return item

    def drain(self) -> "list[T]":
        """Remove and return every queued item, best-first (shutdown)."""
        with self._cond:
            items = [
                entry[2] for entry in sorted(self._heap)
            ]
            self._heap.clear()
            return items

    def close(self) -> None:
        """Refuse further offers and wake all blocked poppers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """JSON-ready occupancy report (health endpoint payload)."""
        with self._cond:
            by_priority: "dict[str, int]" = {}
            for neg, _seq, _item in self._heap:
                key = priority_name(-neg)
                by_priority[key] = by_priority.get(key, 0) + 1
            return {
                "depth": len(self._heap),
                "capacity": self.capacity,
                "closed": self._closed,
                "by_priority": by_priority,
            }


__all__ = [
    "BoundedPriorityQueue",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "QueueClosed",
    "parse_priority",
    "priority_name",
]
