"""Per-job resource budgets and their live enforcement.

A :class:`Budget` is a declarative quota for one job: a wall-clock
deadline plus caps on the *simulated* cost the job may charge — words,
messages and flops in the machine model's own currency.  A
:class:`BudgetGuard` is the live enforcer: the simulators call into it
from their charging chokepoints (``HierarchicalMachine`` polls its
counters, the ``Network`` reports each transfer), and the guard raises
:class:`BudgetExceeded` the moment any cap is crossed.  The exception
carries a machine-readable ``reason`` so the serving layer can decide
how to degrade.

The guard is deliberately dumb and cheap: integer comparisons plus one
clock read per check.  A machine or network with no guard attached
(``guard is None``) takes a single pointer test per chokepoint and is
otherwise untouched — the zero-overhead-when-unused guarantee the
golden count tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.serving.clock import MONOTONIC, Clock


class BudgetExceeded(RuntimeError):
    """A job crossed one of its budget caps mid-run.

    ``reason`` is one of ``"words"``, ``"messages"``, ``"flops"``,
    ``"deadline"``; ``spent``/``limit`` quantify the violation in the
    reason's unit (words, messages, flops, or seconds).
    """

    def __init__(self, reason: str, spent: float, limit: float) -> None:
        super().__init__(
            f"budget exceeded: {reason} spent {spent:g} > limit {limit:g}"
        )
        self.reason = reason
        self.spent = spent
        self.limit = limit


@dataclass(frozen=True)
class Budget:
    """Declarative per-job quota (``None`` caps are unlimited).

    ``max_words``/``max_messages``/``max_flops`` cap the simulated cost
    charged to the job's machine or network; ``deadline_seconds`` caps
    real wall-clock time, measured from the moment the guard is created
    (job submission, so queueing time counts against the deadline).
    """

    max_words: int | None = None
    max_messages: int | None = None
    max_flops: int | None = None
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("max_words", "max_messages", "max_flops"):
            v = getattr(self, name)
            if v is not None and int(v) < 0:
                raise ValueError(f"{name} must be >= 0, got {v}")
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )

    def is_unlimited(self) -> bool:
        """True when no cap is set (guarding would be a no-op)."""
        return (
            self.max_words is None
            and self.max_messages is None
            and self.max_flops is None
            and self.deadline_seconds is None
        )

    def guard(self, *, clock: Clock = MONOTONIC, start: float | None = None) -> "BudgetGuard":
        """A live enforcer for one job (``start`` defaults to now)."""
        return BudgetGuard(self, clock=clock, start=start)

    def to_dict(self) -> dict:
        """JSON-ready dict (response/artifact payload)."""
        return {
            "max_words": self.max_words,
            "max_messages": self.max_messages,
            "max_flops": self.max_flops,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Budget":
        """Rebuild a budget from :meth:`to_dict` output."""
        return cls(
            max_words=d.get("max_words"),
            max_messages=d.get("max_messages"),
            max_flops=d.get("max_flops"),
            deadline_seconds=d.get("deadline_seconds"),
        )


class BudgetGuard:
    """Live budget enforcement for one job, across all its attempts.

    The guard is created once at submission and reused through every
    retry, so the deadline is absolute (submission + deadline) and the
    simulated-cost caps are cumulative across attempts — a job cannot
    evade its quota by failing and retrying.

    Two feeding styles, one per simulator:

    * :meth:`check_machine` — the sequential machine polls: the guard
      reads the fastest level's counters plus the flop count, adds the
      cost of earlier attempts, and compares against the caps.
    * :meth:`spend` — the network reports incrementally: each physical
      transfer and each ``compute`` call adds to the running totals.

    Both paths raise :class:`BudgetExceeded` (and remember the verdict:
    a tripped guard keeps raising on every later check).
    """

    def __init__(
        self,
        budget: Budget,
        *,
        clock: Clock = MONOTONIC,
        start: float | None = None,
    ) -> None:
        self.budget = budget
        self._clock = clock
        self.start = clock() if start is None else float(start)
        self._deadline_at = (
            None
            if budget.deadline_seconds is None
            else self.start + budget.deadline_seconds
        )
        # cumulative spend from *finished* attempts (attempt_done) plus
        # the incremental network-style spends of the current attempt
        self.words = 0
        self.messages = 0
        self.flops = 0
        self.exceeded: BudgetExceeded | None = None

    # -- feeding ---------------------------------------------------------

    def check_machine(self, machine) -> None:
        """Poll a sequential machine's counters against the caps."""
        lvl = machine.levels[0]
        self._enforce(
            self.words + lvl.words,
            self.messages + lvl.messages,
            self.flops + machine.flops,
        )

    def spend(self, words: int = 0, messages: int = 0, flops: int = 0) -> None:
        """Record incremental cost (network transfers and compute)."""
        self.words += words
        self.messages += messages
        self.flops += flops
        self._enforce(self.words, self.messages, self.flops)

    def attempt_done(self, machine=None) -> None:
        """Fold a finished attempt's machine counters into the base spend.

        Called between retries so the next attempt's fresh machine
        still counts against the same cumulative quota.  Network-style
        incremental spends are already cumulative and need no folding.
        """
        if machine is not None:
            lvl = machine.levels[0]
            self.words += lvl.words
            self.messages += lvl.messages
            self.flops += machine.flops

    # -- verdicts --------------------------------------------------------

    def check_deadline(self) -> None:
        """Raise if the wall-clock deadline has passed (cost caps not read)."""
        if self.exceeded is not None:
            raise self.exceeded
        self._check_deadline()

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (``None`` when no deadline is set)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - self._clock()

    def spent(self) -> dict:
        """Current cumulative spend (response/diagnostic payload)."""
        return {
            "words": self.words,
            "messages": self.messages,
            "flops": self.flops,
            "elapsed_seconds": self._clock() - self.start,
        }

    def _check_deadline(self) -> None:
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            exc = BudgetExceeded(
                "deadline",
                self._clock() - self.start,
                self.budget.deadline_seconds,
            )
            self.exceeded = exc
            raise exc

    def _enforce(self, words: int, messages: int, flops: int) -> None:
        if self.exceeded is not None:
            raise self.exceeded
        b = self.budget
        exc: BudgetExceeded | None = None
        if b.max_words is not None and words > b.max_words:
            exc = BudgetExceeded("words", words, b.max_words)
        elif b.max_messages is not None and messages > b.max_messages:
            exc = BudgetExceeded("messages", messages, b.max_messages)
        elif b.max_flops is not None and flops > b.max_flops:
            exc = BudgetExceeded("flops", flops, b.max_flops)
        if exc is not None:
            self.exceeded = exc
            raise exc
        self._check_deadline()


__all__ = ["Budget", "BudgetExceeded", "BudgetGuard"]
