"""The cluster's shared, content-addressed result store.

Layered directly over the experiment cache
(:class:`~repro.experiments.cache.ResultCache`): one on-disk directory
shared by every shard, plus one small in-memory "warm" tier per shard.
A lookup walks the tiers cheapest-first:

``memory``
    The shard's own bounded LRU of recently served entries.  The
    consistent-hash front door routes identical specs to the same
    shard, so this tier has high hit rates under repeat traffic.
``shared``
    The on-disk store, *entry produced by a different shard*.  This is
    what makes the cluster more than N isolated caches: after a
    rebalance (shard death, breaker quarantine) the new owner of a key
    serves the old owner's work instead of recomputing it.  The
    memory-for-recomputation trade is the serving-side analogue of
    2.5D replication (Kwasniewski et al., arXiv:2108.09337): spend
    redundant storage, save redundant work and cross-shard traffic.
``disk``
    The on-disk store, entry produced by this shard earlier (e.g.
    evicted from the memory tier, or a previous process incarnation).

Writes go through :meth:`ResultCache.put`'s atomic temp-file +
``os.replace`` discipline with the producing shard recorded in the
entry's ``extra`` provenance, so concurrent shard processes never read
torn entries and every cross-shard hit is attributable.  Disk-tier
integrity (digest verification, corrupt-entry demotion to a miss) is
inherited from the cache; the view adds a structural check on top — an
entry whose measurement payload is not a mapping is counted as torn
and served as a miss, and the recompute's write-back heals the damaged
file in place.  A torn or truncated entry therefore costs one
recomputation, never a crash and never a poisoned response.

A :class:`ShardStoreView` duck-types the ``get(point)`` /
``put(point, measurement, wall_time)`` interface
:class:`~repro.serving.service.FactorizationService` expects from its
``cache`` parameter, so a shard's service needs no cluster-specific
code path.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Callable

from repro.experiments.cache import ResultCache
from repro.experiments.spec import SpecPoint
from repro.observability.metrics import METRICS


def measurement_attestation(measurement) -> str:
    """Content digest of a serialized measurement payload.

    Stamped into an entry's ``extra`` provenance at write time and
    recomputed at read time: a stored payload whose bits drifted while
    its structural envelope still validates is caught as a counted
    miss instead of being served, and the recompute's write-back heals
    the entry — the store-tier leg of the ABFT end-to-end guarantee.
    """
    blob = json.dumps(
        measurement, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

#: Lookup outcome tiers (metric label values, cheapest first).
TIER_MEMORY = "memory"
TIER_SHARED = "shared"
TIER_DISK = "disk"
TIER_MISS = "miss"


class SharedResultStore:
    """One shared on-disk store; hands out per-shard views.

    Parameters
    ----------
    directory:
        Root of the shared cache tree.  Shard processes constructed
        with the same directory (and code version) see each other's
        results immediately after the atomic rename.
    version:
        Code-version token, defaulting to the package digest (see
        :func:`repro.experiments.cache.code_version`); tests inject
        fixed tokens.
    memory_capacity:
        Per-shard warm-tier bound (entries, LRU-evicted).
    """

    def __init__(
        self,
        directory: str,
        *,
        version: "str | None" = None,
        memory_capacity: int = 512,
    ) -> None:
        self.cache = ResultCache(directory, version=version)
        self.memory_capacity = int(memory_capacity)
        self._views: "dict[str, ShardStoreView]" = {}

    @property
    def directory(self) -> str:
        """The shared on-disk root."""
        return self.cache.directory

    def view(self, shard_id: str) -> "ShardStoreView":
        """The (memoized) view shard ``shard_id`` reads/writes through."""
        if shard_id not in self._views:
            self._views[shard_id] = ShardStoreView(
                self, shard_id, memory_capacity=self.memory_capacity
            )
        return self._views[shard_id]

    def key_for(self, point: SpecPoint) -> str:
        """Content-address of a point (shared-store coordinates)."""
        return self.cache.key_for(point)

    def stats(self) -> dict:
        """Aggregate lookup stats over every view this process holds.

        Cluster-level totals come from summing each shard's own stats
        (reported through its health payload in process mode, since a
        child's views live in the child).
        """
        totals = {
            TIER_MEMORY: 0, TIER_SHARED: 0, TIER_DISK: 0, TIER_MISS: 0,
            "puts": 0,
        }
        for view in self._views.values():
            for k, v in view.stats().items():
                totals[k] += v
        return totals


class ShardStoreView:
    """One shard's handle on the shared store (memory tier + provenance).

    Thread-safe: a shard's worker threads share one view.
    """

    def __init__(
        self, store: SharedResultStore, shard_id: str, *, memory_capacity: int
    ) -> None:
        self.store = store
        self.shard_id = str(shard_id)
        self.memory_capacity = int(memory_capacity)
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._counts = {
            TIER_MEMORY: 0, TIER_SHARED: 0, TIER_DISK: 0, TIER_MISS: 0,
            "puts": 0,
        }
        #: Optional telemetry hook called with the tier of every lookup
        #: (the cluster wires it to the shard's event bus; ``None``
        #: costs nothing).
        self.on_lookup: "Callable[[str], None] | None" = None

    def _count(self, tier: str) -> None:
        with self._lock:
            self._counts[tier] += 1
        METRICS.counter(
            "repro_cluster_store_lookups_total",
            shard=self.shard_id,
            tier=tier,
        ).inc()
        if self.on_lookup is not None:
            self.on_lookup(tier)

    def _remember(self, key: str, entry: dict) -> None:
        with self._lock:
            self._memory[key] = entry
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)

    def get(self, point: SpecPoint) -> "dict | None":
        """Tiered lookup; ``None`` is a miss (caller simulates)."""
        key = self.store.key_for(point)
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is not None:
            self._count(TIER_MEMORY)
            return entry
        entry = self.store.cache.get(point)
        if entry is not None and not isinstance(entry.get("measurement"), dict):
            # digest-valid but structurally unusable (e.g. written by a
            # foreign tool): torn for our purposes — recompute and let
            # the write-back heal the file
            METRICS.counter(
                "repro_cluster_store_torn_total", shard=self.shard_id
            ).inc()
            entry = None
        if entry is not None:
            att = (entry.get("extra") or {}).get("attestation")
            if att is not None and att != measurement_attestation(
                entry["measurement"]
            ):
                # digest-valid envelope, silently drifted payload:
                # counted as a failed attestation, served as a miss,
                # healed by the recompute's write-back
                METRICS.counter(
                    "repro_cluster_store_attestation_failures_total",
                    shard=self.shard_id,
                ).inc()
                entry = None
        if entry is None:
            self._count(TIER_MISS)
            return None
        producer = (entry.get("extra") or {}).get("producer")
        tier = TIER_DISK if producer == self.shard_id else TIER_SHARED
        self._count(tier)
        self._remember(key, entry)
        return entry

    def put(self, point: SpecPoint, measurement, wall_time: float) -> str:
        """Write through to disk (atomic) and the memory tier.

        The entry's provenance records the producing shard *and* an
        attestation digest of the serialized payload, which every
        later read re-verifies.
        """
        serialized = (
            measurement.to_dict()
            if hasattr(measurement, "to_dict")
            else dict(measurement)
        )
        extra = {
            "producer": self.shard_id,
            "attestation": measurement_attestation(serialized),
        }
        path = self.store.cache.put(
            point,
            measurement,
            wall_time,
            extra=extra,
        )
        self._remember(
            self.store.key_for(point),
            {
                "measurement": serialized,
                "extra": extra,
            },
        )
        with self._lock:
            self._counts["puts"] += 1
        return path

    def stats(self) -> dict:
        """Lookup counts by tier plus writes (health payload)."""
        with self._lock:
            return dict(self._counts)


__all__ = [
    "SharedResultStore",
    "ShardStoreView",
    "TIER_DISK",
    "TIER_MEMORY",
    "TIER_MISS",
    "TIER_SHARED",
]
