"""``repro serve`` / ``repro submit``: the serving stack from the shell.

Both commands are thin wrappers over the one client facade
(:class:`~repro.serving.client.ServingClient`) and the typed request
builders in :mod:`repro.serving.api` — the CLI builds no jobs by hand
and talks to no backend directly.

``repro submit`` is the one-shot client: build one job (a sequential
``chol`` or a parallel ``pxpotrf`` request, with optional priority,
budget caps and deadline) and print the structured
:class:`ServiceResponse` as JSON.  ``--cluster`` routes the job
through a sharded inline cluster instead of a single service — same
request, same response, different substrate.  Transient transport
faults (a broken pipe, a submission timeout) are retried a bounded
number of times (``--transport-retries``) with seeded, jittered
exponential backoff before giving up.  The exit code mirrors the
terminal status and is stable for scripting: 0 for ``done`` and
``degraded`` (both are answers), 1 for ``failed``, 2 for ``shed``,
3 for a transport failure that survived every retry. ::

    repro submit chol --algorithm lapack --n 96 --M 288
    repro submit chol --algorithm toledo --n 128 --M 384 --max-words 50000
    repro submit pxpotrf --n 64 --block 16 --P 4 --deadline 5
    repro submit chol --n 64 --cluster --shards 3

``repro serve`` is the batch driver: feed a JSON workload (or a
generated ``--demo`` mix) through a configured backend and write one
response record per job.  ``--shards N`` serves through a cluster of N
shard *processes* behind the consistent-hash front door; submission
then flows through the client's bounded in-flight window
(``--window``).  ``--kill-shard IDX --kill-after K`` hard-kills a
shard mid-run to exercise the rebalance/resubmission path.  Every job
reaches a terminal state; the exit code is 1 only if any job *failed*
(sheds and degradations are the service doing its job).  ``--out``,
``--metrics-out`` and ``--health-out`` write their artifacts
crash-safely (atomic temp-file + rename).

Durability (``--shards`` only): ``--journal-dir DIR`` write-ahead
journals every job lifecycle transition; after a front-door crash,
``--recover --journal-dir DIR`` replays the journal and resubmits
every accepted-but-unterminated job (no ``--workload``/``--demo``
needed — recovery is its own workload source; the shared store
defaults to ``DIR/store`` so already-computed results are reused, not
recomputed).  ``--supervise`` respawns dead shards under a seeded
backoff/restart-budget policy; ``--heartbeat-timeout`` and
``--rebalance-debounce`` tune the eviction trigger.  The
``--chaos-*-cluster`` family drives a seeded
:class:`~repro.faults.ClusterFaultPlan` (shard kills, pipe drops,
poison jobs, a front-door crash at journal record K — the crash exits
with code 75). ::

    repro serve --workload jobs.json --workers 4 --out responses.json
    repro serve --demo 50 --queue-capacity 8 --deadline 2 --metrics-out m.json
    repro serve --demo 300 --shards 3 --kill-shard 1 --kill-after 80 \\
        --health-out health.json
    repro serve --demo 300 --shards 3 --journal-dir wal --supervise \\
        --chaos-kill-every 60 --chaos-crash-at-record 400
    repro serve --recover --journal-dir wal --shards 3 --supervise
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serving.api import (
    FAILED,
    SHED,
    chol_request,
    job_from_wire,
    pxpotrf_request,
)
from repro.serving.budget import Budget
from repro.serving.client import ServingClient
from repro.serving.queue import parse_priority
from repro.util.serialization import atomic_write_json


#: Exit code of ``repro submit`` when transport retries are exhausted.
EXIT_TRANSPORT = 3

#: Exception types treated as transient transport faults (retryable).
TRANSIENT_ERRORS = (
    BrokenPipeError,
    ConnectionError,
    TimeoutError,
    OSError,
)


def _submit_with_retry(
    client,
    job,
    *,
    attempts: int = 3,
    seed: int = 0,
    backoff_base: float = 0.05,
    sleep=None,
):
    """Submit with bounded, seeded-jitter retries on transport faults.

    Retries only :data:`TRANSIENT_ERRORS` (a dead pipe, a submission
    timeout) — a *terminal* response, including ``failed``/``shed``,
    is an answer and is returned as-is.  The backoff before retry
    ``r`` is ``backoff_base · 2^r`` jittered by a deterministic
    [0.5, 1.5) factor drawn through
    :func:`~repro.faults.plan.fault_unit`, so retry schedules are
    reproducible under a fixed seed.  Re-raises the last error once
    the attempts are spent.
    """
    import time as _time

    from repro.faults.plan import fault_unit

    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    sleep = sleep if sleep is not None else _time.sleep
    last = None
    for attempt in range(attempts):
        try:
            return client.submit(job)
        except TRANSIENT_ERRORS as exc:
            last = exc
            if attempt + 1 >= attempts:
                break
            delay = (
                backoff_base
                * (2.0 ** attempt)
                * (0.5 + fault_unit(seed, "submit-retry", attempt))
            )
            sleep(delay)
    raise last


def _budget_from_args(args) -> "Budget | None":
    budget = Budget(
        max_words=args.max_words,
        max_messages=args.max_messages,
        max_flops=args.max_flops,
        deadline_seconds=args.deadline,
    )
    return None if budget.is_unlimited() else budget


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-words", type=int, default=None,
        help="simulated-cost cap: words moved (cumulative over retries)",
    )
    parser.add_argument(
        "--max-messages", type=int, default=None,
        help="simulated-cost cap: messages",
    )
    parser.add_argument(
        "--max-flops", type=int, default=None,
        help="simulated-cost cap: flops",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline, measured from submission",
    )


def submit_main(argv: "list[str]") -> int:
    """``repro submit``: one job, one structured JSON response."""
    from repro.cli import normalize_algorithm

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit one factorization job through the serving "
        "client and print its terminal response as JSON.",
    )
    parser.add_argument(
        "target", choices=("chol", "pxpotrf"),
        help="sequential Cholesky or the parallel PxPOTRF",
    )
    parser.add_argument(
        "--algorithm", default="lapack", metavar="NAME",
        help="sequential algorithm (chol only; default: lapack)",
    )
    parser.add_argument(
        "--layout", default="column-major", help="storage layout (chol only)"
    )
    parser.add_argument("--n", type=int, default=64, help="matrix dimension")
    parser.add_argument(
        "--M", type=int, default=None,
        help="fast-memory words (chol only; default: 3*n)",
    )
    parser.add_argument(
        "--block", type=int, default=None,
        help="distribution block (pxpotrf; default: n/sqrt(P))",
    )
    parser.add_argument(
        "--P", type=int, default=4, help="processors (pxpotrf; default: 4)"
    )
    parser.add_argument("--seed", type=int, default=0, help="input matrix seed")
    parser.add_argument(
        "--priority", default="normal",
        help="job priority: low/normal/high or an integer (default: normal)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the reference-Cholesky correctness check",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="route through a sharded (inline) cluster front door "
        "instead of a single service",
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard count for --cluster (default: 2)",
    )
    parser.add_argument(
        "--transport-retries", type=int, default=3, metavar="N",
        help="attempts before a transient transport fault (broken pipe, "
        "submission timeout) becomes exit code 3 (default: 3)",
    )
    parser.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed of the deterministic retry-backoff jitter",
    )
    _add_budget_args(parser)
    args = parser.parse_args(argv)

    common = dict(
        n=args.n,
        seed=args.seed,
        verify=not args.no_verify,
        priority=parse_priority(args.priority),
        budget=_budget_from_args(args),
    )
    try:
        if args.target == "chol":
            job = chol_request(
                algorithm=normalize_algorithm(args.algorithm),
                layout=args.layout,
                M=args.M,
                **common,
            )
        else:
            job = pxpotrf_request(P=args.P, block=args.block, **common)
    except ValueError as exc:
        parser.error(str(exc))

    if args.cluster:
        client = ServingClient.cluster(shards=args.shards, mode="inline")
    else:
        client = ServingClient.local(workers=0, queue_capacity=1)
    try:
        with client:
            response = _submit_with_retry(
                client,
                job,
                attempts=args.transport_retries,
                seed=args.retry_seed,
            )
    except TRANSIENT_ERRORS as exc:
        print(
            f"[submit] transport failure after {args.transport_retries} "
            f"attempt(s): {exc}",
            file=sys.stderr,
        )
        return EXIT_TRANSPORT
    print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    if response.status == FAILED:
        return 1
    if response.status == SHED:
        return 2
    return 0


def serve_main(argv: "list[str]") -> int:
    """``repro serve``: drive a workload through a service or a cluster."""
    from repro.experiments.spec import PARALLEL
    from repro.faults.plan import FaultPlan
    from repro.observability.metrics import METRICS
    from repro.serving.workloads import demo_workload

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a job workload through the resilient "
        "factorization service (or a sharded cluster of them); every "
        "job reaches a terminal done/degraded/shed/failed state.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--workload", metavar="FILE",
        help="JSON list of job records: {point: {...}, priority, budget}",
    )
    source.add_argument(
        "--demo", type=int, metavar="COUNT",
        help="generate a deterministic mixed workload of COUNT jobs",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve through a cluster of N shard processes behind the "
        "consistent-hash front door (default: 0 = one in-process service)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker threads (per shard with --shards; default: 2)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=16,
        help="admission-queue bound (per shard; default: 16)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="execution retries per job (default: 1)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that trip a breaker (default: 3)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=1.0,
        help="seconds an open breaker waits before probing (default: 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (--demo)"
    )
    parser.add_argument(
        "--chaos-drop", type=float, default=0.0,
        help="wrap every job in a fault plan with this drop probability",
    )
    parser.add_argument(
        "--chaos-read-fault", type=float, default=0.0,
        help="wrap every sequential job with this read-fault probability",
    )
    parser.add_argument(
        "--chaos-silent", type=float, default=0.0, metavar="PROB",
        help="wrap every job with this silent bit-flip probability and "
        "arm ABFT checksum protection (implies --abft)",
    )
    parser.add_argument(
        "--chaos-silent-double", type=float, default=0.0, metavar="PROB",
        help="probability a silent strike is an uncorrectable double "
        "(exercises the detect-and-rerun ladder)",
    )
    parser.add_argument(
        "--abft", action="store_true",
        help="run every job checksum-protected (responses carry "
        "verified=true and a factor attestation)",
    )
    parser.add_argument(
        "--abft-attempts", type=int, default=3, metavar="N",
        help="ABFT retry-ladder bound per job (default: 3)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=1, help="fault-plan seed"
    )
    parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="bounded in-flight submission window (default: total queue "
        "capacity across shards)",
    )
    parser.add_argument(
        "--store-dir", metavar="DIR",
        help="shared result store directory (--shards; default: a "
        "temporary directory removed at exit)",
    )
    parser.add_argument(
        "--health-dir", metavar="DIR",
        help="per-shard health snapshots are atomically written here on "
        "every heartbeat (--shards)",
    )
    parser.add_argument(
        "--journal-dir", metavar="DIR",
        help="write-ahead journal every job lifecycle transition here "
        "(--shards); enables --recover after a crash",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="replay the journal in --journal-dir and resubmit every "
        "accepted-but-unterminated job (then serve --workload/--demo "
        "jobs, if any)",
    )
    parser.add_argument(
        "--supervise", action="store_true",
        help="respawn dead shards under seeded backoff and a per-shard "
        "restart budget (--shards)",
    )
    parser.add_argument(
        "--restart-budget", type=int, default=3, metavar="N",
        help="respawns allowed per shard before it stays down "
        "(default: 3)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=10.0, metavar="SECONDS",
        help="a shard silent this long is considered stale (default: 10)",
    )
    parser.add_argument(
        "--rebalance-debounce", type=float, default=0.0, metavar="SECONDS",
        help="staleness must persist this long before a shard is "
        "evicted from the ring (default: 0 = evict immediately)",
    )
    parser.add_argument(
        "--chaos-cluster-seed", type=int, default=0,
        help="seed of the cluster chaos plan (--chaos-kill-every etc.)",
    )
    parser.add_argument(
        "--chaos-kill-every", type=int, default=0, metavar="N",
        help="chaos: kill a seeded-chosen shard at every N-th "
        "submission (--shards)",
    )
    parser.add_argument(
        "--chaos-shard-kill", type=float, default=0.0, metavar="PROB",
        help="chaos: per-submission shard-kill probability (--shards)",
    )
    parser.add_argument(
        "--chaos-pipe-drop", type=float, default=0.0, metavar="PROB",
        help="chaos: per-dispatch pipe-drop probability; the front "
        "door redelivers (--shards)",
    )
    parser.add_argument(
        "--chaos-poison", type=float, default=0.0, metavar="PROB",
        help="chaos: per-submission probability a job is wrapped in a "
        "fatal fault plan (--shards)",
    )
    parser.add_argument(
        "--chaos-crash-at-record", type=int, default=None, metavar="K",
        help="chaos: crash the front door (exit 75) right after the "
        "journal durably writes record K (--shards --journal-dir)",
    )
    parser.add_argument(
        "--kill-shard", type=int, default=None, metavar="IDX",
        help="chaos: hard-kill shard IDX mid-run (--shards)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=0, metavar="COUNT",
        help="completions to wait for before --kill-shard fires "
        "(default: 0 = immediately after submission starts)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write all responses as a JSON list"
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="dump the metrics registry as JSON at the end",
    )
    parser.add_argument(
        "--health-out", metavar="FILE",
        help="write the final health/readiness snapshot as JSON",
    )
    parser.add_argument(
        "--backpressure", action="store_true",
        help="throttle submission to queue capacity instead of "
        "load-shedding the burst (workers >= 1 only)",
    )
    parser.add_argument(
        "--tracing", action="store_true",
        help="mint a trace context per job and return merged "
        "cross-process span trees on every response",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write the merged cluster Chrome trace_event JSON here "
        "(implies --tracing)",
    )
    parser.add_argument(
        "--slo-availability", type=float, default=None, metavar="FRAC",
        help="declared availability objective, e.g. 0.999 (default: "
        "the tracker's built-in 0.999)",
    )
    parser.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="declared p99 latency objective in seconds (default: no "
        "latency clause)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job lines"
    )
    _add_budget_args(parser)
    args = parser.parse_args(argv)

    if not args.workload and args.demo is None and not args.recover:
        parser.error("one of --workload, --demo or --recover is required")
    if args.recover and not args.journal_dir:
        parser.error("--recover needs --journal-dir")
    chaos_flags = (
        args.chaos_kill_every
        or args.chaos_shard_kill
        or args.chaos_pipe_drop
        or args.chaos_poison
        or args.chaos_crash_at_record
    )
    if args.shards <= 0:
        for flag, name in (
            (args.journal_dir, "--journal-dir"),
            (args.recover, "--recover"),
            (args.supervise, "--supervise"),
            (chaos_flags, "--chaos-*-cluster flags"),
        ):
            if flag:
                parser.error(f"{name} needs --shards")
    if args.chaos_crash_at_record and not args.journal_dir:
        parser.error("--chaos-crash-at-record needs --journal-dir")

    if args.workload:
        with open(args.workload, "r", encoding="utf-8") as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            parser.error(f"{args.workload} must hold a JSON list of jobs")
        jobs = [job_from_wire(r) for r in records]
    elif args.demo is not None:
        jobs = demo_workload(args.demo, seed=args.seed)
    else:
        jobs = []

    abft_on = args.abft or args.chaos_silent > 0
    if args.chaos_drop or args.chaos_read_fault or args.chaos_silent or abft_on:
        from dataclasses import replace

        from repro.experiments.spec import _freeze_abft

        frozen_abft = (
            _freeze_abft({"max_attempts": args.abft_attempts})
            if abft_on
            else ()
        )
        for job in jobs:
            plan = FaultPlan(
                seed=args.chaos_seed + job.point.seed,
                drop=args.chaos_drop if job.point.kind == PARALLEL else 0.0,
                read_fault=(
                    args.chaos_read_fault
                    if job.point.kind != PARALLEL
                    else 0.0
                ),
                silent=args.chaos_silent,
                silent_double=args.chaos_silent_double,
            )
            updates: dict = {}
            if not plan.is_empty():
                updates["faults"] = plan.freeze()
            if frozen_abft:
                updates["abft"] = frozen_abft
            if updates:
                job.point = replace(job.point, **updates)

    default_budget = _budget_from_args(args)
    tracing = args.tracing or bool(args.trace_out)
    slo_target = None
    if args.slo_availability is not None or args.slo_p99 is not None:
        from repro.observability.slo import SLOTarget

        slo_target = SLOTarget(
            name="cli",
            availability=(
                args.slo_availability
                if args.slo_availability is not None
                else 0.999
            ),
            latency_p99=args.slo_p99,
        )
    if args.shards > 0:
        if args.workers < 1:
            parser.error("--shards needs --workers >= 1 in each shard")
        store_dir = args.store_dir
        if store_dir is None and args.journal_dir:
            # co-locate the shared store with the journal so a recovery
            # run reuses the crashed incarnation's computed results
            import os as _os

            store_dir = _os.path.join(args.journal_dir, "store")
        chaos = None
        if chaos_flags:
            from repro.faults.plan import ClusterFaultPlan

            chaos = ClusterFaultPlan(
                seed=args.chaos_cluster_seed,
                kill_every=args.chaos_kill_every,
                shard_kill=args.chaos_shard_kill,
                pipe_drop=args.chaos_pipe_drop,
                poison=args.chaos_poison,
                crash_at_record=args.chaos_crash_at_record,
            )
        cluster_kwargs = dict(
            shards=args.shards,
            mode="process",
            workers_per_shard=args.workers,
            queue_capacity=args.queue_capacity,
            retries=args.retries,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_budget=default_budget,
            store_dir=store_dir,
            health_dir=args.health_dir,
            # tight enough that a supervised respawn (backoff ~0.1-0.2s)
            # lands while a short soak is still draining
            monitor_interval=0.2,
            heartbeat_timeout=args.heartbeat_timeout,
            rebalance_debounce=args.rebalance_debounce,
            tracing=tracing,
            telemetry=tracing,
            slo_target=slo_target,
            journal_dir=args.journal_dir,
            # an armed crash models SIGKILL: no cleanup, exit code 75
            journal_crash_mode="exit",
            chaos=chaos,
            supervise=args.supervise,
            restart_budget=args.restart_budget,
        )
        if args.recover:
            from repro.serving.cluster import ServingCluster

            cluster_kwargs.pop("journal_dir")
            client = ServingClient(
                ServingCluster.recover(args.journal_dir, **cluster_kwargs)
            )
        else:
            client = ServingClient.cluster(**cluster_kwargs)
        window = args.window or args.queue_capacity * args.shards
    else:
        if args.backpressure and args.workers < 1:
            parser.error(
                "--backpressure needs --workers >= 1 to drain the queue"
            )
        if args.kill_shard is not None:
            parser.error("--kill-shard needs --shards")
        client = ServingClient.local(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            retries=args.retries,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_budget=default_budget,
            tracing=tracing,
        )
        # --backpressure's historical contract: throttle submission to
        # the waiting room's capacity.  The client's bounded window is
        # exactly that throttle.
        window = args.window or (
            args.queue_capacity if args.backpressure else max(len(jobs), 1)
        )

    responses = []
    kill_name = (
        f"shard-{args.kill_shard}" if args.kill_shard is not None else None
    )
    try:
        completed = 0
        for ticket in getattr(client.backend, "recovered", ()):
            response = ticket.result(timeout=600)
            responses.append(response)
            completed += 1
            if not args.quiet:
                print(
                    f"[serve] recovered {response.job_id}: {response.status}"
                    + (f" ({response.reason})" if response.reason else ""),
                    file=sys.stderr,
                )
        if args.recover:
            print(
                f"[serve] journal replay: {len(responses)} job(s) "
                "resubmitted and terminal",
                file=sys.stderr,
            )
        for job, response in client.stream(jobs, window=window, timeout=600):
            responses.append(response)
            completed += 1
            if not args.quiet:
                print(
                    f"[serve] {response.job_id}: {response.status}"
                    + (f" ({response.reason})" if response.reason else ""),
                    file=sys.stderr,
                )
            if kill_name is not None and completed >= args.kill_after:
                print(f"[serve] killing {kill_name}", file=sys.stderr)
                client.backend.kill_shard(kill_name)
                kill_name = None
        health = client.health()
        readiness = client.readiness()
    finally:
        client.close()

    by_status: "dict[str, int]" = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    print(f"[serve] {len(responses)} jobs: {by_status}", file=sys.stderr)
    if args.shards > 0:
        print(
            f"[serve] ring: {health['ring']['nodes']} "
            f"rebalances={health['rebalances']} "
            f"resubmitted={health['resubmitted']} store={health['store']}",
            file=sys.stderr,
        )
        if "journal" in health:
            print(
                f"[serve] journal: {health['journal']['records']} record(s) "
                f"at {health['journal']['path']}",
                file=sys.stderr,
            )
        if "supervisor" in health:
            print(
                f"[serve] supervisor: respawns={health['supervisor']['respawns']}",
                file=sys.stderr,
            )
    else:
        print(f"[serve] breakers: {health['breakers']}", file=sys.stderr)
    if args.shards > 0 and "slo" in health:
        slo = health["slo"]
        budget_doc = slo.get("error_budget") or {}
        print(
            f"[serve] slo: availability={slo.get('availability', 1.0):.5f} "
            f"burn={budget_doc.get('burn', 0.0):.2f} "
            f"violations={slo.get('violations') or 'none'}",
            file=sys.stderr,
        )
    if args.trace_out:
        from repro.observability.tracing import write_cluster_trace

        traces = [r.trace for r in responses if r.trace]
        path = write_cluster_trace(traces, args.trace_out)
        print(
            f"[serve] wrote {path} ({len(traces)} trace(s))",
            file=sys.stderr,
        )
    if args.out:
        atomic_write_json(
            args.out,
            [r.to_dict() for r in responses],
            indent=1,
            sort_keys=True,
        )
        print(f"[serve] wrote {args.out}", file=sys.stderr)
    if args.metrics_out:
        atomic_write_json(
            args.metrics_out, METRICS.to_dict(), indent=1, sort_keys=True
        )
        print(f"[serve] wrote {args.metrics_out}", file=sys.stderr)
    if args.health_out:
        atomic_write_json(
            args.health_out,
            {"health": health, "readiness": readiness},
            indent=1,
            sort_keys=True,
        )
        print(f"[serve] wrote {args.health_out}", file=sys.stderr)
    return 1 if by_status.get(FAILED, 0) else 0


__all__ = ["serve_main", "submit_main"]
