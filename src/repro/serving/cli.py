"""``repro serve`` / ``repro submit``: the service from the shell.

``repro submit`` is the one-shot client: build one job (a sequential
``chol`` or a parallel ``pxpotrf`` point, with optional priority,
budget caps and deadline), run it through a fresh single-worker
service, and print the structured :class:`ServiceResponse` as JSON.
The exit code mirrors the terminal status: 0 for ``done`` and
``degraded`` (both are answers), 1 for ``failed``, 2 for ``shed``. ::

    repro submit chol --algorithm lapack --n 96 --M 288
    repro submit chol --algorithm toledo --n 128 --M 384 --max-words 50000
    repro submit pxpotrf --n 64 --block 16 --P 4 --deadline 5

``repro serve`` is the batch driver: feed a JSON workload (or a
generated ``--demo`` mix) through a configured service and write one
response record per job.  Every job reaches a terminal state; the exit
code is 1 only if any job *failed* (sheds and degradations are the
service doing its job).  ``--metrics-out`` dumps the metrics registry
for scraping, ``--chaos-*`` flags wrap every job in a deterministic
fault plan. ::

    repro serve --workload jobs.json --workers 4 --out responses.json
    repro serve --demo 50 --queue-capacity 8 --deadline 2 --metrics-out m.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.spec import PARALLEL, SEQUENTIAL, SpecPoint
from repro.serving.budget import Budget
from repro.serving.jobs import FAILED, Job, job_from_dict
from repro.serving.queue import parse_priority
from repro.serving.service import FactorizationService
from repro.util.serialization import atomic_write_json


def _budget_from_args(args) -> "Budget | None":
    budget = Budget(
        max_words=args.max_words,
        max_messages=args.max_messages,
        max_flops=args.max_flops,
        deadline_seconds=args.deadline,
    )
    return None if budget.is_unlimited() else budget


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-words", type=int, default=None,
        help="simulated-cost cap: words moved (cumulative over retries)",
    )
    parser.add_argument(
        "--max-messages", type=int, default=None,
        help="simulated-cost cap: messages",
    )
    parser.add_argument(
        "--max-flops", type=int, default=None,
        help="simulated-cost cap: flops",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline, measured from submission",
    )


def submit_main(argv: "list[str]") -> int:
    """``repro submit``: one job, one structured JSON response."""
    from repro.cli import normalize_algorithm

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit one factorization job to a fresh service "
        "instance and print its terminal response as JSON.",
    )
    parser.add_argument(
        "target", choices=("chol", "pxpotrf"),
        help="sequential Cholesky or the parallel PxPOTRF",
    )
    parser.add_argument(
        "--algorithm", default="lapack", metavar="NAME",
        help="sequential algorithm (chol only; default: lapack)",
    )
    parser.add_argument(
        "--layout", default="column-major", help="storage layout (chol only)"
    )
    parser.add_argument("--n", type=int, default=64, help="matrix dimension")
    parser.add_argument(
        "--M", type=int, default=None,
        help="fast-memory words (chol only; default: 3*n)",
    )
    parser.add_argument(
        "--block", type=int, default=None,
        help="distribution block (pxpotrf; default: n/sqrt(P))",
    )
    parser.add_argument(
        "--P", type=int, default=4, help="processors (pxpotrf; default: 4)"
    )
    parser.add_argument("--seed", type=int, default=0, help="input matrix seed")
    parser.add_argument(
        "--priority", default="normal",
        help="job priority: low/normal/high or an integer (default: normal)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the reference-Cholesky correctness check",
    )
    _add_budget_args(parser)
    args = parser.parse_args(argv)

    if args.target == "chol":
        point = SpecPoint(
            kind=SEQUENTIAL,
            algorithm=normalize_algorithm(args.algorithm),
            layout=args.layout,
            n=args.n,
            M=args.M if args.M is not None else 3 * args.n,
            seed=args.seed,
            verify=not args.no_verify,
        )
    else:
        import math

        root = math.isqrt(args.P)
        if root * root != args.P:
            parser.error(f"--P must be a perfect square, got {args.P}")
        block = args.block if args.block is not None else max(1, args.n // root)
        point = SpecPoint(
            kind=PARALLEL,
            algorithm="pxpotrf",
            layout="block-cyclic",
            n=args.n,
            M=None,
            P=args.P,
            block=block,
            seed=args.seed,
            verify=not args.no_verify,
        )

    job = Job(
        point=point,
        priority=parse_priority(args.priority),
        budget=_budget_from_args(args),
    )
    svc = FactorizationService(workers=0, queue_capacity=1)
    try:
        ticket = svc.submit(job)
        svc.run_pending()
        response = ticket.result(timeout=0)
    finally:
        svc.stop()
    print(json.dumps(response.to_dict(), indent=2, sort_keys=True))
    if response.status == FAILED:
        return 1
    if response.status == "shed":
        return 2
    return 0


def _demo_workload(count: int, seed: int = 0) -> "list[Job]":
    """A deterministic mixed-priority, mixed-kind workload."""
    algorithms = [
        ("naive-left", "column-major"),
        ("lapack", "column-major"),
        ("toledo", "column-major"),
        ("square-recursive", "column-major"),
    ]
    priorities = ["low", "normal", "normal", "high"]
    jobs = []
    for i in range(count):
        if i % 5 == 4:
            n = 16 + 8 * (i % 3)
            point = SpecPoint(
                kind=PARALLEL,
                algorithm="pxpotrf",
                layout="block-cyclic",
                n=n,
                M=None,
                P=4,
                block=max(1, n // 2),
                seed=seed + i,
                verify=True,
            )
        else:
            alg, layout = algorithms[i % len(algorithms)]
            n = 24 + 8 * (i % 4)
            point = SpecPoint(
                kind=SEQUENTIAL,
                algorithm=alg,
                layout=layout,
                n=n,
                M=4 * n,
                seed=seed + i,
                verify=True,
            )
        jobs.append(
            Job(
                point=point,
                priority=parse_priority(priorities[i % len(priorities)]),
            )
        )
    return jobs


def serve_main(argv: "list[str]") -> int:
    """``repro serve``: drive a workload through the service."""
    from repro.faults.plan import FaultPlan
    from repro.observability.metrics import METRICS

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a job workload through the resilient "
        "factorization service; every job reaches a terminal "
        "done/degraded/shed/failed state.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--workload", metavar="FILE",
        help="JSON list of job records: {point: {...}, priority, budget}",
    )
    source.add_argument(
        "--demo", type=int, metavar="COUNT",
        help="generate a deterministic mixed workload of COUNT jobs",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker threads (default: 2)"
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=16,
        help="admission-queue bound (default: 16)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="execution retries per job (default: 1)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures that trip a breaker (default: 3)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=1.0,
        help="seconds an open breaker waits before probing (default: 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (--demo)"
    )
    parser.add_argument(
        "--chaos-drop", type=float, default=0.0,
        help="wrap every job in a fault plan with this drop probability",
    )
    parser.add_argument(
        "--chaos-read-fault", type=float, default=0.0,
        help="wrap every sequential job with this read-fault probability",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=1, help="fault-plan seed"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write all responses as a JSON list"
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="dump the metrics registry as JSON at the end",
    )
    parser.add_argument(
        "--backpressure", action="store_true",
        help="throttle submission to queue capacity instead of "
        "load-shedding the burst (workers >= 1 only)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job lines"
    )
    _add_budget_args(parser)
    args = parser.parse_args(argv)

    if args.workload:
        with open(args.workload, "r", encoding="utf-8") as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            parser.error(f"{args.workload} must hold a JSON list of jobs")
        jobs = [job_from_dict(r) for r in records]
    else:
        jobs = _demo_workload(args.demo, seed=args.seed)

    if args.chaos_drop or args.chaos_read_fault:
        from dataclasses import replace

        for job in jobs:
            plan = FaultPlan(
                seed=args.chaos_seed + job.point.seed,
                drop=args.chaos_drop if job.point.kind == PARALLEL else 0.0,
                read_fault=(
                    args.chaos_read_fault
                    if job.point.kind != PARALLEL
                    else 0.0
                ),
            )
            if not plan.is_empty():
                job.point = replace(job.point, faults=plan.freeze())

    default_budget = _budget_from_args(args)
    svc = FactorizationService(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        default_budget=default_budget,
    )
    if args.backpressure and args.workers < 1:
        parser.error("--backpressure needs --workers >= 1 to drain the queue")

    responses = []
    try:
        tickets = []
        for job in jobs:
            if args.backpressure:
                import time as _time

                while not svc.readiness()["ready"]:
                    _time.sleep(0.005)
            tickets.append(svc.submit(job))
        if args.workers == 0:
            svc.run_pending()
        for ticket in tickets:
            response = ticket.result(timeout=600)
            responses.append(response)
            if not args.quiet:
                print(
                    f"[serve] {response.job_id}: {response.status}"
                    + (f" ({response.reason})" if response.reason else ""),
                    file=sys.stderr,
                )
    finally:
        svc.stop()

    by_status: "dict[str, int]" = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    print(f"[serve] {len(responses)} jobs: {by_status}", file=sys.stderr)
    health = svc.health()
    print(f"[serve] breakers: {health['breakers']}", file=sys.stderr)
    if args.out:
        atomic_write_json(
            args.out,
            [r.to_dict() for r in responses],
            indent=1,
            sort_keys=True,
        )
        print(f"[serve] wrote {args.out}", file=sys.stderr)
    if args.metrics_out:
        atomic_write_json(
            args.metrics_out, METRICS.to_dict(), indent=1, sort_keys=True
        )
        print(f"[serve] wrote {args.metrics_out}", file=sys.stderr)
    return 1 if by_status.get(FAILED, 0) else 0


__all__ = ["serve_main", "submit_main"]
