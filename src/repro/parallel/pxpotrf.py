"""Algorithm 9: ScaLAPACK's PxPOTRF on the simulated network.

Per panel ``J`` (Figure 6, right):

1. the owner of the diagonal block factors it locally;
2. the factor is broadcast down the grid column that owns panel ``J``
   (``b(b+1)/2`` words, ⌈log₂ P_r⌉ deep);
3. every processor owning panel blocks triangular-solves *all* of
   them, then broadcasts the bundle across its grid row in **one**
   message (the batching §3.3.1's count relies on);
4. every processor owning trailing diagonal blocks re-broadcasts the
   panel blocks its grid column needs down that column (again one
   bundled message per source);
5. every owner of a trailing block updates it with the two panel
   blocks it received.

Every processor touches only blocks it owns or has received — a
forgotten broadcast is a numerically wrong factor, which is what the
correctness tests would catch.

§3.3.1's critical-path predictions, which the T2 bench reproduces:

    messages = (3/2)·(n/b)·log₂P,
    words    = (n·b/4 + n²/√P)·log₂P,

latency-optimal at the largest block size ``b = n/√P``, while flops
stay O(n³/P) — losing nothing on the computational bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.observability.spans import SpanProfile, observe
from repro.parallel.blockcyclic import BlockCyclicMatrix
from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network
from repro.results import Measurement
from repro.sequential.flops import cholesky_flops, gemm_flops, syrk_flops, trsm_flops
from repro.sequential.kernels import dense_cholesky, solve_lower_transposed_right
from repro.util.validation import check_positive_int


@dataclass
class ParallelRunResult:
    """Outcome of a PxPOTRF run: the factor plus the accounting."""

    L: np.ndarray
    network: Network
    n: int
    block: int
    P: int
    #: Span tree of the run (``None`` unless ``observe=True``).
    profile: "SpanProfile | None" = None

    @property
    def critical_words(self) -> int:
        return self.network.critical_words

    @property
    def critical_messages(self) -> int:
        return self.network.critical_messages

    @property
    def max_flops(self) -> int:
        return self.network.max_flops

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.network.processors)

    @property
    def max_words(self) -> int:
        return self.network.max_words

    @property
    def peak_buffer_words(self) -> int:
        return max(p.peak_buffer_words for p in self.network.processors)

    @property
    def measurement(self) -> Measurement:
        """The run in the unified :class:`~repro.results.Measurement` schema.

        ``words``/``messages`` carry the critical-path counts and
        ``flops`` the max per-processor work, so Table 1 and Table 2
        consumers read one type.  The DAM read/write split does not
        exist on the network; ``words_read`` mirrors ``words`` and
        ``words_written`` is 0 by convention.
        """
        return Measurement(
            algorithm="pxpotrf",
            layout="block-cyclic",
            n=self.n,
            M=None,
            words=int(self.critical_words),
            messages=int(self.critical_messages),
            words_read=int(self.critical_words),
            words_written=0,
            flops=int(self.max_flops),
            correct=True,
            P=self.P,
            block=self.block,
            profile=None if self.profile is None else self.profile.to_dict(),
        )

    @property
    def peak_memory_words(self) -> int:
        """Largest per-processor footprint: owned blocks + transient
        receive buffers.  The 2D memory-scalability premise
        (M = O(n²/P), Section 1) demands this stay O(n²/P + n·b)."""
        return max(
            sum(int(v.size) for v in p.store.values()) + p.peak_buffer_words
            for p in self.network.processors
        )


def pxpotrf(
    a: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    gamma: float = 0.0,
    observe_spans: bool = False,
) -> ParallelRunResult:
    """Run Algorithm 9 on a fresh simulated network.

    Parameters
    ----------
    a:
        Symmetric positive definite matrix.
    block:
        Distribution/algorithm block size ``b``.
    grid:
        A :class:`ProcessorGrid`, or an integer P (perfect square)
        for the paper's square grid.
    alpha, beta, gamma:
        Per-message, per-word, and per-flop costs of the simulated
        machine (only the critical-path *time* depends on them; the
        word/message counts do not).
    observe_spans:
        If true, attach a span recorder to the network and record one
        ``panel`` span per step with children for each of the five
        sub-steps; the tree is returned as the result's ``profile``.
        Counters are read-only snapshots, so the measured counts are
        identical either way.

    Returns a :class:`ParallelRunResult` whose ``L`` satisfies
    ``L·Lᵀ = a``.
    """
    if isinstance(grid, int):
        grid = ProcessorGrid.square(grid)
    check_positive_int("block", block)
    network = Network(grid.size, alpha=alpha, beta=beta, gamma=gamma)
    recorder = observe(network, name="pxpotrf") if observe_spans else None
    prof = network.profiler
    dist = BlockCyclicMatrix(a, block, grid, network)
    nb = dist.nblocks

    for J in range(nb):
        jc = J % grid.cols
        w = dist.block_dim(J)
        diag_owner = dist.owner(J, J)

        with prof.span("panel", J=J):
            # -- 1. local factorization of the diagonal block --------------
            with prof.span("potf2"):
                owner_proc = network[diag_owner]
                ljj = dense_cholesky(owner_proc.store[("A", J, J)])
                owner_proc.store[("A", J, J)] = ljj
                network.compute(diag_owner, cholesky_flops(w))

            if J == nb - 1:
                break  # no trailing work after the last panel

            # -- 2. broadcast the factor down the owning grid column -------
            with prof.span("bcast-diag"):
                network.broadcast(
                    diag_owner,
                    grid.col_group(jc),
                    words=w * (w + 1) // 2,
                    payload=ljj,
                    key=("diag", J),
                )

            # -- 3. panel solves + bundled row broadcasts --------------------
            with prof.span("panel-solve"):
                panel_by_owner: dict[int, list[int]] = defaultdict(list)
                for I in range(J + 1, nb):
                    panel_by_owner[dist.owner(I, J)].append(I)
                for rank, rows in sorted(panel_by_owner.items()):
                    proc = network[rank]
                    ljj_local = proc.inbox[("diag", J)]
                    bundle: dict[int, np.ndarray] = {}
                    for I in rows:
                        lij = solve_lower_transposed_right(
                            proc.store[("A", I, J)], ljj_local
                        )
                        proc.store[("A", I, J)] = lij
                        network.compute(rank, trsm_flops(dist.block_dim(I), w))
                        bundle[I] = lij
                    r = grid.position(rank)[0]
                    network.broadcast(
                        rank,
                        grid.row_group(r),
                        words=sum(v.size for v in bundle.values()),
                        payload=bundle,
                        key=("panelrow", J, r),
                    )

            # -- 4. bundled re-broadcasts down the trailing grid columns -----
            with prof.span("bcast-panel"):
                diag_by_owner: dict[int, list[int]] = defaultdict(list)
                for l in range(J + 1, nb):
                    diag_by_owner[dist.owner(l, l)].append(l)
                for rank, diags in sorted(diag_by_owner.items()):
                    proc = network[rank]
                    r, c = grid.position(rank)
                    row_bundle = proc.inbox[("panelrow", J, r)]
                    col_bundle = {l: row_bundle[l] for l in diags}
                    # key includes the source grid row: on non-square grids a
                    # column hosts several diagonal owners (one per grid row)
                    network.broadcast(
                        rank,
                        grid.col_group(c),
                        words=sum(v.size for v in col_bundle.values()),
                        payload=col_bundle,
                        key=("panelcol", J, c, r),
                    )

            # -- 5. trailing updates with received panel blocks ---------------
            with prof.span("update"):
                for l in range(J + 1, nb):
                    for k in range(l, nb):
                        rank = dist.owner(k, l)
                        proc = network[rank]
                        lkj = proc.inbox[
                            ("panelrow", J, grid.position(rank)[0])
                        ][k]
                        llj = proc.inbox[
                            ("panelcol", J, l % grid.cols, l % grid.rows)
                        ][l]
                        proc.store[("A", k, l)] = (
                            proc.store[("A", k, l)] - lkj @ llj.T
                        )
                        dk, dl = dist.block_dim(k), dist.block_dim(l)
                        if k == l:
                            network.compute(rank, syrk_flops(dk, w))
                        else:
                            network.compute(rank, gemm_flops(dk, w, dl))

            network.clear_inboxes()

    L = dist.gather_lower()
    return ParallelRunResult(
        L=L,
        network=network,
        n=dist.global_n,
        block=block,
        P=grid.size,
        profile=None if recorder is None else recorder.profile(),
    )
