"""Algorithm 9: ScaLAPACK's PxPOTRF on the simulated network.

Per panel ``J`` (Figure 6, right):

1. the owner of the diagonal block factors it locally;
2. the factor is broadcast down the grid column that owns panel ``J``
   (``b(b+1)/2`` words, ⌈log₂ P_r⌉ deep);
3. every processor owning panel blocks triangular-solves *all* of
   them, then broadcasts the bundle across its grid row in **one**
   message (the batching §3.3.1's count relies on);
4. every processor owning trailing diagonal blocks re-broadcasts the
   panel blocks its grid column needs down that column (again one
   bundled message per source);
5. every owner of a trailing block updates it with the two panel
   blocks it received.

Every processor touches only blocks it owns or has received — a
forgotten broadcast is a numerically wrong factor, which is what the
correctness tests would catch.

**Fault tolerance** (:mod:`repro.faults`): with a fault plan attached,
sends run over the network's ack/retry transport, and per-round buddy
checkpointing guards against fail-stop ranks.  After every panel each
rank bundles the blocks it modified that round into one message to its
buddy ``(rank+1) mod P``; when a rank fail-stops at the start of round
``k`` it lost everything, but the buddy holds exactly its
end-of-round-``k−1`` state, so one restore message rebuilds it and the
factorization continues to the *bit-identical* factor a failure-free
run produces.  Checkpoint and recovery traffic is charged to the same
clocks and path counters as the algorithm's own sends and reported
separately in :class:`~repro.faults.FaultStats`.

§3.3.1's critical-path predictions, which the T2 bench reproduces:

    messages = (3/2)·(n/b)·log₂P,
    words    = (n·b/4 + n²/√P)·log₂P,

latency-optimal at the largest block size ``b = n/√P``, while flops
stay O(n³/P) — losing nothing on the computational bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.abft import AbftConfig, SilentCorruptionError, factor_attestation
from repro.abft.guardian import AbftStats, SilentInjector
from repro.abft.sealing import open_sealed, seal
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FaultPlan
from repro.observability.spans import SpanProfile, observe
from repro.parallel.blockcyclic import BlockCyclicMatrix
from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network
from repro.results import Measurement
from repro.sequential.flops import cholesky_flops, gemm_flops, syrk_flops, trsm_flops
from repro.sequential.kernels import dense_cholesky, solve_lower_transposed_right
from repro.util.fastpath import fastpath_enabled
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_positive_int,
)


@dataclass
class ParallelRunResult:
    """Outcome of a PxPOTRF run: the factor plus the accounting."""

    L: np.ndarray
    network: Network
    n: int
    block: int
    P: int
    #: Span tree of the run (``None`` unless ``observe=True``).
    profile: "SpanProfile | None" = None
    #: Realized faults + resilience overhead (``None`` on a plain run).
    fault_stats: "FaultStats | None" = None
    #: The ``abft`` counter group (config + stats + attestation) when
    #: the run was checksum-protected, else ``None``.
    abft: "dict | None" = None

    @property
    def critical_words(self) -> int:
        return self.network.critical_words

    @property
    def critical_messages(self) -> int:
        return self.network.critical_messages

    @property
    def max_flops(self) -> int:
        return self.network.max_flops

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.network.processors)

    @property
    def max_words(self) -> int:
        return self.network.max_words

    @property
    def peak_buffer_words(self) -> int:
        return max(p.peak_buffer_words for p in self.network.processors)

    @property
    def measurement(self) -> Measurement:
        """The run in the unified :class:`~repro.results.Measurement` schema.

        ``words``/``messages`` carry the critical-path counts and
        ``flops`` the max per-processor work, so Table 1 and Table 2
        consumers read one type.  The DAM read/write split does not
        exist on the network; ``words_read`` mirrors ``words`` and
        ``words_written`` is 0 by convention.
        """
        return Measurement(
            algorithm="pxpotrf",
            layout="block-cyclic",
            n=self.n,
            M=None,
            words=int(self.critical_words),
            messages=int(self.critical_messages),
            words_read=int(self.critical_words),
            words_written=0,
            flops=int(self.max_flops),
            correct=True,
            P=self.P,
            block=self.block,
            profile=None if self.profile is None else self.profile.to_dict(),
            faults=None if self.fault_stats is None else self.fault_stats.to_dict(),
            abft=self.abft,
        )

    @property
    def recovery_words(self) -> int:
        """Words spent rebuilding fail-stopped ranks (0 on a clean run)."""
        return 0 if self.fault_stats is None else self.fault_stats.recovery_words

    @property
    def recovery_messages(self) -> int:
        """Messages spent rebuilding fail-stopped ranks (0 on a clean run)."""
        return (
            0 if self.fault_stats is None else self.fault_stats.recovery_messages
        )

    @property
    def peak_memory_words(self) -> int:
        """Largest per-processor footprint: owned blocks + transient
        receive buffers.  The 2D memory-scalability premise
        (M = O(n²/P), Section 1) demands this stay O(n²/P + n·b)."""
        return max(
            sum(int(v.size) for v in p.store.values()) + p.peak_buffer_words
            for p in self.network.processors
        )


def _buddy(rank: int, P: int) -> int:
    """The rank holding ``rank``'s checkpoints: its grid successor."""
    return (rank + 1) % P


def _checkpoint(
    network: Network,
    rank: int,
    keys,
    stats: FaultStats,
) -> None:
    """Send copies of ``rank``'s blocks under ``keys`` to its buddy.

    One bundled message (the same batching discipline as the panel
    broadcasts); charged like any other send, tallied as checkpoint
    overhead.  The buddy files the copies under the owner's rank.
    """
    proc = network[rank]
    blocks = {k: proc.store[k].copy() for k in keys if k in proc.store}
    if not blocks:
        return
    words = sum(int(v.size) for v in blocks.values())
    buddy = _buddy(rank, network.P)
    network.send(rank, buddy, words)
    network[buddy].ckpt.setdefault(rank, {}).update(blocks)
    stats.checkpoint_words += words
    stats.checkpoint_messages += 1


def _recover(network: Network, rank: int, stats: FaultStats) -> None:
    """Rebuild a fail-stopped rank from its buddy's checkpoint.

    The rank restarts empty; the buddy streams back its
    end-of-last-round state in one bundled message.  Because the rank
    also *held* checkpoints (for its predecessor) that died with it,
    the predecessor re-checkpoints its current state afterwards —
    strict state loss, no free lunches.  All traffic is charged to the
    ordinary counters and tallied as recovery overhead.
    """
    P = network.P
    buddy = _buddy(rank, P)
    network.fail(rank)
    network.restart(rank)
    saved = network[buddy].ckpt.get(rank, {})
    words = sum(int(v.size) for v in saved.values())
    network.send(buddy, rank, words)
    network[rank].store.update({k: v.copy() for k, v in saved.items()})
    stats.recovery_words += words
    stats.recovery_messages += 1
    # the checkpoints this rank held for its predecessor died with it
    prev = (rank - 1) % P
    if prev != rank:
        prev_blocks = {
            k: v.copy() for k, v in network[prev].store.items()
        }
        pwords = sum(int(v.size) for v in prev_blocks.values())
        network.send(prev, rank, pwords)
        network[rank].ckpt[prev] = prev_blocks
        stats.recovery_words += pwords
        stats.recovery_messages += 1


def pxpotrf(
    a: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    gamma: float = 0.0,
    observe_spans: bool = False,
    faults: "FaultPlan | None" = None,
    checkpoint: bool | None = None,
    guard=None,
    abft: "AbftConfig | dict | bool | None" = None,
) -> ParallelRunResult:
    """Run Algorithm 9 on a fresh simulated network.

    With ``abft`` set (an :class:`~repro.abft.AbftConfig`, a config
    dict, or ``True``), every broadcast payload travels checksum-sealed
    (:mod:`repro.abft.sealing`): receivers verify on open, correct a
    single silently flipped element in place, and escalate double
    faults by rebuilding the network and re-running under an
    attempt-salted fault schedule (``max_attempts`` bound).  Checksum
    words ride the same broadcasts and receiver re-summing flops go
    through the per-rank compute clock; the result's ``abft`` record
    carries the counter group and a factor attestation digest.
    """
    cfg = AbftConfig.coerce(abft)
    if cfg is None:
        return _pxpotrf_once(
            a, block, grid, alpha=alpha, beta=beta, gamma=gamma,
            observe_spans=observe_spans, faults=faults,
            checkpoint=checkpoint, guard=guard,
        )
    abft_stats = AbftStats()
    attempt = 0
    while True:
        abft_stats.attempts = attempt + 1
        try:
            return _pxpotrf_once(
                a, block, grid, alpha=alpha, beta=beta, gamma=gamma,
                observe_spans=observe_spans, faults=faults,
                checkpoint=checkpoint, guard=guard,
                abft_cfg=cfg, abft_stats=abft_stats, abft_attempt=attempt,
            )
        except SilentCorruptionError:
            attempt += 1
            if attempt >= cfg.max_attempts:
                raise


def _pxpotrf_once(
    a: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    gamma: float = 0.0,
    observe_spans: bool = False,
    faults: "FaultPlan | None" = None,
    checkpoint: bool | None = None,
    guard=None,
    abft_cfg: "AbftConfig | None" = None,
    abft_stats: "AbftStats | None" = None,
    abft_attempt: int = 0,
) -> ParallelRunResult:
    """One attempt of Algorithm 9 on a fresh simulated network.

    Parameters
    ----------
    a:
        Symmetric positive definite matrix.
    block:
        Distribution/algorithm block size ``b``.
    grid:
        A :class:`ProcessorGrid`, or an integer P (perfect square)
        for the paper's square grid.
    alpha, beta, gamma:
        Per-message, per-word, and per-flop costs of the simulated
        machine (only the critical-path *time* depends on them; the
        word/message counts do not).
    observe_spans:
        If true, attach a span recorder to the network and record one
        ``panel`` span per step with children for each of the five
        sub-steps; the tree is returned as the result's ``profile``.
        Counters are read-only snapshots, so the measured counts are
        identical either way.
    faults:
        A :class:`~repro.faults.FaultPlan` to inject; panel rounds are
        the plan's fail-stop rounds.  ``None`` or an empty plan keeps
        every counter bit-identical to the historical failure-free
        run.
    checkpoint:
        Force buddy checkpointing on/off; by default it is enabled
        exactly when the plan schedules fail-stops.  Requires P ≥ 2.
    guard:
        Optional :class:`~repro.serving.budget.BudgetGuard`; every
        transmission and compute call reports its cost to it, and the
        run aborts with
        :class:`~repro.serving.budget.BudgetExceeded` when a cap is
        crossed.  ``None`` keeps the unmetered fast path.

    Returns a :class:`ParallelRunResult` whose ``L`` satisfies
    ``L·Lᵀ = a`` — under fail-stop faults too (checkpoint recovery
    reconstructs lost state exactly).
    """
    if isinstance(grid, int):
        grid = ProcessorGrid.square(grid)
    check_positive_int("block", block)
    check_finite("a", a)
    network = Network(grid.size, alpha=alpha, beta=beta, gamma=gamma)
    injector = network.attach_faults(faults)
    network.attach_guard(guard)
    ckpt_on = (
        bool(checkpoint)
        if checkpoint is not None
        else bool(injector is not None and injector.plan.failstops)
    )
    if injector is not None and injector.plan.failstops and not ckpt_on:
        raise ValidationError(
            "fault plan schedules fail-stops but checkpointing is disabled; "
            "a failed rank could never be recovered"
        )
    if ckpt_on and grid.size < 2:
        raise ValidationError("buddy checkpointing needs at least 2 processors")
    stats = injector.stats if injector is not None else FaultStats()
    recorder = observe(network, name="pxpotrf") if observe_spans else None
    prof = network.profiler
    dist = BlockCyclicMatrix(a, block, grid, network)
    nb = dist.nblocks

    # -- ABFT: sealed broadcast channel -------------------------------
    # Every broadcast payload travels as a SealedBlock (data + exact
    # uint64 row/column checksums).  Receivers open-and-verify before
    # *using* a block, so a silently flipped payload element either
    # heals in place (single fault) or raises SilentCorruptionError
    # before it can contaminate any trailing update.  Strike decisions
    # hash the logical message identity plus the receiving rank — never
    # the content or delivery order — so schedules are byte-identical
    # across runs and worker counts.
    ab_armed = abft_cfg is not None
    ab_injector = (
        SilentInjector(abft_cfg.plan or faults, abft_attempt)
        if ab_armed
        else None
    )
    opened: dict = {}

    def seal_block(rank: int, data: np.ndarray):
        """Seal one payload, charging the summing flops to the sender."""
        sealed = seal(data)
        h, ww = sealed.shape
        network.compute(rank, 2 * h * ww)
        abft_stats.checksum_flops += 2 * h * ww
        return sealed

    def open_block(rank: int, key: tuple, idx: "int | None" = None):
        """Verify-and-open a sealed inbox payload, once per receiver.

        The memo means a rank that uses the same received block in
        several trailing updates pays the 2·h·w verification flops
        (charged to its compute clock) exactly once per round.
        """
        memo = (rank, key, idx)
        if memo in opened:
            return opened[memo]
        sealed = network[rank].inbox[key]
        if idx is not None:
            sealed = sealed[idx]
        ident = key + ((idx,) if idx is not None else ()) + (rank,)
        data = open_sealed(
            sealed, injector=ab_injector, stats=abft_stats, key=ident
        )
        h, ww = data.shape
        network.compute(rank, 2 * h * ww)
        opened[memo] = data
        return data

    if ckpt_on:
        # round "-1" checkpoint: every rank's initial blocks, so a rank
        # fail-stopping at round 0 is recoverable too
        with prof.span("checkpoint", J=-1):
            for rank in range(network.P):
                _checkpoint(
                    network, rank, list(network[rank].store.keys()), stats
                )

    for J in range(nb):
        # fail-stops fire at round boundaries: the rank lost everything
        # after finishing round J-1, which is exactly the state its
        # buddy checkpointed — recover before any round-J traffic
        if injector is not None:
            for rank in injector.failstops_due(J):
                with prof.span("recover", J=J, rank=rank):
                    _recover(network, rank, stats)

        jc = J % grid.cols
        w = dist.block_dim(J)
        diag_owner = dist.owner(J, J)
        dirty: dict[int, set] = defaultdict(set)

        with prof.span("panel", J=J):
            # -- 1. local factorization of the diagonal block --------------
            with prof.span("potf2"):
                owner_proc = network[diag_owner]
                ljj = dense_cholesky(
                    owner_proc.store[("A", J, J)], stage=f"pxpotrf panel J={J}"
                )
                owner_proc.store[("A", J, J)] = ljj
                network.compute(diag_owner, cholesky_flops(w))
                dirty[diag_owner].add(("A", J, J))

            if J == nb - 1:
                break  # no trailing work after the last panel

            # -- 2. broadcast the factor down the owning grid column -------
            with prof.span("bcast-diag"):
                if ab_armed:
                    # checksum words (2·w) ride the same broadcast and
                    # are charged through the same network chokepoint
                    network.broadcast(
                        diag_owner,
                        grid.col_group(jc),
                        words=w * (w + 1) // 2 + 2 * w,
                        payload=seal_block(diag_owner, ljj),
                        key=("diag", J),
                    )
                else:
                    network.broadcast(
                        diag_owner,
                        grid.col_group(jc),
                        words=w * (w + 1) // 2,
                        payload=ljj,
                        key=("diag", J),
                    )

            # -- 3. panel solves + bundled row broadcasts --------------------
            with prof.span("panel-solve"):
                panel_by_owner: dict[int, list[int]] = defaultdict(list)
                for I in range(J + 1, nb):
                    panel_by_owner[dist.owner(I, J)].append(I)
                for rank, rows in sorted(panel_by_owner.items()):
                    proc = network[rank]
                    if ab_armed:
                        ljj_local = open_block(rank, ("diag", J))
                    else:
                        ljj_local = proc.inbox[("diag", J)]
                    bundle: dict = {}
                    for I in rows:
                        lij = solve_lower_transposed_right(
                            proc.store[("A", I, J)], ljj_local
                        )
                        proc.store[("A", I, J)] = lij
                        network.compute(rank, trsm_flops(dist.block_dim(I), w))
                        bundle[I] = (
                            seal_block(rank, lij) if ab_armed else lij
                        )
                        dirty[rank].add(("A", I, J))
                    r = grid.position(rank)[0]
                    if ab_armed:
                        bwords = sum(
                            v.data.size + v.overhead_words
                            for v in bundle.values()
                        )
                    else:
                        bwords = sum(v.size for v in bundle.values())
                    network.broadcast(
                        rank,
                        grid.row_group(r),
                        words=bwords,
                        payload=bundle,
                        key=("panelrow", J, r),
                    )

            # -- 4. bundled re-broadcasts down the trailing grid columns -----
            with prof.span("bcast-panel"):
                diag_by_owner: dict[int, list[int]] = defaultdict(list)
                for l in range(J + 1, nb):
                    diag_by_owner[dist.owner(l, l)].append(l)
                for rank, diags in sorted(diag_by_owner.items()):
                    proc = network[rank]
                    r, c = grid.position(rank)
                    row_bundle = proc.inbox[("panelrow", J, r)]
                    # when sealed, forward the SealedBlocks verbatim —
                    # this rank never *uses* the values, so it need not
                    # (and must not) open them: the checksum envelope
                    # keeps protecting the payload through the re-hop
                    col_bundle = {l: row_bundle[l] for l in diags}
                    if ab_armed:
                        cwords = sum(
                            v.data.size + v.overhead_words
                            for v in col_bundle.values()
                        )
                    else:
                        cwords = sum(v.size for v in col_bundle.values())
                    # key includes the source grid row: on non-square grids a
                    # column hosts several diagonal owners (one per grid row)
                    network.broadcast(
                        rank,
                        grid.col_group(c),
                        words=cwords,
                        payload=col_bundle,
                        key=("panelcol", J, c, r),
                    )

            # -- 5. trailing updates with received panel blocks ---------------
            # No sends interleave with the compute charges below, so the
            # per-rank flop totals can be applied in one ``compute`` call
            # per rank: each call only advances that rank's own clock
            # additively, making the batched charging clock-identical.
            batch_compute = fastpath_enabled()
            flops_by_rank: "defaultdict[int, int]" = defaultdict(int)
            with prof.span("update"):
                for l in range(J + 1, nb):
                    for k in range(l, nb):
                        rank = dist.owner(k, l)
                        proc = network[rank]
                        if ab_armed:
                            lkj = open_block(
                                rank,
                                ("panelrow", J, grid.position(rank)[0]),
                                k,
                            )
                            llj = open_block(
                                rank,
                                ("panelcol", J, l % grid.cols, l % grid.rows),
                                l,
                            )
                        else:
                            lkj = proc.inbox[
                                ("panelrow", J, grid.position(rank)[0])
                            ][k]
                            llj = proc.inbox[
                                ("panelcol", J, l % grid.cols, l % grid.rows)
                            ][l]
                        proc.store[("A", k, l)] = (
                            proc.store[("A", k, l)] - lkj @ llj.T
                        )
                        dirty[rank].add(("A", k, l))
                        dk, dl = dist.block_dim(k), dist.block_dim(l)
                        if k == l:
                            flops = syrk_flops(dk, w)
                        else:
                            flops = gemm_flops(dk, w, dl)
                        if batch_compute:
                            flops_by_rank[rank] += flops
                        else:
                            network.compute(rank, flops)
                if batch_compute:
                    for rank, flops in flops_by_rank.items():
                        network.compute(rank, flops)

            # -- 6. per-round buddy checkpoint of every modified block ------
            if ckpt_on:
                with prof.span("checkpoint", J=J):
                    for rank in sorted(dirty):
                        _checkpoint(network, rank, sorted(dirty[rank]), stats)

            network.clear_inboxes()
            opened.clear()

    L = dist.gather_lower()
    abft_rec = None
    if ab_armed:
        abft_stats.verified = True
        abft_rec = {
            "config": abft_cfg.to_dict(),
            "stats": abft_stats.to_dict(),
            "attestation": factor_attestation(L),
        }
    return ParallelRunResult(
        L=L,
        network=network,
        n=dist.global_n,
        block=block,
        P=grid.size,
        profile=None if recorder is None else recorder.profile(),
        fault_stats=stats if (injector is not None or ckpt_on) else None,
        abft=abft_rec,
    )
