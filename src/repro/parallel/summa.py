"""2D parallel matrix multiplication (SUMMA) on the simulated network.

The paper's parallel lower bound for Cholesky (Corollary 2.4) is the
ITT04 matmul bound in disguise, so the natural parallel baseline is
the classical 2D multiplication algorithm itself: SUMMA
(van de Geijn–Watts), the algorithm behind PBLAS ``PDGEMM``.

Both operands are distributed over the √P × √P grid in b×b blocks
(block-cyclic).  For each of the n/b panel steps, the owners of the
current column panel of A broadcast their blocks across their grid
rows, the owners of the row panel of B broadcast down their grid
columns, and every processor accumulates into its local C blocks.

Critical-path counts mirror PxPOTRF's shape: Θ((n/b)·log P) messages
and Θ((n²/√P)·log P) words — meeting the 2D bounds of Theorem 2 /
Corollary 2.1 within the log P factor, with the same optimal block
size b = n/√P.  The benches use it to show Cholesky and matmul share
one communication profile, which is the Main Theorem's point.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.abft import AbftConfig, SilentCorruptionError, factor_attestation
from repro.abft.guardian import AbftStats, SilentInjector
from repro.abft.sealing import open_sealed, seal
from repro.faults.injector import FaultStats
from repro.faults.plan import FaultPlan
from repro.observability.spans import SpanProfile, observe
from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network
from repro.parallel.pxpotrf import _checkpoint, _recover
from repro.sequential.flops import gemm_flops
from repro.util.fastpath import fastpath_enabled
from repro.util.imath import ceil_div
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_positive_int,
)


@dataclass
class SummaResult:
    """Outcome of a SUMMA run: the product plus the accounting."""

    C: np.ndarray
    network: Network
    n: int
    block: int
    P: int
    #: Span tree of the run (``None`` unless ``observe_spans=True``).
    profile: "SpanProfile | None" = None
    #: Realized faults + resilience overhead (``None`` on a plain run).
    fault_stats: "FaultStats | None" = None
    #: The ``abft`` counter group (config + stats + attestation) when
    #: the run was checksum-protected, else ``None``.
    abft: "dict | None" = None

    @property
    def critical_words(self) -> int:
        return self.network.critical_words

    @property
    def critical_messages(self) -> int:
        return self.network.critical_messages

    @property
    def max_flops(self) -> int:
        return self.network.max_flops

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.network.processors)


def summa(
    a: np.ndarray,
    b: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    observe_spans: bool = False,
    faults: "FaultPlan | None" = None,
    checkpoint: bool | None = None,
    abft: "AbftConfig | dict | bool | None" = None,
) -> SummaResult:
    """Multiply two square matrices on a simulated 2D grid.

    Parameters mirror :func:`repro.parallel.pxpotrf.pxpotrf`; the
    result's ``C`` equals ``a @ b`` (verified in the tests).  With
    ``observe_spans`` the per-step broadcasts and updates are recorded
    as a span tree on the result's ``profile``.  With a fault plan,
    sends run over the ack/retry transport and (when fail-stops are
    scheduled) each rank buddy-checkpoints its accumulators every
    panel step, so a fail-stopped rank is rebuilt exactly and the
    product matches the failure-free run bit for bit.  With ``abft``
    set, the panel broadcasts travel checksum-sealed exactly as in
    :func:`~repro.parallel.pxpotrf.pxpotrf`: single silently flipped
    payload elements heal on open, uncorrectable doubles rebuild the
    network and re-run under an attempt-salted schedule.
    """
    cfg = AbftConfig.coerce(abft)
    if cfg is None:
        return _summa_once(
            a, b, block, grid, alpha=alpha, beta=beta,
            observe_spans=observe_spans, faults=faults,
            checkpoint=checkpoint,
        )
    abft_stats = AbftStats()
    attempt = 0
    while True:
        abft_stats.attempts = attempt + 1
        try:
            return _summa_once(
                a, b, block, grid, alpha=alpha, beta=beta,
                observe_spans=observe_spans, faults=faults,
                checkpoint=checkpoint,
                abft_cfg=cfg, abft_stats=abft_stats, abft_attempt=attempt,
            )
        except SilentCorruptionError:
            attempt += 1
            if attempt >= cfg.max_attempts:
                raise


def _summa_once(
    a: np.ndarray,
    b: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    observe_spans: bool = False,
    faults: "FaultPlan | None" = None,
    checkpoint: bool | None = None,
    abft_cfg: "AbftConfig | None" = None,
    abft_stats: "AbftStats | None" = None,
    abft_attempt: int = 0,
) -> SummaResult:
    """One attempt of SUMMA on a fresh simulated network."""
    if isinstance(grid, int):
        grid = ProcessorGrid.square(grid)
    check_positive_int("block", block)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValidationError(
            f"need square operands, got {a.shape} and {b.shape}"
        )
    check_finite("a", a)
    check_finite("b", b)
    network = Network(grid.size, alpha=alpha, beta=beta)
    injector = network.attach_faults(faults)
    ckpt_on = (
        bool(checkpoint)
        if checkpoint is not None
        else bool(injector is not None and injector.plan.failstops)
    )
    if injector is not None and injector.plan.failstops and not ckpt_on:
        raise ValidationError(
            "fault plan schedules fail-stops but checkpointing is disabled; "
            "a failed rank could never be recovered"
        )
    if ckpt_on and grid.size < 2:
        raise ValidationError("buddy checkpointing needs at least 2 processors")
    stats = injector.stats if injector is not None else FaultStats()
    recorder = observe(network, name="summa") if observe_spans else None
    prof = network.profiler
    nb = ceil_div(n, block)

    def brange(k: int) -> tuple[int, int]:
        return k * block, min((k + 1) * block, n)

    def owner(bi: int, bj: int) -> int:
        return grid.block_owner(bi, bj)

    # -- ABFT: sealed broadcast channel (see pxpotrf) ------------------
    ab_armed = abft_cfg is not None
    ab_injector = (
        SilentInjector(abft_cfg.plan or faults, abft_attempt)
        if ab_armed
        else None
    )
    opened: dict = {}

    def seal_block(rank: int, data: np.ndarray):
        sealed = seal(data)
        h, w = sealed.shape
        network.compute(rank, 2 * h * w)
        abft_stats.checksum_flops += 2 * h * w
        return sealed

    def seal_bundle(rank: int, bundle: dict) -> "tuple[dict, int]":
        """Seal every block of a panel bundle; returns (bundle, words)."""
        out = {k: seal_block(rank, v) for k, v in bundle.items()}
        words = sum(v.data.size + v.overhead_words for v in out.values())
        return out, words

    def open_block(rank: int, key: tuple, idx: int):
        memo = (rank, key, idx)
        if memo in opened:
            return opened[memo]
        sealed = network[rank].inbox[key][idx]
        data = open_sealed(
            sealed,
            injector=ab_injector,
            stats=abft_stats,
            key=key + (idx, rank),
        )
        h, w = data.shape
        network.compute(rank, 2 * h * w)
        opened[memo] = data
        return data

    # scatter A, B; zero local C blocks
    for bi in range(nb):
        r0, r1 = brange(bi)
        for bj in range(nb):
            c0, c1 = brange(bj)
            p = network[owner(bi, bj)]
            p.store[("A", bi, bj)] = a[r0:r1, c0:c1].copy()
            p.store[("B", bi, bj)] = b[r0:r1, c0:c1].copy()
            p.store[("C", bi, bj)] = np.zeros((r1 - r0, c1 - c0))

    if ckpt_on:
        # step "-1" checkpoint: operands and zeroed accumulators, so a
        # rank fail-stopping at step 0 is recoverable too
        with prof.span("checkpoint", K=-1):
            for rank in range(network.P):
                _checkpoint(
                    network, rank, list(network[rank].store.keys()), stats
                )

    for K in range(nb):
        if injector is not None:
            for rank in injector.failstops_due(K):
                with prof.span("recover", K=K, rank=rank):
                    _recover(network, rank, stats)
        with prof.span("step", K=K):
            # owners of A's column panel K broadcast along their grid rows
            with prof.span("bcast-A"):
                a_by_owner: dict[int, list[int]] = defaultdict(list)
                for bi in range(nb):
                    a_by_owner[owner(bi, K)].append(bi)
                for rank, rows in sorted(a_by_owner.items()):
                    proc = network[rank]
                    bundle = {bi: proc.store[("A", bi, K)] for bi in rows}
                    if ab_armed:
                        bundle, bwords = seal_bundle(rank, bundle)
                    else:
                        bwords = sum(v.size for v in bundle.values())
                    r = grid.position(rank)[0]
                    network.broadcast(
                        rank,
                        grid.row_group(r),
                        words=bwords,
                        payload=bundle,
                        key=("Arow", K, r),
                    )
            # owners of B's row panel K broadcast down their grid columns
            with prof.span("bcast-B"):
                b_by_owner: dict[int, list[int]] = defaultdict(list)
                for bj in range(nb):
                    b_by_owner[owner(K, bj)].append(bj)
                for rank, cols in sorted(b_by_owner.items()):
                    proc = network[rank]
                    bundle = {bj: proc.store[("B", K, bj)] for bj in cols}
                    if ab_armed:
                        bundle, bwords = seal_bundle(rank, bundle)
                    else:
                        bwords = sum(v.size for v in bundle.values())
                    c = grid.position(rank)[1]
                    network.broadcast(
                        rank,
                        grid.col_group(c),
                        words=bwords,
                        payload=bundle,
                        key=("Bcol", K, c),
                    )
            # local accumulation; no sends interleave with the compute
            # charges, so per-rank flop totals applied in one ``compute``
            # call per rank advance the clocks identically
            batch_compute = fastpath_enabled()
            flops_by_rank: "defaultdict[int, int]" = defaultdict(int)
            with prof.span("update"):
                for bi in range(nb):
                    for bj in range(nb):
                        rank = owner(bi, bj)
                        proc = network[rank]
                        r, c = grid.position(rank)
                        if ab_armed:
                            ablk = open_block(rank, ("Arow", K, r), bi)
                            bblk = open_block(rank, ("Bcol", K, c), bj)
                        else:
                            ablk = proc.inbox[("Arow", K, r)][bi]
                            bblk = proc.inbox[("Bcol", K, c)][bj]
                        proc.store[("C", bi, bj)] += ablk @ bblk
                        flops = gemm_flops(
                            ablk.shape[0], ablk.shape[1], bblk.shape[1]
                        )
                        if batch_compute:
                            flops_by_rank[rank] += flops
                        else:
                            network.compute(rank, flops)
                if batch_compute:
                    for rank, flops in flops_by_rank.items():
                        network.compute(rank, flops)
            # per-step buddy checkpoint: only the accumulators changed
            if ckpt_on:
                with prof.span("checkpoint", K=K):
                    for rank in range(network.P):
                        ckeys = sorted(
                            k for k in network[rank].store if k[0] == "C"
                        )
                        _checkpoint(network, rank, ckeys, stats)
            network.clear_inboxes()
            opened.clear()

    # gather C (free verification step, like pxpotrf's gather)
    out = np.zeros((n, n))
    for bi in range(nb):
        r0, r1 = brange(bi)
        for bj in range(nb):
            c0, c1 = brange(bj)
            out[r0:r1, c0:c1] = network[owner(bi, bj)].store[("C", bi, bj)]
    abft_rec = None
    if ab_armed:
        abft_stats.verified = True
        abft_rec = {
            "config": abft_cfg.to_dict(),
            "stats": abft_stats.to_dict(),
            "attestation": factor_attestation(out),
        }
    return SummaResult(
        C=out,
        network=network,
        n=n,
        block=block,
        P=grid.size,
        profile=None if recorder is None else recorder.profile(),
        fault_stats=stats if (injector is not None or ckpt_on) else None,
        abft=abft_rec,
    )
