"""2D parallel matrix multiplication (SUMMA) on the simulated network.

The paper's parallel lower bound for Cholesky (Corollary 2.4) is the
ITT04 matmul bound in disguise, so the natural parallel baseline is
the classical 2D multiplication algorithm itself: SUMMA
(van de Geijn–Watts), the algorithm behind PBLAS ``PDGEMM``.

Both operands are distributed over the √P × √P grid in b×b blocks
(block-cyclic).  For each of the n/b panel steps, the owners of the
current column panel of A broadcast their blocks across their grid
rows, the owners of the row panel of B broadcast down their grid
columns, and every processor accumulates into its local C blocks.

Critical-path counts mirror PxPOTRF's shape: Θ((n/b)·log P) messages
and Θ((n²/√P)·log P) words — meeting the 2D bounds of Theorem 2 /
Corollary 2.1 within the log P factor, with the same optimal block
size b = n/√P.  The benches use it to show Cholesky and matmul share
one communication profile, which is the Main Theorem's point.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.faults.injector import FaultStats
from repro.faults.plan import FaultPlan
from repro.observability.spans import SpanProfile, observe
from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network
from repro.parallel.pxpotrf import _checkpoint, _recover
from repro.sequential.flops import gemm_flops
from repro.util.fastpath import fastpath_enabled
from repro.util.imath import ceil_div
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_positive_int,
)


@dataclass
class SummaResult:
    """Outcome of a SUMMA run: the product plus the accounting."""

    C: np.ndarray
    network: Network
    n: int
    block: int
    P: int
    #: Span tree of the run (``None`` unless ``observe_spans=True``).
    profile: "SpanProfile | None" = None
    #: Realized faults + resilience overhead (``None`` on a plain run).
    fault_stats: "FaultStats | None" = None

    @property
    def critical_words(self) -> int:
        return self.network.critical_words

    @property
    def critical_messages(self) -> int:
        return self.network.critical_messages

    @property
    def max_flops(self) -> int:
        return self.network.max_flops

    @property
    def total_flops(self) -> int:
        return sum(p.flops for p in self.network.processors)


def summa(
    a: np.ndarray,
    b: np.ndarray,
    block: int,
    grid: ProcessorGrid | int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    observe_spans: bool = False,
    faults: "FaultPlan | None" = None,
    checkpoint: bool | None = None,
) -> SummaResult:
    """Multiply two square matrices on a simulated 2D grid.

    Parameters mirror :func:`repro.parallel.pxpotrf.pxpotrf`; the
    result's ``C`` equals ``a @ b`` (verified in the tests).  With
    ``observe_spans`` the per-step broadcasts and updates are recorded
    as a span tree on the result's ``profile``.  With a fault plan,
    sends run over the ack/retry transport and (when fail-stops are
    scheduled) each rank buddy-checkpoints its accumulators every
    panel step, so a fail-stopped rank is rebuilt exactly and the
    product matches the failure-free run bit for bit.
    """
    if isinstance(grid, int):
        grid = ProcessorGrid.square(grid)
    check_positive_int("block", block)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValidationError(
            f"need square operands, got {a.shape} and {b.shape}"
        )
    check_finite("a", a)
    check_finite("b", b)
    network = Network(grid.size, alpha=alpha, beta=beta)
    injector = network.attach_faults(faults)
    ckpt_on = (
        bool(checkpoint)
        if checkpoint is not None
        else bool(injector is not None and injector.plan.failstops)
    )
    if injector is not None and injector.plan.failstops and not ckpt_on:
        raise ValidationError(
            "fault plan schedules fail-stops but checkpointing is disabled; "
            "a failed rank could never be recovered"
        )
    if ckpt_on and grid.size < 2:
        raise ValidationError("buddy checkpointing needs at least 2 processors")
    stats = injector.stats if injector is not None else FaultStats()
    recorder = observe(network, name="summa") if observe_spans else None
    prof = network.profiler
    nb = ceil_div(n, block)

    def brange(k: int) -> tuple[int, int]:
        return k * block, min((k + 1) * block, n)

    def owner(bi: int, bj: int) -> int:
        return grid.block_owner(bi, bj)

    # scatter A, B; zero local C blocks
    for bi in range(nb):
        r0, r1 = brange(bi)
        for bj in range(nb):
            c0, c1 = brange(bj)
            p = network[owner(bi, bj)]
            p.store[("A", bi, bj)] = a[r0:r1, c0:c1].copy()
            p.store[("B", bi, bj)] = b[r0:r1, c0:c1].copy()
            p.store[("C", bi, bj)] = np.zeros((r1 - r0, c1 - c0))

    if ckpt_on:
        # step "-1" checkpoint: operands and zeroed accumulators, so a
        # rank fail-stopping at step 0 is recoverable too
        with prof.span("checkpoint", K=-1):
            for rank in range(network.P):
                _checkpoint(
                    network, rank, list(network[rank].store.keys()), stats
                )

    for K in range(nb):
        if injector is not None:
            for rank in injector.failstops_due(K):
                with prof.span("recover", K=K, rank=rank):
                    _recover(network, rank, stats)
        with prof.span("step", K=K):
            # owners of A's column panel K broadcast along their grid rows
            with prof.span("bcast-A"):
                a_by_owner: dict[int, list[int]] = defaultdict(list)
                for bi in range(nb):
                    a_by_owner[owner(bi, K)].append(bi)
                for rank, rows in sorted(a_by_owner.items()):
                    proc = network[rank]
                    bundle = {bi: proc.store[("A", bi, K)] for bi in rows}
                    r = grid.position(rank)[0]
                    network.broadcast(
                        rank,
                        grid.row_group(r),
                        words=sum(v.size for v in bundle.values()),
                        payload=bundle,
                        key=("Arow", K, r),
                    )
            # owners of B's row panel K broadcast down their grid columns
            with prof.span("bcast-B"):
                b_by_owner: dict[int, list[int]] = defaultdict(list)
                for bj in range(nb):
                    b_by_owner[owner(K, bj)].append(bj)
                for rank, cols in sorted(b_by_owner.items()):
                    proc = network[rank]
                    bundle = {bj: proc.store[("B", K, bj)] for bj in cols}
                    c = grid.position(rank)[1]
                    network.broadcast(
                        rank,
                        grid.col_group(c),
                        words=sum(v.size for v in bundle.values()),
                        payload=bundle,
                        key=("Bcol", K, c),
                    )
            # local accumulation; no sends interleave with the compute
            # charges, so per-rank flop totals applied in one ``compute``
            # call per rank advance the clocks identically
            batch_compute = fastpath_enabled()
            flops_by_rank: "defaultdict[int, int]" = defaultdict(int)
            with prof.span("update"):
                for bi in range(nb):
                    for bj in range(nb):
                        rank = owner(bi, bj)
                        proc = network[rank]
                        r, c = grid.position(rank)
                        ablk = proc.inbox[("Arow", K, r)][bi]
                        bblk = proc.inbox[("Bcol", K, c)][bj]
                        proc.store[("C", bi, bj)] += ablk @ bblk
                        flops = gemm_flops(
                            ablk.shape[0], ablk.shape[1], bblk.shape[1]
                        )
                        if batch_compute:
                            flops_by_rank[rank] += flops
                        else:
                            network.compute(rank, flops)
                if batch_compute:
                    for rank, flops in flops_by_rank.items():
                        network.compute(rank, flops)
            # per-step buddy checkpoint: only the accumulators changed
            if ckpt_on:
                with prof.span("checkpoint", K=K):
                    for rank in range(network.P):
                        ckeys = sorted(
                            k for k in network[rank].store if k[0] == "C"
                        )
                        _checkpoint(network, rank, ckeys, stats)
            network.clear_inboxes()

    # gather C (free verification step, like pxpotrf's gather)
    out = np.zeros((n, n))
    for bi in range(nb):
        r0, r1 = brange(bi)
        for bj in range(nb):
            c0, c1 = brange(bj)
            out[r0:r1, c0:c1] = network[owner(bi, bj)].store[("C", bi, bj)]
    return SummaResult(
        C=out,
        network=network,
        n=n,
        block=block,
        P=grid.size,
        profile=None if recorder is None else recorder.profile(),
        fault_stats=stats if (injector is not None or ckpt_on) else None,
    )
