"""2D block-cyclic distribution (Figure 6, left).

The global ``n × n`` symmetric matrix is cut into ``b × b`` blocks;
block ``(I, J)`` lives on grid processor ``(I mod P_r, J mod P_c)``.
Only the lower triangle (``I >= J``) is stored or referenced, matching
ScaLAPACK's PxPOTRF with ``UPLO='L'``.

At the paper's latency-optimal extreme ``b = n/√P`` the "cyclic"
pattern degenerates to one block per grid position — the paper notes
(end of §3.3.1) that nearly half the processors then own only
never-referenced upper-triangle blocks; ``owned_words`` exposes that
imbalance for the F6 bench.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network
from repro.util.imath import ceil_div
from repro.util.validation import check_positive_int, check_symmetric


class BlockCyclicMatrix:
    """A symmetric matrix scattered block-cyclically over a grid."""

    def __init__(
        self,
        a: np.ndarray,
        block: int,
        grid: ProcessorGrid,
        network: Network,
    ) -> None:
        self.global_n = np.asarray(a).shape[0]
        check_symmetric("a", a)
        self.block = check_positive_int("block", block)
        self.grid = grid
        self.network = network
        if grid.size != network.P:
            raise ValueError(
                f"grid of {grid.size} does not match network of {network.P}"
            )
        self.nblocks = ceil_div(self.global_n, self.block)
        # scatter the lower triangle into per-processor stores
        arr = np.asarray(a, dtype=np.float64)
        for bi, bj in self.lower_blocks():
            owner = grid.block_owner(bi, bj)
            r0, r1 = self.block_range(bi)
            c0, c1 = self.block_range(bj)
            network[owner].store[("A", bi, bj)] = arr[r0:r1, c0:c1].copy()

    # -- geometry ------------------------------------------------------------

    def block_range(self, k: int) -> Tuple[int, int]:
        """Row/column index range of block ``k``."""
        if not (0 <= k < self.nblocks):
            raise ValueError(f"block index {k} outside 0..{self.nblocks - 1}")
        return k * self.block, min((k + 1) * self.block, self.global_n)

    def block_dim(self, k: int) -> int:
        """Side length of block ``k`` (clipped at the matrix edge)."""
        lo, hi = self.block_range(k)
        return hi - lo

    def lower_blocks(self) -> Iterator[Tuple[int, int]]:
        """All stored block coordinates (lower triangle, column order)."""
        for bj in range(self.nblocks):
            for bi in range(bj, self.nblocks):
                yield bi, bj

    def owner(self, bi: int, bj: int) -> int:
        """Rank owning block ``(bi, bj)`` under the cyclic map."""
        return self.grid.block_owner(bi, bj)

    def owned_words(self) -> Dict[int, int]:
        """Stored words per processor (the Figure 6 balance metric)."""
        counts = {p.rank: 0 for p in self.network.processors}
        for bi, bj in self.lower_blocks():
            counts[self.owner(bi, bj)] += self.block_dim(bi) * self.block_dim(bj)
        return counts

    # -- gather ------------------------------------------------------------------

    def gather_lower(self, charge: bool = False) -> np.ndarray:
        """Assemble the global lower triangle from the owners.

        With ``charge=True`` the gather's communication (every block
        sent to rank 0) is accounted on the network; by default the
        gather is a free verification step, since the paper's counts
        end when the factorization does.
        """
        out = np.zeros((self.global_n, self.global_n), dtype=np.float64)
        for bi, bj in self.lower_blocks():
            owner = self.owner(bi, bj)
            blockval = self.network[owner].store[("A", bi, bj)]
            if charge and owner != 0:
                self.network.send(owner, 0, int(blockval.size))
            r0, r1 = self.block_range(bi)
            c0, c1 = self.block_range(bj)
            out[r0:r1, c0:c1] = blockval
        return np.tril(out)

    def __repr__(self) -> str:
        return (
            f"BlockCyclicMatrix(n={self.global_n}, b={self.block}, "
            f"grid={self.grid.rows}x{self.grid.cols})"
        )
