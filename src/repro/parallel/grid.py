"""The 2D processor grid of §3.3.1.

The paper's analysis assumes a square grid ``P_r = P_c = sqrt(P)``;
the implementation allows any rectangular grid but the benches sweep
square ones.  Ranks are laid out row-major: processor ``(r, c)`` has
rank ``r · P_c + c``.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int


class ProcessorGrid:
    """A ``P_r × P_c`` grid of processor ranks."""

    def __init__(self, rows: int, cols: int | None = None) -> None:
        self.rows = check_positive_int("rows", rows)
        self.cols = self.rows if cols is None else check_positive_int("cols", cols)

    @classmethod
    def square(cls, P: int) -> "ProcessorGrid":
        """The √P × √P grid (P must be a perfect square)."""
        import math

        check_positive_int("P", P)
        root = math.isqrt(P)
        if root * root != P:
            raise ValueError(f"P={P} is not a perfect square")
        return cls(root, root)

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def rank(self, r: int, c: int) -> int:
        """Linear rank of grid position ``(r, c)``."""
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"({r},{c}) outside {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def position(self, rank: int) -> tuple[int, int]:
        """Grid position of a linear rank."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of {self.size}")
        return divmod(rank, self.cols)

    def block_owner(self, bi: int, bj: int) -> int:
        """Owner rank of matrix block ``(bi, bj)`` under the cyclic map."""
        return self.rank(bi % self.rows, bj % self.cols)

    def row_group(self, r: int) -> list[int]:
        """All ranks in grid row ``r`` (a broadcast domain)."""
        return [self.rank(r, c) for c in range(self.cols)]

    def col_group(self, c: int) -> list[int]:
        """All ranks in grid column ``c`` (a broadcast domain)."""
        return [self.rank(r, c) for r in range(self.rows)]

    def __repr__(self) -> str:
        return f"ProcessorGrid({self.rows}x{self.cols})"
