"""3D parallel matrix multiplication — beyond the 2D regime.

The paper restricts its parallel analysis to the "2D case"
(``M = O(n²/P)``, one copy of the matrix) and points to [ITT04] for
the general case "including 3D".  This module implements that 3D
algorithm on our network substrate as the repository's
extension-beyond-the-paper:

Processors form a ``p × p × p`` cube (``P = p³``).  With ``A``
distributed over the (i, k) face, ``B`` over (k, j), and ``C``
gathered on (i, j):

1. ``A_{ik}`` is broadcast along its j-fiber, ``B_{kj}`` along its
   i-fiber (⌈log₂ p⌉ deep each);
2. every processor (i, j, k) multiplies its ``(n/p)²`` blocks locally;
3. partial products are reduced along the k-fibers onto layer 0.

Critical-path cost: Θ((n/p)²·log p) words = Θ((n²/P^{2/3})·log P) —
asymptotically *less* communication than any 2D algorithm's
Ω(n²/√P), bought with P^{1/3}-fold memory replication
(``M = Θ(n²/P^{2/3})`` per processor instead of ``n²/P``).  Exactly
the memory/communication tradeoff the ITT04 general bound
``Ω(n³/(P·√M))`` predicts, and the tests measure both sides of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.network import Network, NetworkError
from repro.sequential.flops import gemm_flops
from repro.util.validation import check_positive_int


def _cube_root(P: int) -> int:
    p = round(P ** (1.0 / 3.0))
    for candidate in (p - 1, p, p + 1):
        if candidate > 0 and candidate**3 == P:
            return candidate
    raise ValueError(f"P={P} is not a perfect cube")


@dataclass
class Matmul3DResult:
    """Outcome of a 3D multiplication run."""

    C: np.ndarray
    network: Network
    n: int
    P: int

    @property
    def critical_words(self) -> int:
        return self.network.critical_words

    @property
    def critical_messages(self) -> int:
        return self.network.critical_messages

    @property
    def max_flops(self) -> int:
        return self.network.max_flops

    @property
    def peak_memory_words(self) -> int:
        """Largest per-processor footprint (the 3D replication cost)."""
        return max(
            sum(int(v.size) for v in proc.store.values())
            + proc.peak_buffer_words
            for proc in self.network.processors
        )


def matmul_3d(
    a: np.ndarray,
    b: np.ndarray,
    P: int,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> Matmul3DResult:
    """Multiply two n×n matrices on a ``p×p×p`` cube (``P = p³``).

    ``n`` must be divisible by ``p``.  Returns a result whose ``C``
    equals ``a @ b``.
    """
    check_positive_int("P", P)
    p = _cube_root(P)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError(f"need square operands, got {a.shape}, {b.shape}")
    if n % p:
        raise ValueError(f"cube side p={p} must divide n={n}")
    s = n // p
    network = Network(P, alpha=alpha, beta=beta)

    def rank(i: int, j: int, k: int) -> int:
        return (i * p + j) * p + k

    # distribute: A_{ik} on (i, 0, k); B_{kj} on (0, j, k)
    for i in range(p):
        for k in range(p):
            network[rank(i, 0, k)].store[("A", i, k)] = a[
                i * s : (i + 1) * s, k * s : (k + 1) * s
            ].copy()
    for k in range(p):
        for j in range(p):
            network[rank(0, j, k)].store[("B", k, j)] = b[
                k * s : (k + 1) * s, j * s : (j + 1) * s
            ].copy()

    # 1. broadcasts along the fibers
    for i in range(p):
        for k in range(p):
            fiber = [rank(i, j, k) for j in range(p)]
            network.broadcast(
                rank(i, 0, k), fiber, words=s * s,
                payload=network[rank(i, 0, k)].store[("A", i, k)],
                key=("A", i, k),
            )
    for k in range(p):
        for j in range(p):
            fiber = [rank(i, j, k) for i in range(p)]
            network.broadcast(
                rank(0, j, k), fiber, words=s * s,
                payload=network[rank(0, j, k)].store[("B", k, j)],
                key=("B", k, j),
            )

    # 2. one local multiplication per processor
    partials: dict[tuple[int, int, int], np.ndarray] = {}
    for i in range(p):
        for j in range(p):
            for k in range(p):
                r = rank(i, j, k)
                proc = network[r]
                ablk = proc.inbox[("A", i, k)]
                bblk = proc.inbox[("B", k, j)]
                partials[(i, j, k)] = ablk @ bblk
                proc.store[("Cpart", i, j)] = partials[(i, j, k)]
                network.compute(r, gemm_flops(s, s, s))

    # 3. reduce along the k-fibers onto layer 0
    out = np.zeros((n, n))
    for i in range(p):
        for j in range(p):
            fiber = [rank(i, j, k) for k in range(p)]
            total = network.reduce(
                rank(i, j, 0),
                fiber,
                words=s * s,
                contributions={
                    rank(i, j, k): partials[(i, j, k)] for k in range(p)
                },
                combine=np.add,
                key=("C", i, j),
            )
            out[i * s : (i + 1) * s, j * s : (j + 1) * s] = total
    network.clear_inboxes()
    return Matmul3DResult(C=out, network=network, n=n, P=P)
