"""Distributed-memory substrate and the parallel Cholesky (§3.3).

``repro.parallel.network``
    An event-driven α-β message-passing simulator: P processors with
    logical clocks and private block stores, point-to-point sends,
    and binomial-tree broadcasts.  Critical-path words/messages are
    extracted by propagating path counters along the time-determining
    dependency of every transfer — the log P factors of Table 2 arise
    from real tree depths, not plugged-in formulas.

``repro.parallel.grid``
    The √P × √P processor grid and its row/column groups.

``repro.parallel.blockcyclic``
    2D block-cyclic distribution of a symmetric matrix (Figure 6
    left): scatter, ownership arithmetic, and gather.

``repro.parallel.pxpotrf``
    Algorithm 9 (ScaLAPACK PxPOTRF) on that substrate, numerically
    real: each processor computes only with blocks it owns or has
    received, so a missing broadcast is a *wrong factor*, not a
    silent undercount.
"""

from repro.parallel.grid import ProcessorGrid
from repro.parallel.network import Network, NetworkError, Processor
from repro.parallel.blockcyclic import BlockCyclicMatrix
from repro.parallel.pxpotrf import ParallelRunResult, pxpotrf
from repro.parallel.summa import SummaResult, summa
from repro.parallel.matmul3d import Matmul3DResult, matmul_3d

__all__ = [
    "matmul_3d",
    "Matmul3DResult",
    "ProcessorGrid",
    "Network",
    "NetworkError",
    "Processor",
    "BlockCyclicMatrix",
    "pxpotrf",
    "ParallelRunResult",
    "summa",
    "SummaResult",
]
