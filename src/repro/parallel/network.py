"""Event-driven α-β network simulator.

Model (paper, Section 1): a message of ``w`` consecutively stored
words moves between two processors in time ``α + β·w``; both
endpoints are occupied for the transfer.  Each processor carries a
logical clock and *path counters*: on every transfer the receiver's
(and sender's) path is inherited from whichever endpoint determined
the new clock value and incremented by the transfer — so at the end,
the processor with the largest clock holds exactly the words and
messages **along the critical path**, which is the quantity Table 2
counts.

Collectives are binomial trees of point-to-point sends: broadcasting
to g processors takes ⌈log₂ g⌉ rounds along the path, which is where
every log P in the measured ScaLAPACK counts comes from.

Numerical payloads ride along with sends into per-processor inboxes;
the PxPOTRF driver computes only with locally available data, so the
simulation is a real distributed algorithm, not an accounting layer
over a sequential one.

**Faults** (:mod:`repro.faults`): with a non-empty
:class:`~repro.faults.FaultPlan` attached via :meth:`Network.attach_faults`,
every point-to-point send runs over a stop-and-wait ack/timeout/retry
transport.  Each transmission attempt — including resends forced by
drops, detected payload corruption or lost acks — occupies both
endpoints and is charged to their clocks, path counters and totals,
exactly like a healthy transfer; acknowledgements are zero-word
messages (they cost α and one message); timeouts add bounded
exponential backoff to the sender's clock.  Slow links multiply β for
that link only.  Fail-stopped ranks lose their store/inbox and refuse
traffic until :meth:`Network.restart`.  With no plan attached (or an
empty one) the historical single-transfer path runs unchanged, so
failure-free counters stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence

import numpy as np

from repro.faults.injector import FaultExhausted, FaultInjector, RankFailed
from repro.faults.plan import FaultPlan
from repro.observability.spans import NULL_PROFILER
from repro.util.validation import check_nonnegative_int, check_positive_int


class NetworkError(RuntimeError):
    """Misuse of the network model (bad rank, empty group, ...)."""


@dataclass
class Processor:
    """One processor: clock, path counters, totals, and private stores."""

    rank: int
    # logical clock and critical-path counters
    t: float = 0.0
    path_words: int = 0
    path_messages: int = 0
    # per-processor totals (load-balance reporting)
    words_sent: int = 0
    words_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    flops: int = 0
    # private data: owned blocks and received (buffered) payloads
    store: Dict[Any, np.ndarray] = field(default_factory=dict)
    inbox: Dict[Any, Any] = field(default_factory=dict)
    # buddy checkpoints held *for* other ranks: ckpt[rank][key] = block.
    # Kept outside ``store`` so owned-footprint accounting
    # (``peak_memory_words``) keeps measuring the algorithm, not the
    # resilience protocol; checkpoint traffic is charged separately.
    ckpt: Dict[int, Dict[Any, np.ndarray]] = field(default_factory=dict)
    # peak transient buffer footprint in words (memory-scalability check)
    buffer_words: int = 0
    peak_buffer_words: int = 0

    def note_buffer(self, delta_words: int) -> None:
        """Track transient receive-buffer usage (peak recorded)."""
        self.buffer_words += delta_words
        if self.buffer_words > self.peak_buffer_words:
            self.peak_buffer_words = self.buffer_words

    @property
    def total_words(self) -> int:
        return self.words_sent + self.words_received

    @property
    def total_messages(self) -> int:
        return self.messages_sent + self.messages_received


class Network:
    """P processors connected by an α-β network."""

    def __init__(self, P: int, *, alpha: float = 1.0, beta: float = 1.0,
                 gamma: float = 0.0) -> None:
        check_positive_int("P", P)
        if alpha < 0 or beta < 0 or gamma < 0:
            raise ValueError("alpha, beta, gamma must be non-negative")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.processors = [Processor(rank=i) for i in range(P)]
        #: Phase-span recorder; the shared no-op unless
        #: :func:`repro.observability.observe` attaches a live one.
        self.profiler = NULL_PROFILER
        #: Live fault oracle, or ``None`` for the failure-free network.
        self.faults: FaultInjector | None = None
        #: Live budget enforcer (:class:`repro.serving.budget.BudgetGuard`),
        #: or ``None`` for the unmetered network.  Fed incrementally per
        #: physical transmission; never mutates any counter.
        self.guard = None
        #: Ranks currently fail-stopped (state lost, traffic refused).
        self.failed: "set[int]" = set()
        # per-directed-link transmission sequence numbers (fault identity)
        self._link_seq: Dict[tuple, int] = {}

    def attach_faults(
        self, plan: "FaultPlan | FaultInjector | None"
    ) -> FaultInjector | None:
        """Arm the network with a fault plan; returns the live injector.

        Only the plan's *transport* faults (drops, duplicates, detected
        corruption, slow links, fail-stops) arm the stop-and-wait
        layer.  A silent-only plan — flips the transport by definition
        cannot see — leaves the network on its zero-overhead
        failure-free path; those strikes are the ABFT layer's to catch
        (:mod:`repro.abft.sealing`).  An empty plan (or ``None``)
        likewise keeps counters bit-identical to a network that never
        heard of faults.
        """
        if plan is None:
            self.faults = None
            return None
        injector = plan if isinstance(plan, FaultInjector) else None
        if injector is None:
            if not plan.has_transport_faults():
                self.faults = None
                return None
            injector = FaultInjector(plan)
        elif not injector.plan.has_transport_faults():
            self.faults = None
            return None
        self.faults = injector
        return injector

    def attach_guard(self, guard) -> None:
        """Arm the network with a live budget enforcer (or disarm with None).

        Every physical transmission — including fault-forced resends
        and zero-word acks — and every ``compute`` call reports its
        cost; the guard raises
        :class:`~repro.serving.budget.BudgetExceeded` when a cap is
        crossed.  With no guard attached the hot paths cost a single
        pointer test and all counters stay bit-identical.
        """
        self.guard = guard

    @property
    def P(self) -> int:
        return len(self.processors)

    def __getitem__(self, rank: int) -> Processor:
        if not (0 <= rank < self.P):
            raise NetworkError(f"rank {rank} outside 0..{self.P - 1}")
        return self.processors[rank]

    # -- point-to-point ---------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        words: int,
        payload: Any = None,
        key: Any = None,
    ) -> None:
        """Transfer one message of ``words`` words from src to dst.

        The payload (if any) lands in ``dst.inbox[key]``.  Clocks and
        path counters advance per the α-β model; per-processor totals
        always accumulate.
        """
        check_nonnegative_int("words", words)
        if src == dst:
            raise NetworkError("a processor cannot message itself")
        if self.failed and (src in self.failed or dst in self.failed):
            down = src if src in self.failed else dst
            raise RankFailed(
                f"rank {down} is fail-stopped; recover it before messaging"
            )
        s, d = self[src], self[dst]
        if self.faults is None:
            self._transfer(s, d, words)
            if payload is not None:
                d.inbox[key] = payload
                d.note_buffer(words)
            return
        self._send_reliable(s, d, words, payload, key)

    def _transfer(self, s: Processor, d: Processor, words: int,
                  factor: float = 1.0) -> None:
        """Charge one physical transmission ``s → d`` (the α-β core)."""
        base = s if s.t >= d.t else d
        path = (base.path_words + words, base.path_messages + 1)
        t_new = max(s.t, d.t) + self.alpha + self.beta * factor * words
        for e in (s, d):
            e.t = t_new
            e.path_words, e.path_messages = path
        s.words_sent += words
        s.messages_sent += 1
        d.words_received += words
        d.messages_received += 1
        if self.guard is not None:
            self.guard.spend(words=words, messages=1)

    def _send_reliable(self, s: Processor, d: Processor, words: int,
                       payload: Any, key: Any) -> None:
        """Stop-and-wait transport: data + ack, timeout/backoff resends.

        Every transmission attempt (data or ack, first try or resend)
        is charged like a healthy transfer; drops and detected payload
        corruption cost a timeout (backoff on the sender's clock) and
        a resend; a lost ack costs a redundant data retransmission the
        receiver discards.  All decisions come from the deterministic
        injector, so the realized schedule and the counters are a pure
        function of the fault seed.
        """
        inj = self.faults
        plan = inj.plan
        src, dst = s.rank, d.rank
        seq = self._link_seq.get((src, dst), 0)
        self._link_seq[(src, dst)] = seq + 1
        fwd = inj.beta_factor(src, dst)
        rev = inj.beta_factor(dst, src)
        delivered = False
        for attempt in range(1, plan.max_attempts + 1):
            if attempt > 1:
                wait = plan.backoff(attempt - 1) * self.alpha
                s.t += wait
                inj.stats.backoff_time += wait
                inj.stats.resent_messages += 1
                inj.stats.resent_words += words
            self._transfer(s, d, words, factor=fwd)
            if inj.dropped(src, dst, seq, attempt):
                continue
            if inj.corrupted(src, dst, seq, attempt):
                continue  # checksum fails; receiver discards, sender times out
            if not delivered:
                delivered = True
                if inj.duplicated(src, dst, seq, attempt):
                    # the network replays the frame: the duplicate occupies
                    # the link and both endpoints once more, then the
                    # receiver discards it by sequence number
                    self._transfer(s, d, words, factor=fwd)
                if payload is not None:
                    d.inbox[key] = payload
                    d.note_buffer(words)
            # the receiver (re-)acknowledges with a zero-word message
            self._transfer(d, s, 0, factor=rev)
            inj.stats.ack_messages += 1
            if not inj.ack_dropped(src, dst, seq, attempt):
                return
        raise FaultExhausted(
            f"message {src}→{dst} (seq {seq}, {words} words) undelivered "
            f"after {plan.max_attempts} attempts"
        )

    # -- fail-stop ---------------------------------------------------------

    def fail(self, rank: int) -> None:
        """Fail-stop ``rank``: its store and inbox are lost, traffic refused."""
        p = self[rank]
        self.failed.add(rank)
        p.store.clear()
        p.inbox.clear()
        p.ckpt.clear()
        p.buffer_words = 0

    def restart(self, rank: int) -> None:
        """Bring a fail-stopped rank back (empty-handed; recovery refills it)."""
        self.failed.discard(rank)

    # -- compute -----------------------------------------------------------

    def compute(self, rank: int, flops: int) -> None:
        """Record local arithmetic (advances the clock by γ per flop)."""
        check_nonnegative_int("flops", flops)
        p = self[rank]
        p.flops += flops
        p.t += self.gamma * flops
        if self.guard is not None:
            self.guard.spend(flops=flops)

    # -- collectives ----------------------------------------------------------

    def broadcast(
        self,
        root: int,
        members: Sequence[int],
        words: int,
        payload: Any = None,
        key: Any = None,
    ) -> None:
        """Binomial-tree broadcast from root to every member.

        ⌈log₂ g⌉ rounds deep for a group of g — each non-root member
        receives exactly one message; the path through the tree
        carries ⌈log₂ g⌉ messages of ``words`` words each.
        """
        group = list(members)
        if root not in group:
            raise NetworkError(f"root {root} not in broadcast group {group}")
        if len(set(group)) != len(group):
            raise NetworkError(f"duplicate ranks in broadcast group {group}")
        # order with root first; binomial doubling over positions
        order = [root] + [m for m in group if m != root]
        have = 1
        while have < len(order):
            senders = min(have, len(order) - have)
            for i in range(senders):
                self.send(order[i], order[have + i], words, payload, key)
            have += senders
        if payload is not None and key is not None:
            # root holds the payload too (no self-message, no charge)
            self[root].inbox[key] = payload

    def reduce(
        self,
        root: int,
        members: Sequence[int],
        words: int,
        contributions: dict[int, Any] | None = None,
        combine=None,
        key: Any = None,
    ) -> Any:
        """Binomial-tree reduction onto ``root``.

        The mirror image of :meth:`broadcast`: ⌈log₂ g⌉ rounds, each
        non-root member sends exactly one message of ``words`` words.
        ``contributions`` maps each member to its local value and
        ``combine(a, b)`` merges two of them; the fully combined value
        is returned (and stored in ``root``'s inbox under ``key``).
        """
        group = list(members)
        if root not in group:
            raise NetworkError(f"root {root} not in reduce group {group}")
        if len(set(group)) != len(group):
            raise NetworkError(f"duplicate ranks in reduce group {group}")
        order = [root] + [m for m in group if m != root]
        values = dict(contributions or {})
        active = len(order)
        while active > 1:
            half = (active + 1) // 2
            for i in range(half, active):
                src, dst = order[i], order[i - half]
                self.send(src, dst, words)
                if values:
                    if combine is None:
                        raise NetworkError(
                            "reduce with contributions needs a combine op"
                        )
                    values[dst] = combine(values[dst], values[src])
            active = half
        result = values.get(root)
        if result is not None and key is not None:
            self[root].inbox[key] = result
            self[root].note_buffer(words)
        return result

    # -- results ------------------------------------------------------------------

    def critical(self) -> Processor:
        """The processor whose clock ends largest (the critical path)."""
        return max(self.processors, key=lambda p: p.t)

    @property
    def fault_stats(self):
        """Realized-fault statistics, or ``None`` on a failure-free network."""
        return None if self.faults is None else self.faults.stats

    @property
    def critical_time(self) -> float:
        return self.critical().t

    @property
    def critical_words(self) -> int:
        """Words along the critical path (Table 2 'Bandwidth')."""
        return self.critical().path_words

    @property
    def critical_messages(self) -> int:
        """Messages along the critical path (Table 2 'Latency')."""
        return self.critical().path_messages

    @property
    def max_flops(self) -> int:
        """Largest per-processor arithmetic (Table 2 'FLOPS')."""
        return max(p.flops for p in self.processors)

    @property
    def max_words(self) -> int:
        """Largest per-processor total traffic (load-balance metric)."""
        return max(p.total_words for p in self.processors)

    def clear_inboxes(self) -> None:
        """Drop all buffered payloads (end of an algorithm phase)."""
        for p in self.processors:
            p.inbox.clear()
            p.buffer_words = 0

    def summary(self) -> dict[str, object]:
        """Plain-dict report of the run's headline counters."""
        return {
            "P": self.P,
            "critical_time": self.critical_time,
            "critical_words": self.critical_words,
            "critical_messages": self.critical_messages,
            "max_flops": self.max_flops,
            "max_words": self.max_words,
            "total_words": sum(p.words_sent for p in self.processors),
            "total_messages": sum(p.messages_sent for p in self.processors),
            "faults": None if self.faults is None else self.faults.stats.to_dict(),
        }

    def __repr__(self) -> str:
        return f"Network(P={self.P}, alpha={self.alpha}, beta={self.beta})"
