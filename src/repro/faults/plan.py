"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` is a *description* of what can go wrong during a
run: message drop/duplication/payload-corruption probabilities, slow
links (a degraded per-link β), fail-stop ranks, and transient read
faults on the sequential machine.  It carries one seed, and every
individual fault decision is a pure function of

    ``(seed, kind, identity parts)``

hashed through SHA-256 — never of wall time, process id, or execution
order.  The same plan therefore produces byte-identical fault
schedules and identical counters on every run, across ``jobs=1`` and
``jobs=N``, which is what lets faulty runs live in the same
content-addressed result cache as clean ones.

An *empty* plan (all probabilities zero, no slow links, no
fail-stops) is the explicit "nothing can fail" statement: simulators
treat it exactly like ``faults=None`` and keep their historical
counters bit-identical (the zero-overhead-when-off guarantee the
fault tests enforce registry-wide).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Mapping


def fault_unit(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one fault decision.

    SHA-256 over the seed plus the decision's identity — stable across
    processes, Python versions and execution order (unlike ``hash()``
    or a shared ``random.Random`` stream, either of which would make
    ``jobs=N`` runs diverge from serial ones).
    """
    text = ":".join([str(int(seed)), *(repr(p) for p in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _check_prob(name: str, p: float) -> float:
    p = float(p)
    if not (0.0 <= p < 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1), got {p}")
    return p


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injectable faults.

    Parameters
    ----------
    seed:
        Root of every fault decision (see :func:`fault_unit`).
    drop, duplicate, corrupt:
        Per-transmission probabilities of losing a message, of the
        network delivering it twice, and of the payload arriving
        checksum-corrupt (detected and discarded by the receiver, so
        it costs a resend rather than wrong numerics).
    slow_links:
        ``((src, dst, factor), ...)`` β multipliers for individual
        directed links; ``factor`` > 1 models a degraded link.
    failstops:
        ``((rank, round), ...)``: rank fails (loses all state) at the
        *start* of algorithm round ``round``.  Recovery is the
        simulated algorithm's job (buddy checkpointing in PxPOTRF /
        SUMMA).
    read_fault:
        Probability that one explicit sequential-machine read returns
        garbage (detected, e.g. ECC) and must be re-issued — the
        retry is charged at every level.
    silent:
        Probability that one ABFT checkpoint boundary suffers a
        *silent* single-element bit flip — in the tracked matrix (the
        resident working set's backing blocks) for sequential runs, or
        in a broadcast payload for the parallel drivers — with nothing
        at the transport layer noticing.  Only the checksum guardian
        (:mod:`repro.abft`) can detect and correct it; without ABFT
        armed these strikes never happen, because the guardian *is*
        the injection point.
    silent_double:
        Conditional probability that a silent strike flips a *second*
        element in the same protection tile — an uncorrectable double
        fault that must escalate as
        :class:`~repro.abft.SilentCorruptionError`.
    max_attempts:
        Bound on transmissions of one logical message before the
        transport gives up with :class:`~repro.faults.FaultExhausted`.
    backoff_base, backoff_cap:
        Retry backoff in units of the network's α: attempt ``k``
        (0-based) waits ``min(cap, base · 2^k)·α`` before resending.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    slow_links: "tuple[tuple[int, int, float], ...]" = ()
    failstops: "tuple[tuple[int, int], ...]" = ()
    read_fault: float = 0.0
    silent: float = 0.0
    silent_double: float = 0.0
    max_attempts: int = 10
    backoff_base: float = 1.0
    backoff_cap: float = 16.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "read_fault", "silent",
                     "silent_double"):
            object.__setattr__(self, name, _check_prob(name, getattr(self, name)))
        if int(self.max_attempts) < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        links = tuple(
            (int(s), int(d), float(f)) for s, d, f in self.slow_links
        )
        for s, d, f in links:
            if f <= 0:
                raise ValueError(f"slow link ({s},{d}) needs factor > 0, got {f}")
        object.__setattr__(self, "slow_links", tuple(sorted(links)))
        stops = tuple((int(r), int(k)) for r, k in self.failstops)
        for r, k in stops:
            if r < 0 or k < 0:
                raise ValueError(f"failstop ({r},{k}) must be non-negative")
        ranks = [r for r, _ in stops]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"at most one failstop per rank, got {stops}")
        object.__setattr__(self, "failstops", tuple(sorted(stops)))

    # -- emptiness -------------------------------------------------------

    def is_empty(self) -> bool:
        """True if the plan can never inject anything."""
        return not (
            self.drop
            or self.duplicate
            or self.corrupt
            or self.read_fault
            or self.silent
            or self.slow_links
            or self.failstops
        )

    def has_transport_faults(self) -> bool:
        """True if the *network transport* layer must arm for this plan.

        Silent faults deliberately bypass the reliable transport (that
        is what makes them silent), so a silent-only plan must not pay
        stop-and-wait ack/backoff overhead — the checksum guardian is
        its only observer.
        """
        return bool(
            self.drop
            or self.duplicate
            or self.corrupt
            or self.slow_links
            or self.failstops
        )

    def has_silent(self) -> bool:
        """True if the plan schedules silent (ABFT-only) corruption."""
        return bool(self.silent)

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- per-decision draws ----------------------------------------------

    def unit(self, kind: str, *parts: object) -> float:
        """The plan's deterministic uniform draw for one decision."""
        return fault_unit(self.seed, kind, *parts)

    def beta_factor(self, src: int, dst: int) -> float:
        """β multiplier of the directed link ``src → dst`` (1.0 = healthy)."""
        factor = 1.0
        for s, d, f in self.slow_links:
            if s == src and d == dst:
                factor *= f
        return factor

    def failstop_round(self, rank: int) -> int | None:
        """The round at whose start ``rank`` fail-stops, or ``None``."""
        for r, k in self.failstops:
            if r == rank:
                return k
        return None

    def backoff(self, attempt: int) -> float:
        """Wait (in α units) before re-transmission ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical dict (cache-key and artifact input)."""
        return {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "slow_links": [list(t) for t in self.slow_links],
            "failstops": [list(t) for t in self.failstops],
            "read_fault": self.read_fault,
            "silent": self.silent,
            "silent_double": self.silent_double,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        kw = dict(d)
        kw["slow_links"] = tuple(tuple(t) for t in kw.get("slow_links", ()))
        kw["failstops"] = tuple(tuple(t) for t in kw.get("failstops", ()))
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in kw.items() if k in known})

    def freeze(self) -> tuple:
        """Hashable canonical form (spec points embed this)."""
        return tuple(sorted(
            (k, tuple(map(tuple, v)) if isinstance(v, (list, tuple)) else v)
            for k, v in self.to_dict().items()
        ))

    @classmethod
    def from_frozen(cls, frozen: Iterable) -> "FaultPlan":
        """Inverse of :meth:`freeze`."""
        return cls.from_dict({k: v for k, v in frozen})

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault model under a different schedule seed."""
        return replace(self, seed=int(seed))


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Seeded chaos at the *cluster* layer (the serving front door).

    Extends the :class:`FaultPlan` discipline — one seed, every
    decision a pure SHA-256 function of ``(seed, kind, identity)`` —
    from the simulated machine up to the serving cluster, so a chaos
    soak (which shards die, which dispatches drop, which jobs are
    poisoned, when the front door itself crashes) is byte-reproducible
    run to run.  Decisions are keyed by the *submission index* and the
    job's content-address, never by process-global job ids or wall
    time, so two same-seed soaks realize the identical schedule.

    Parameters
    ----------
    seed:
        Root of every chaos decision.
    kill_every:
        Deterministic shard kills: at every ``kill_every``-th
        submission, hard-kill one live shard (chosen by a seeded draw;
        the last live shard is never killed — chaos degrades the ring,
        it does not empty it).  ``0`` disables.
    shard_kill / shard_stall:
        Per-submission probabilities of killing / heartbeat-stalling a
        shard (stall only applies to process-mode shards: the victim
        stops heartbeating for ``stall_seconds`` while staying alive —
        the supervisor's debounce/evict/respawn path under test).
    stall_seconds:
        Length of one injected heartbeat stall.
    pipe_drop:
        Per-dispatch probability that the submit message is lost on
        the pipe; the front door detects the drop and redelivers
        (draws are per-attempt, so redelivery terminates).
    pipe_delay / delay_seconds:
        Per-dispatch probability of delaying the send, and the delay.
    poison:
        Per-submission probability that the job is poisoned: its point
        is wrapped in a fatal :class:`FaultPlan` (first read faults,
        one attempt), driving the shard's failure/breaker path.
    crash_at_record:
        Front-door crash: after the journal durably writes record
        ``k``, the front door dies (see
        :class:`repro.serving.journal.JobJournal`).  ``None`` disables.
    """

    seed: int = 0
    kill_every: int = 0
    shard_kill: float = 0.0
    shard_stall: float = 0.0
    stall_seconds: float = 2.0
    pipe_drop: float = 0.0
    pipe_delay: float = 0.0
    delay_seconds: float = 0.05
    poison: float = 0.0
    crash_at_record: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("shard_kill", "shard_stall", "pipe_drop", "pipe_delay",
                     "poison"):
            object.__setattr__(self, name, _check_prob(name, getattr(self, name)))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "kill_every", int(self.kill_every))
        if self.kill_every < 0:
            raise ValueError(f"kill_every must be >= 0, got {self.kill_every}")
        if self.stall_seconds < 0 or self.delay_seconds < 0:
            raise ValueError("stall_seconds and delay_seconds must be >= 0")
        if self.crash_at_record is not None:
            object.__setattr__(
                self, "crash_at_record", int(self.crash_at_record)
            )
            if self.crash_at_record < 1:
                raise ValueError(
                    f"crash_at_record must be >= 1, got {self.crash_at_record}"
                )

    # -- emptiness -------------------------------------------------------

    def is_empty(self) -> bool:
        """True if the plan can never inject anything at the cluster."""
        return not (
            self.kill_every
            or self.shard_kill
            or self.shard_stall
            or self.pipe_drop
            or self.pipe_delay
            or self.poison
            or self.crash_at_record
        )

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- per-decision draws ----------------------------------------------

    def unit(self, kind: str, *parts: object) -> float:
        """The plan's deterministic uniform draw for one decision."""
        return fault_unit(self.seed, "cluster", kind, *parts)

    def _pick(self, kind: str, index: int, names: "list[str]") -> str:
        i = int(self.unit(kind + "-pick", index) * len(names))
        return sorted(names)[min(i, len(names) - 1)]

    def kill_target(self, index: int, live: "Iterable[str]") -> "str | None":
        """The shard to kill at submission ``index``, or ``None``.

        Never names the last live shard: with one survivor the ring
        stays serving and accepted jobs keep terminating.
        """
        names = sorted(live)
        if len(names) < 2:
            return None
        if self.kill_every and index % self.kill_every == 0 and index > 0:
            return self._pick("kill", index, names)
        if self.shard_kill and self.unit("kill", index) < self.shard_kill:
            return self._pick("kill", index, names)
        return None

    def stall_target(self, index: int, live: "Iterable[str]") -> "str | None":
        """The shard to heartbeat-stall at submission ``index``, or ``None``."""
        names = sorted(live)
        if not names or not self.shard_stall:
            return None
        if self.unit("stall", index) < self.shard_stall:
            return self._pick("stall", index, names)
        return None

    def drops_dispatch(self, index: int, key: str, attempt: int) -> bool:
        """Is delivery ``attempt`` (0-based) of this dispatch lost?"""
        if not self.pipe_drop:
            return False
        return self.unit("pipe-drop", index, key, attempt) < self.pipe_drop

    def dispatch_delay(self, index: int, key: str) -> float:
        """Seconds to delay this dispatch (0.0 almost always)."""
        if not self.pipe_delay:
            return 0.0
        if self.unit("pipe-delay", index, key) < self.pipe_delay:
            return self.delay_seconds
        return 0.0

    def poisons(self, index: int, key: str) -> bool:
        """Is the job at submission ``index`` poisoned?"""
        if not self.poison:
            return False
        return self.unit("poison", index, key) < self.poison

    def poison_plan(self, index: int, key: str) -> FaultPlan:
        """The fatal per-job fault plan a poisoned job is wrapped in.

        First explicit read faults with a single permitted attempt:
        the job fails fast and deterministically
        (:class:`~repro.faults.FaultExhausted` inside the shard) —
        cheap, loud, and the same failure every run.
        """
        return FaultPlan(
            seed=int(self.unit("poison-seed", index, key) * (1 << 31)),
            read_fault=0.999,
            drop=0.999,
            max_attempts=1,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical dict (artifact / CI input)."""
        return {
            "seed": self.seed,
            "kill_every": self.kill_every,
            "shard_kill": self.shard_kill,
            "shard_stall": self.shard_stall,
            "stall_seconds": self.stall_seconds,
            "pipe_drop": self.pipe_drop,
            "pipe_delay": self.pipe_delay,
            "delay_seconds": self.delay_seconds,
            "poison": self.poison,
            "crash_at_record": self.crash_at_record,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ClusterFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(d).items() if k in known})

    def with_seed(self, seed: int) -> "ClusterFaultPlan":
        """The same chaos model under a different schedule seed."""
        return replace(self, seed=int(seed))


__all__ = ["ClusterFaultPlan", "FaultPlan", "fault_unit"]
