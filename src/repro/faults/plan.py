"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` is a *description* of what can go wrong during a
run: message drop/duplication/payload-corruption probabilities, slow
links (a degraded per-link β), fail-stop ranks, and transient read
faults on the sequential machine.  It carries one seed, and every
individual fault decision is a pure function of

    ``(seed, kind, identity parts)``

hashed through SHA-256 — never of wall time, process id, or execution
order.  The same plan therefore produces byte-identical fault
schedules and identical counters on every run, across ``jobs=1`` and
``jobs=N``, which is what lets faulty runs live in the same
content-addressed result cache as clean ones.

An *empty* plan (all probabilities zero, no slow links, no
fail-stops) is the explicit "nothing can fail" statement: simulators
treat it exactly like ``faults=None`` and keep their historical
counters bit-identical (the zero-overhead-when-off guarantee the
fault tests enforce registry-wide).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Mapping


def fault_unit(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one fault decision.

    SHA-256 over the seed plus the decision's identity — stable across
    processes, Python versions and execution order (unlike ``hash()``
    or a shared ``random.Random`` stream, either of which would make
    ``jobs=N`` runs diverge from serial ones).
    """
    text = ":".join([str(int(seed)), *(repr(p) for p in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _check_prob(name: str, p: float) -> float:
    p = float(p)
    if not (0.0 <= p < 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1), got {p}")
    return p


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injectable faults.

    Parameters
    ----------
    seed:
        Root of every fault decision (see :func:`fault_unit`).
    drop, duplicate, corrupt:
        Per-transmission probabilities of losing a message, of the
        network delivering it twice, and of the payload arriving
        checksum-corrupt (detected and discarded by the receiver, so
        it costs a resend rather than wrong numerics).
    slow_links:
        ``((src, dst, factor), ...)`` β multipliers for individual
        directed links; ``factor`` > 1 models a degraded link.
    failstops:
        ``((rank, round), ...)``: rank fails (loses all state) at the
        *start* of algorithm round ``round``.  Recovery is the
        simulated algorithm's job (buddy checkpointing in PxPOTRF /
        SUMMA).
    read_fault:
        Probability that one explicit sequential-machine read returns
        garbage (detected, e.g. ECC) and must be re-issued — the
        retry is charged at every level.
    max_attempts:
        Bound on transmissions of one logical message before the
        transport gives up with :class:`~repro.faults.FaultExhausted`.
    backoff_base, backoff_cap:
        Retry backoff in units of the network's α: attempt ``k``
        (0-based) waits ``min(cap, base · 2^k)·α`` before resending.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    slow_links: "tuple[tuple[int, int, float], ...]" = ()
    failstops: "tuple[tuple[int, int], ...]" = ()
    read_fault: float = 0.0
    max_attempts: int = 10
    backoff_base: float = 1.0
    backoff_cap: float = 16.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "read_fault"):
            object.__setattr__(self, name, _check_prob(name, getattr(self, name)))
        if int(self.max_attempts) < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        links = tuple(
            (int(s), int(d), float(f)) for s, d, f in self.slow_links
        )
        for s, d, f in links:
            if f <= 0:
                raise ValueError(f"slow link ({s},{d}) needs factor > 0, got {f}")
        object.__setattr__(self, "slow_links", tuple(sorted(links)))
        stops = tuple((int(r), int(k)) for r, k in self.failstops)
        for r, k in stops:
            if r < 0 or k < 0:
                raise ValueError(f"failstop ({r},{k}) must be non-negative")
        ranks = [r for r, _ in stops]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"at most one failstop per rank, got {stops}")
        object.__setattr__(self, "failstops", tuple(sorted(stops)))

    # -- emptiness -------------------------------------------------------

    def is_empty(self) -> bool:
        """True if the plan can never inject anything."""
        return not (
            self.drop
            or self.duplicate
            or self.corrupt
            or self.read_fault
            or self.slow_links
            or self.failstops
        )

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- per-decision draws ----------------------------------------------

    def unit(self, kind: str, *parts: object) -> float:
        """The plan's deterministic uniform draw for one decision."""
        return fault_unit(self.seed, kind, *parts)

    def beta_factor(self, src: int, dst: int) -> float:
        """β multiplier of the directed link ``src → dst`` (1.0 = healthy)."""
        factor = 1.0
        for s, d, f in self.slow_links:
            if s == src and d == dst:
                factor *= f
        return factor

    def failstop_round(self, rank: int) -> int | None:
        """The round at whose start ``rank`` fail-stops, or ``None``."""
        for r, k in self.failstops:
            if r == rank:
                return k
        return None

    def backoff(self, attempt: int) -> float:
        """Wait (in α units) before re-transmission ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready canonical dict (cache-key and artifact input)."""
        return {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "slow_links": [list(t) for t in self.slow_links],
            "failstops": [list(t) for t in self.failstops],
            "read_fault": self.read_fault,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        kw = dict(d)
        kw["slow_links"] = tuple(tuple(t) for t in kw.get("slow_links", ()))
        kw["failstops"] = tuple(tuple(t) for t in kw.get("failstops", ()))
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in kw.items() if k in known})

    def freeze(self) -> tuple:
        """Hashable canonical form (spec points embed this)."""
        return tuple(sorted(
            (k, tuple(map(tuple, v)) if isinstance(v, (list, tuple)) else v)
            for k, v in self.to_dict().items()
        ))

    @classmethod
    def from_frozen(cls, frozen: Iterable) -> "FaultPlan":
        """Inverse of :meth:`freeze`."""
        return cls.from_dict({k: v for k, v in frozen})

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault model under a different schedule seed."""
        return replace(self, seed=int(seed))


__all__ = ["FaultPlan", "fault_unit"]
