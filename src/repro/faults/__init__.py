"""Deterministic fault injection and recovery accounting.

The paper's Table 2 assumes a failure-free α-β network; this package
asks what failures *cost* in the same words/messages/flops currency.
A seeded :class:`FaultPlan` describes message drop/duplication/
corruption, slow links, fail-stop ranks and transient machine read
faults; a :class:`FaultInjector` realizes it deterministically (same
seed ⇒ byte-identical schedule ⇒ identical counters, across process
pools); :class:`FaultStats` reports how much extra traffic the
retry/ack transport, buddy checkpointing and fail-stop recovery cost.

Entry points: ``Network.attach_faults`` /
``HierarchicalMachine.attach_faults``, the ``faults=`` keyword of
``pxpotrf``/``summa``/``measure``/``measure_parallel``, the
``faults=`` field of experiment spec points, and the ``repro chaos``
CLI.  See ``docs/FAULTS.md``.
"""

from repro.faults.injector import (
    FaultError,
    FaultEvent,
    FaultExhausted,
    FaultInjector,
    FaultStats,
    RankFailed,
)
from repro.faults.plan import ClusterFaultPlan, FaultPlan, fault_unit

__all__ = [
    "ClusterFaultPlan",
    "FaultError",
    "FaultEvent",
    "FaultExhausted",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "RankFailed",
    "fault_unit",
]
