"""The live side of a fault plan: decisions, event log, statistics.

A :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
for one run.  The simulators ask it questions ("is transmission
``(src, dst, seq, attempt)`` dropped?"); every *positive* answer is
appended to :attr:`FaultInjector.events` — the realized fault
schedule — and tallied in :class:`FaultStats`.  Because each answer is
a pure hash of the plan seed and the decision's identity, two runs of
the same algorithm under the same plan produce byte-identical event
lists, which the determinism tests compare directly.

:class:`FaultStats` also accumulates the *cost* of tolerating the
faults: resent words/messages, ack traffic, backoff time, checkpoint
traffic and fail-stop recovery traffic.  The simulators charge those
costs to their ordinary clocks and counters; the stats exist so a
measurement can report "how much of the total was overhead".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, NamedTuple

from repro.faults.plan import FaultPlan


class FaultError(RuntimeError):
    """Base class for fault-subsystem failures."""


class FaultExhausted(FaultError):
    """A message could not be delivered within ``max_attempts``."""


class RankFailed(FaultError):
    """A failed (and not yet recovered) rank was asked to communicate."""


class FaultEvent(NamedTuple):
    """One realized fault: what, where, and on which transmission."""

    kind: str  # "drop" | "duplicate" | "corrupt" | "failstop" | "read"
    src: int
    dst: int
    seq: int
    attempt: int


@dataclass
class FaultStats:
    """Realized faults plus the charged cost of surviving them."""

    # injected faults
    drops: int = 0
    duplicates: int = 0
    corruptions: int = 0
    failstops: int = 0
    read_faults: int = 0
    # tolerance costs (already charged to the run's ordinary counters)
    resent_messages: int = 0
    resent_words: int = 0
    ack_messages: int = 0
    backoff_time: float = 0.0
    checkpoint_words: int = 0
    checkpoint_messages: int = 0
    recovery_words: int = 0
    recovery_messages: int = 0
    read_retry_words: int = 0
    read_retry_messages: int = 0

    def any_injected(self) -> bool:
        """True if at least one fault was realized."""
        return bool(
            self.drops
            or self.duplicates
            or self.corruptions
            or self.failstops
            or self.read_faults
        )

    def to_dict(self) -> dict:
        """JSON-ready dict (measurement/artifact payload)."""
        return {k: v for k, v in asdict(self).items()}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultStats":
        """Rebuild stats from :meth:`to_dict` output (unknown keys dropped)."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


class FaultInjector:
    """Deterministic decision oracle + event log for one run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self.events: "list[FaultEvent]" = []
        self._failed: "set[int]" = set()

    # -- message-level decisions ------------------------------------------

    def _decide(self, kind: str, prob: float, src: int, dst: int,
                seq: int, attempt: int) -> bool:
        if prob <= 0.0:
            return False
        if self.plan.unit(kind, src, dst, seq, attempt) >= prob:
            return False
        self.events.append(FaultEvent(kind, src, dst, seq, attempt))
        return True

    def dropped(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Is this transmission lost in flight?"""
        hit = self._decide("drop", self.plan.drop, src, dst, seq, attempt)
        if hit:
            self.stats.drops += 1
        return hit

    def corrupted(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Does this transmission arrive checksum-corrupt (and get discarded)?"""
        hit = self._decide("corrupt", self.plan.corrupt, src, dst, seq, attempt)
        if hit:
            self.stats.corruptions += 1
        return hit

    def duplicated(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Does the network deliver this transmission twice?"""
        hit = self._decide(
            "duplicate", self.plan.duplicate, src, dst, seq, attempt
        )
        if hit:
            self.stats.duplicates += 1
        return hit

    def ack_dropped(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Is the acknowledgement for this transmission lost?"""
        hit = self._decide("drop-ack", self.plan.drop, src, dst, seq, attempt)
        if hit:
            self.stats.drops += 1
        return hit

    def read_faulted(self, seq: int) -> bool:
        """Does explicit machine read ``seq`` return garbage (retry needed)?"""
        if self.plan.read_fault <= 0.0:
            return False
        if self.plan.unit("read", seq) >= self.plan.read_fault:
            return False
        self.events.append(FaultEvent("read", -1, -1, seq, 0))
        self.stats.read_faults += 1
        return True

    # -- link & rank state -------------------------------------------------

    def beta_factor(self, src: int, dst: int) -> float:
        """Per-link β multiplier (1.0 unless the plan slows this link)."""
        return self.plan.beta_factor(src, dst)

    def failstops_due(self, round_index: int) -> "list[int]":
        """Ranks whose fail-stop round is ``round_index`` (each fires once)."""
        due = [
            rank
            for rank, k in self.plan.failstops
            if k == round_index and rank not in self._failed
        ]
        for rank in due:
            self._failed.add(rank)
            self.events.append(FaultEvent("failstop", rank, rank, round_index, 0))
            self.stats.failstops += 1
        return due

    def schedule_fingerprint(self) -> str:
        """Stable digest of the realized fault schedule (determinism tests)."""
        import hashlib

        blob = "\n".join(repr(tuple(e)) for e in self.events)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


__all__ = [
    "FaultError",
    "FaultEvent",
    "FaultExhausted",
    "FaultInjector",
    "FaultStats",
    "RankFailed",
]
