"""Matrices bound to machines: the operands of every algorithm.

``repro.matrices.generators``
    Reproducible SPD test-matrix families (the workloads of the
    benchmark harness).

``repro.matrices.tracked``
    :class:`TrackedMatrix` — a NumPy matrix married to a storage
    layout and a machine, so that every block read/write is charged
    as the words and messages the layout implies — and
    :class:`BlockRef`, the rectangular sub-block handle the recursive
    algorithms (Algorithms 5–8) operate on.
"""

from repro.matrices.generators import (
    banded_spd,
    diagonally_dominant,
    hilbert_shifted,
    random_spd,
    wishart_like,
)
from repro.matrices.tracked import BlockRef, TrackedMatrix, footprint
from repro.matrices.convert import convert_layout

__all__ = [
    "convert_layout",
    "random_spd",
    "diagonally_dominant",
    "wishart_like",
    "hilbert_shifted",
    "banded_spd",
    "TrackedMatrix",
    "BlockRef",
    "footprint",
]
