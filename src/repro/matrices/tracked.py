"""Machine-bound matrices and block references.

:class:`TrackedMatrix` is the slow-memory resident operand: a dense
NumPy array (the numerical truth) plus a storage layout (the address
truth) plus the machine that gets charged for every access.  The NumPy
array always holds the matrix in natural ``(i, j)`` indexing — the
layout affects *addresses and therefore messages*, never the numbers —
which is what lets one algorithm run unchanged over every layout of
Figure 2 while producing layout-dependent latency, exactly as in
Table 1.

:class:`BlockRef` is a rectangular view ``[r0, r1) × [c0, c1)`` of a
tracked matrix (optionally transposed).  It is the operand type of all
the blocked and recursive algorithms and offers two access styles:

* **charged**: :meth:`BlockRef.load` / :meth:`BlockRef.store` /
  :meth:`BlockRef.release` issue explicit machine transfers — used by
  the explicit algorithms (naïve, LAPACK POTRF, Toledo's base cases);
* **free**: :meth:`BlockRef.peek` / :meth:`BlockRef.poke` touch only
  the numbers — used *inside* a fitted ideal-cache scope, whose entry
  already charged the whole footprint (see
  :meth:`repro.machine.core.HierarchicalMachine.scope`).

For packed (triangular) layouts the charged words of a block are the
*stored* entries only; numerically the dense rectangle is returned
(the upper mirror of a symmetric operand), matching how packed BLAS
kernels treat symmetric data.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.layouts.base import Layout
from repro.machine.core import HierarchicalMachine
from repro.util.fastpath import fastpath_enabled
from repro.util.intervals import IntervalSet, RunBatch, union_all
from repro.util.validation import check_square

#: Entry cap on the per-matrix interval memo (dropped wholesale past it).
_INTERVAL_CACHE_MAX = 1 << 16


class TrackedMatrix:
    """A matrix in slow memory, bound to a layout and a machine.

    Parameters
    ----------
    data:
        Square float64 array holding the values (copied).
    layout:
        Storage layout; must have the same dimension as ``data``.
    machine:
        The machine charged for accesses.
    base:
        Slow-memory base address; by default a fresh region is
        reserved from the machine so multiple matrices never alias.
    name:
        Label used in error messages and reports.
    """

    def __init__(
        self,
        data: np.ndarray,
        layout: Layout,
        machine: HierarchicalMachine,
        *,
        base: int | None = None,
        name: str = "A",
    ) -> None:
        self.data = check_square("data", data).copy()
        if layout.n != self.data.shape[0]:
            raise ValueError(
                f"layout dimension {layout.n} != matrix dimension "
                f"{self.data.shape[0]}"
            )
        self.layout = layout
        self.machine = machine
        self.base = (
            machine.reserve_address_space(layout.storage_words)
            if base is None
            else int(base)
        )
        self.name = name
        self._interval_cache: "dict[tuple[int, int, int, int], IntervalSet]" = {}

    @property
    def n(self) -> int:
        return self.layout.n

    # -- geometry --------------------------------------------------------

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        """Global (base-shifted) address runs of a rectangle.

        Memoized per rectangle on the fast path: the recursive
        algorithms ask for the same block footprints at every node of
        their recursion, and the sets are immutable.
        """
        if not fastpath_enabled():
            return self.layout.intervals(r0, r1, c0, c1).shift(self.base)
        key = (r0, r1, c0, c1)
        cache = self._interval_cache
        ivs = cache.get(key)
        if ivs is None:
            ivs = self.layout.intervals(r0, r1, c0, c1).shift(self.base)
            if len(cache) >= _INTERVAL_CACHE_MAX:
                cache.clear()
            cache[key] = ivs
        return ivs

    # -- batched transfers -------------------------------------------------

    def column_batch(
        self, r0: int, r1: int, c0: int, c1: int, *, is_write: bool = False
    ) -> RunBatch:
        """One transfer per column of ``[r0,r1) × [c0,c1)``, in order.

        Each set equals ``self.intervals(r0, r1, c, c+1)`` — what a
        per-column ``BlockRef.load``/``store`` would charge — built in
        closed form on layouts with a uniform column stride and by
        per-column enumeration otherwise.
        """
        ld = self.layout.column_stride
        if ld is not None and not self.layout.packed and fastpath_enabled():
            return RunBatch.from_strided(
                (r0, r1), (c0, c1), ld, base=self.base, is_write=is_write
            )
        return RunBatch.from_sets(
            [self.intervals(r0, r1, c, c + 1) for c in range(c0, c1)],
            is_write=is_write,
        )

    def rect_batch(
        self,
        rects: "Sequence[tuple[int, int, int, int]]",
        is_write: "bool | Sequence[bool]" = False,
    ) -> RunBatch:
        """One transfer per ``(r0, r1, c0, c1)`` rectangle, in order."""
        return RunBatch.from_sets(
            [self.intervals(*rect) for rect in rects], is_write=is_write
        )

    def load_panel(
        self, r0: int, r1: int, c0: int, c1: int, *, peak_extra: int | None = None
    ) -> np.ndarray:
        """Stream the panel through fast memory column by column.

        Charges one batched read per column (count-identical to the
        load/release loop the element-wise algorithms run) and returns
        the panel's values.  ``peak_extra`` follows
        :meth:`~repro.machine.core.HierarchicalMachine.charge_intervals`.
        """
        self.machine.read_batch(
            self.column_batch(r0, r1, c0, c1), peak_extra=peak_extra
        )
        return self.data[r0:r1, c0:c1].copy()

    def store_panel(
        self,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        values: np.ndarray,
        *,
        peak_extra: int | None = None,
    ) -> None:
        """Write the panel back column by column (batched twin of
        per-column ``store`` calls)."""
        target = self.data[r0:r1, c0:c1]
        v = np.asarray(values, dtype=np.float64)
        if v.shape != target.shape:
            raise ValueError(
                f"value shape {v.shape} != panel shape {target.shape}"
            )
        target[...] = v
        self.machine.write_batch(
            self.column_batch(r0, r1, c0, c1, is_write=True),
            peak_extra=peak_extra,
        )

    def block(
        self, r0: int, r1: int, c0: int, c1: int
    ) -> "BlockRef":
        """A :class:`BlockRef` for ``[r0, r1) × [c0, c1)``."""
        return BlockRef(self, r0, r1, c0, c1)

    def whole(self) -> "BlockRef":
        """A reference to the entire matrix."""
        return BlockRef(self, 0, self.n, 0, self.n)

    # -- results -----------------------------------------------------------

    def lower(self) -> np.ndarray:
        """The lower triangle of the current values (the factor L)."""
        return np.tril(self.data)

    def __repr__(self) -> str:
        return (
            f"TrackedMatrix({self.name!r}, n={self.n}, "
            f"layout={self.layout.name}, base={self.base})"
        )


class BlockRef:
    """A (possibly transposed) rectangular view of a tracked matrix."""

    __slots__ = ("matrix", "r0", "r1", "c0", "c1", "transposed")

    def __init__(
        self,
        matrix: TrackedMatrix,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        transposed: bool = False,
    ) -> None:
        if not (0 <= r0 <= r1 <= matrix.n and 0 <= c0 <= c1 <= matrix.n):
            raise ValueError(
                f"block [{r0},{r1})x[{c0},{c1}) outside "
                f"{matrix.n}x{matrix.n} matrix {matrix.name!r}"
            )
        self.matrix = matrix
        self.r0, self.r1, self.c0, self.c1 = r0, r1, c0, c1
        self.transposed = transposed

    # -- shape -------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Logical row count (after transposition)."""
        return (self.c1 - self.c0) if self.transposed else (self.r1 - self.r0)

    @property
    def cols(self) -> int:
        """Logical column count (after transposition)."""
        return (self.r1 - self.r0) if self.transposed else (self.c1 - self.c0)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def T(self) -> "BlockRef":
        """The transposed view of the same storage region."""
        return BlockRef(
            self.matrix, self.r0, self.r1, self.c0, self.c1,
            transposed=not self.transposed,
        )

    @property
    def intervals(self) -> IntervalSet:
        """Global address runs of the stored entries of this block."""
        return self.matrix.intervals(self.r0, self.r1, self.c0, self.c1)

    @property
    def words(self) -> int:
        """Number of stored entries (what a transfer of this block costs)."""
        return self.matrix.layout.rect_words(self.r0, self.r1, self.c0, self.c1)

    # -- splitting -----------------------------------------------------------

    def sub(self, r0: int, r1: int, c0: int, c1: int) -> "BlockRef":
        """Sub-block in *logical* (post-transpose) local coordinates."""
        if self.transposed:
            r0, r1, c0, c1 = c0, c1, r0, r1
        if not (0 <= r0 <= r1 <= self.r1 - self.r0):
            raise ValueError("row range outside block")
        if not (0 <= c0 <= c1 <= self.c1 - self.c0):
            raise ValueError("column range outside block")
        return BlockRef(
            self.matrix,
            self.r0 + r0, self.r0 + r1,
            self.c0 + c0, self.c0 + c1,
            transposed=self.transposed,
        )

    def split_rows(self, k: int) -> tuple["BlockRef", "BlockRef"]:
        """Split logically at row ``k`` into (top, bottom)."""
        return (
            self.sub(0, k, 0, self.cols),
            self.sub(k, self.rows, 0, self.cols),
        )

    def split_cols(self, k: int) -> tuple["BlockRef", "BlockRef"]:
        """Split logically at column ``k`` into (left, right)."""
        return (
            self.sub(0, self.rows, 0, k),
            self.sub(0, self.rows, k, self.cols),
        )

    def quadrants(
        self, kr: int, kc: int
    ) -> tuple["BlockRef", "BlockRef", "BlockRef", "BlockRef"]:
        """Split into (11, 12, 21, 22) at logical row ``kr`` / col ``kc``."""
        return (
            self.sub(0, kr, 0, kc),
            self.sub(0, kr, kc, self.cols),
            self.sub(kr, self.rows, 0, kc),
            self.sub(kr, self.rows, kc, self.cols),
        )

    # -- numerical access (free) ----------------------------------------------

    def peek(self) -> np.ndarray:
        """Copy of the values, uncharged (use inside fitted scopes)."""
        a = self.matrix.data[self.r0 : self.r1, self.c0 : self.c1]
        return np.array(a.T if self.transposed else a, copy=True)

    def poke(self, values: np.ndarray) -> None:
        """Write values, uncharged (use inside fitted scopes)."""
        v = np.asarray(values, dtype=np.float64)
        if self.transposed:
            v = v.T
        target = self.matrix.data[self.r0 : self.r1, self.c0 : self.c1]
        if v.shape != target.shape:
            raise ValueError(
                f"value shape {v.shape} != block shape {target.shape}"
            )
        target[...] = v

    # -- charged access ----------------------------------------------------------

    def load(self) -> np.ndarray:
        """Explicitly transfer the block into fast memory; returns values."""
        self.matrix.machine.read(self.intervals)
        return self.peek()

    def store(self, values: np.ndarray) -> None:
        """Update values and explicitly transfer the block to slow memory."""
        self.poke(values)
        self.matrix.machine.write(self.intervals)

    def alloc(self) -> None:
        """Mark the block resident without a read (fresh output)."""
        self.matrix.machine.allocate(self.intervals)

    def release(self) -> None:
        """Evict the block from fast memory (no traffic)."""
        self.matrix.machine.release(self.intervals)

    @contextmanager
    def held(self) -> Iterator[np.ndarray]:
        """``load`` on entry, ``release`` on exit (read-only use)."""
        arr = self.load()
        try:
            yield arr
        finally:
            self.release()

    def __repr__(self) -> str:
        t = ".T" if self.transposed else ""
        return (
            f"BlockRef({self.matrix.name}[{self.r0}:{self.r1},"
            f"{self.c0}:{self.c1}]{t})"
        )


def footprint(refs: Sequence[BlockRef]) -> IntervalSet:
    """Union of the address runs of several blocks (scope footprints)."""
    return union_all([ref.intervals for ref in refs])
