"""Symmetric positive definite test-matrix families.

All generators are deterministic given a seed, return float64 C-order
arrays, and produce genuinely SPD matrices (checked in tests via
reference Cholesky).  These are the workloads the paper's algorithms
are run on; the communication counts are data-independent (classical
Cholesky does the same movement for every SPD input of a given size),
so the variety here exists to exercise the *numerics* of every code
path, not to change the counts — and one ablation bench verifies that
data-independence explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_spd(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Random SPD matrix ``G Gᵀ + n·I`` with ``G`` standard normal.

    The ``n·I`` shift keeps the condition number moderate so residual
    checks stay tight across sizes.
    """
    n = check_positive_int("n", n)
    rng = _rng(seed)
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    return np.ascontiguousarray((a + a.T) / 2.0)


def wishart_like(
    n: int, samples: int | None = None, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Sample-covariance-shaped SPD matrix ``(1/s) Σ x xᵀ + ε I``.

    A classic source of SPD systems (Gaussian-process / statistics
    workloads).  ``samples`` defaults to ``2 n`` so the raw covariance
    is already full rank; a small ridge makes definiteness robust.
    """
    n = check_positive_int("n", n)
    s = 2 * n if samples is None else check_positive_int("samples", samples)
    rng = _rng(seed)
    x = rng.standard_normal((s, n))
    a = (x.T @ x) / s + 1e-3 * np.eye(n)
    return np.ascontiguousarray((a + a.T) / 2.0)


def diagonally_dominant(
    n: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Symmetric strictly diagonally dominant matrix (hence SPD)."""
    n = check_positive_int("n", n)
    rng = _rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a = (a + a.T) / 2.0
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    return np.ascontiguousarray(a)


def hilbert_shifted(n: int, shift: float = 1e-2) -> np.ndarray:
    """Hilbert matrix plus a diagonal shift.

    The Hilbert matrix is SPD but catastrophically ill-conditioned;
    the shift keeps it factorable in float64 while preserving the
    strong off-diagonal coupling that stresses accumulation order.
    """
    n = check_positive_int("n", n)
    i = np.arange(n)
    h = 1.0 / (i[:, None] + i[None, :] + 1.0)
    return np.ascontiguousarray(h + shift * np.eye(n))


def banded_spd(
    n: int, bandwidth: int = 2, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """SPD matrix with a limited band (PDE-discretization-shaped).

    Built as ``B Bᵀ + I`` with ``B`` banded, which keeps the band at
    ``2·bandwidth`` and guarantees definiteness.
    """
    n = check_positive_int("n", n)
    bw = check_positive_int("bandwidth", bandwidth)
    rng = _rng(seed)
    b = rng.standard_normal((n, n))
    i = np.arange(n)
    mask = np.abs(i[:, None] - i[None, :]) <= bw
    b = b * mask
    a = b @ b.T + np.eye(n)
    return np.ascontiguousarray((a + a.T) / 2.0)


ALL_GENERATORS = {
    "random-spd": random_spd,
    "wishart": wishart_like,
    "diag-dominant": diagonally_dominant,
    "hilbert-shifted": hilbert_shifted,
    "banded": banded_spd,
}
"""Name → generator map used by tests and the CLI."""
