"""Layout conversion with counted communication (paper, footnote 3).

Conclusion 3 says LAPACK can attain the latency lower bound *if* the
input is in contiguous-block storage — "or M = Ω(n) so that it can be
copied quickly to contiguous block format".  Footnote 3 sketches the
copy: read M words at a time in source order (one message each, when
the source is column-major), then scatter them to their new locations
(one message per target run touched).

``convert_layout`` implements exactly that streaming copy between any
two layouts, charging the machine for both sides, so the benches can
verify the footnote's claim: the conversion costs O(n²) words and
O(n²/√M) messages, which is dominated by the factorization's
n³/M^{3/2} messages whenever M ≥ n — making

    column-major input → convert → blocked POTRF

latency-optimal end to end in that regime.
"""

from __future__ import annotations

from repro.layouts.base import Layout
from repro.matrices.tracked import TrackedMatrix
from repro.util.intervals import IntervalSet, merge_intervals


def _inverse_map(layout: Layout) -> dict[int, tuple[int, int]]:
    """address → (i, j) for every stored entry (O(n²) precompute)."""
    return {
        layout.address(i, j): (i, j)
        for j in range(layout.n)
        for i in range(layout.n)
        if layout.stores(i, j)
    }


def convert_layout(A: TrackedMatrix, new_layout: Layout) -> TrackedMatrix:
    """Copy a tracked matrix into a new layout on the same machine.

    Streams the source in address order, ``M`` words per chunk: each
    chunk is read (one message per source run crossed), its entries'
    target addresses are computed, and the chunk is written out (one
    message per target run).  The numerical contents are carried over
    unchanged; the new matrix gets a fresh slow-memory region.

    Returns the new :class:`TrackedMatrix`.

    Raises
    ------
    ValueError
        If the target layout has a different dimension or stores
        fewer entries than the source (converting a full layout into
        a packed one is allowed only when the source is accessed as
        symmetric — i.e. always, for our SPD operands; converting
        packed → full fabricates no data because the dense ``data``
        array always holds the full matrix).
    """
    if new_layout.n != A.n:
        raise ValueError(
            f"target layout dimension {new_layout.n} != matrix {A.n}"
        )
    machine = A.machine
    M = machine.M
    out = TrackedMatrix(A.data, new_layout, machine, name=f"{A.name}'")

    src_inverse = _inverse_map(A.layout)
    src_addresses = sorted(src_inverse)
    # a chunk and its re-addressed copy are resident together, so the
    # streaming unit is M/2 words (the footnote's "M at a time" up to
    # the factor its O(·) absorbs)
    step = max(1, M // 2)
    for start in range(0, len(src_addresses), step):
        chunk = src_addresses[start : start + step]
        src_ivs = IntervalSet((a, a + 1) for a in chunk).shift(A.base)
        machine.read(src_ivs)
        target_runs = []
        for addr in chunk:
            i, j = src_inverse[addr]
            if new_layout.stores(i, j):
                t = new_layout.address(i, j) + out.base
                target_runs.append((t, t + 1))
        target_ivs = IntervalSet(merge_intervals(target_runs))
        machine.allocate(target_ivs)
        machine.write(target_ivs)
        machine.release(src_ivs)
        machine.release(target_ivs)
    return out
