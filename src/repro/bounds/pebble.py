"""The segment argument, executable (Hong–Kung / ITT04 machinery).

The bandwidth lower bounds the paper imports (Theorem 2) all follow
one template:

1. cut the execution into *segments* during which at most ``M`` words
   move between slow and fast memory;
2. in any one segment, at most ``2M`` distinct values of each operand
   family are available (``M`` resident + ``M`` moved);
3. by the Loomis–Whitney inequality, a segment with access to
   ``n_a, n_b, n_c`` distinct A-, B-, C-values can perform at most
   ``sqrt(n_a · n_b · n_c)`` of the multiplication's elementary
   products — so at most ``2·sqrt(2)·M^{3/2}`` per segment;
4. therefore #segments ≥ #products / (2√2·M^{3/2}) and words moved
   ≥ M·(#segments − 1).

This module runs that argument on the *actual traces* of our Cholesky
algorithms: the scalar multiplications ``L(i,k)·L(j,k)`` of Equations
(5)–(6) are the product family (indexed by the triple ``(i, j, k)``,
whose three projections are entry sets of ``L``), interleaved with the
algorithm's transfers.  ``segment_lower_bound`` computes the bound the
argument yields for a given M; the tests check it against the measured
words of every algorithm — the model-level analogue of "any classical
algorithm obeys the bound".

For Cholesky the elementary products are the ``(i, j, k)``, ``k < j``,
``j <= i`` triples: ``n³/6 + O(n²)`` of them, giving the familiar
``Ω(n³/√M)`` with an explicit constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.util.validation import check_positive_int

Triple = Tuple[int, int, int]


def multiplication_triples(n: int) -> Iterator[Triple]:
    """All elementary products of classical Cholesky.

    ``L(i,k) · L(j,k)`` contributes to entry ``(i, j)`` for every
    ``k < j <= i`` (Equations 5–6; the diagonal's squares included
    with ``i == j``).
    """
    check_positive_int("n", n)
    for j in range(n):
        for i in range(j, n):
            for k in range(j):
                yield (i, j, k)


def triple_count(n: int) -> int:
    """``Σ_{j} (n−j)·j = (n³ − n)/6`` elementary products."""
    return (n**3 - n) // 6


def loomis_whitney(n_a: int, n_b: int, n_c: int) -> float:
    """Max #lattice points given the sizes of the three projections."""
    return math.sqrt(max(n_a, 0) * max(n_b, 0) * max(n_c, 0))


def segment_capacity(M: int) -> float:
    """Max products in one segment: ``2·sqrt(2)·M^{3/2}`` (Theorem 2's
    constant: each projection ≤ 2M values available)."""
    check_positive_int("M", M)
    return loomis_whitney(2 * M, 2 * M, 2 * M)


def segment_lower_bound(n: int, M: int) -> float:
    """Words any classical Cholesky must move (segment argument).

    ``M · (#products / capacity − 1)``, clamped at 0 — the explicit-
    constant form of Corollary 2.3 obtained directly, without the
    reduction detour (the reduction's job in the paper is generality;
    for our concrete operation set the argument applies verbatim).
    """
    products = triple_count(n)
    per_segment = segment_capacity(M)
    return max(0.0, M * (products / per_segment - 1.0))


# -- trace-level verification ---------------------------------------------------


@dataclass(frozen=True)
class IoEvent:
    """``words`` moved between fast and slow memory."""

    words: int


@dataclass(frozen=True)
class MulEvent:
    """One elementary product ``L(i,k)·L(j,k)``."""

    i: int
    j: int
    k: int


Event = IoEvent | MulEvent


def naive_left_trace(n: int) -> Iterator[Event]:
    """The interleaved IO/product trace of Algorithm 2 (M > 2n regime).

    Mirrors :func:`repro.sequential.naive.naive_left_looking` exactly:
    per column j, read the column (n−j words), then for each previous
    column k read it (n−j words) and fire its products, then write
    (n−j words).
    """
    check_positive_int("n", n)
    for j in range(n):
        yield IoEvent(n - j)
        for k in range(j):
            yield IoEvent(n - j)
            for i in range(j, n):
                yield MulEvent(i, j, k)
        yield IoEvent(n - j)


def right_looking_trace(n: int) -> Iterator[Event]:
    """The interleaved trace of Algorithm 3 (M > 2n regime)."""
    check_positive_int("n", n)
    for j in range(n):
        yield IoEvent(n - j)
        for k in range(j + 1, n):
            yield IoEvent(n - k)
            for i in range(k, n):
                # the update of column k by column j computes
                # L(i,j)·L(k,j): triple (i, k, j)
                yield MulEvent(i, k, j)
            yield IoEvent(n - k)
        yield IoEvent(n - j)


@dataclass
class SegmentReport:
    """Per-segment statistics from :func:`analyze_trace`."""

    segments: int
    total_words: int
    total_products: int
    max_products_per_segment: int
    max_projection: int
    capacity: float

    @property
    def argument_holds(self) -> bool:
        """Whether every segment respected the Loomis–Whitney cap."""
        return self.max_products_per_segment <= self.capacity

    def projections_within(self, M: int) -> bool:
        """Step 2 of the argument, verified: every segment's operand
        projections fit in the 2M words the model makes available
        (M resident at segment start + M moved during it)."""
        return self.max_projection <= 2 * M


def analyze_trace(events: Iterable[Event], M: int) -> SegmentReport:
    """Cut a trace into ≤M-word segments and check step 3 of the
    argument on each: products per segment vs Loomis–Whitney with the
    *actual* per-segment projections (not just the 2M worst case)."""
    check_positive_int("M", M)
    segments = 0
    seg_words = 0
    total_words = 0
    total_products = 0
    max_products = 0
    max_projection = 0
    proj_ij: set = set()
    proj_ik: set = set()
    proj_jk: set = set()
    seg_product_count = 0
    open_segment = False

    def close_segment() -> None:
        nonlocal max_products, max_projection, seg_product_count, open_segment
        # the LW bound for this segment, from its true projections
        lw = loomis_whitney(len(proj_ij), len(proj_ik), len(proj_jk))
        if seg_product_count > lw + 1e-9:
            raise AssertionError(
                "Loomis–Whitney violated in a segment: "
                f"{seg_product_count} products vs bound {lw:.1f}"
            )
        max_products = max(max_products, seg_product_count)
        max_projection = max(
            max_projection, len(proj_ij), len(proj_ik), len(proj_jk)
        )
        proj_ij.clear()
        proj_ik.clear()
        proj_jk.clear()
        seg_product_count = 0
        open_segment = False

    for ev in events:
        if isinstance(ev, IoEvent):
            total_words += ev.words
            remaining = ev.words
            while remaining > 0:
                if not open_segment:
                    segments += 1
                    seg_words = 0
                    open_segment = True
                take = min(remaining, M - seg_words)
                seg_words += take
                remaining -= take
                if seg_words >= M:
                    close_segment()
        else:
            if not open_segment:
                segments += 1
                seg_words = 0
                open_segment = True
            total_products += 1
            seg_product_count += 1
            proj_ij.add((ev.i, ev.j))
            proj_ik.add((ev.i, ev.k))
            proj_jk.add((ev.j, ev.k))
    if open_segment:
        close_segment()
    return SegmentReport(
        segments=segments,
        total_words=total_words,
        total_products=total_products,
        max_products_per_segment=max_products,
        max_projection=max_projection,
        capacity=segment_capacity(M),
    )
