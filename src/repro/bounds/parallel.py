"""Parallel (2D) bounds and the ScaLAPACK predictions of §3.3.1.

With P processors and local memories ``M = Θ(n²/P)`` (the 2D layout),
Corollary 2.4 gives

    bandwidth = Ω(n²/sqrt(P)),    latency = Ω(sqrt(P)),

and §3.3.1's critical-path analysis of PxPOTRF gives the *exact*
reference counts

    messages(n, b, P) = (3/2)·(n/b)·log₂P
    words(n, b, P)    = (n·b/4 + n²/sqrt(P))·log₂P

which at the latency-optimal block size ``b = n/sqrt(P)`` become
``(3/2)·sqrt(P)·log₂P`` messages and ``(5/4)·(n²/sqrt(P))·log₂P``
words (Table 2, bottom row).
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def parallel_bandwidth_lower_bound(n: int, P: int) -> float:
    """Ω-reference for per-processor words in the 2D layout: n²/√P."""
    check_positive_int("n", n)
    check_positive_int("P", P)
    return n * n / math.sqrt(P)


def parallel_latency_lower_bound(P: int) -> float:
    """Ω-reference for critical-path messages in the 2D layout: √P."""
    check_positive_int("P", P)
    return math.sqrt(P)


def parallel_flops_lower_bound(n: int, P: int) -> float:
    """Ω-reference for per-processor flops: n³/(3P)."""
    check_positive_int("n", n)
    check_positive_int("P", P)
    return n**3 / (3.0 * P)


def scalapack_messages(n: int, b: int, P: int) -> float:
    """§3.3.1 critical-path message count: (3/2)·(n/b)·log₂P."""
    check_positive_int("n", n)
    check_positive_int("b", b)
    check_positive_int("P", P)
    return 1.5 * (n / b) * math.log2(P) if P > 1 else 0.0

def scalapack_words(n: int, b: int, P: int) -> float:
    """§3.3.1 critical-path word count: (n·b/4 + n²/√P)·log₂P."""
    check_positive_int("n", n)
    check_positive_int("b", b)
    check_positive_int("P", P)
    if P == 1:
        return 0.0
    return (n * b / 4.0 + n * n / math.sqrt(P)) * math.log2(P)


def scalapack_flops(n: int, b: int, P: int) -> float:
    """§3.3.1 critical-path flop reference: n·b²/3 + n²·b/(2√P) + n³/(3P).

    The paper states the O-form ``O(nb² + n²b/√P + n³/P)``; the
    constants here come from summing its per-phase counts with the
    exact kernel flops (Chol(b) ≈ b³/3, TRSM ≈ b³, SYRK ≈ b³) and are
    the reference curve for the T2 flop-balance check.
    """
    check_positive_int("n", n)
    check_positive_int("b", b)
    check_positive_int("P", P)
    return n * b * b / 3.0 + n * n * b / (2.0 * math.sqrt(P)) + n**3 / (3.0 * P)


def optimal_block_size(n: int, P: int) -> int:
    """The latency-optimal choice of §3.3.1: ``b = n / sqrt(P)``.

    Requires P to be a perfect square dividing n² the way the paper's
    grid assumption does; returns the integer block size.
    """
    check_positive_int("n", n)
    check_positive_int("P", P)
    root = math.isqrt(P)
    if root * root != P:
        raise ValueError(f"P={P} must be a perfect square for a square grid")
    if n % root != 0:
        raise ValueError(f"sqrt(P)={root} must divide n={n}")
    return n // root
