"""Communication lower bounds and model predictions.

The quantitative skeleton of the paper:

``repro.bounds.matmul``
    Theorem 2 / Corollary 2.1 (the ITT04 matmul bounds, with their
    explicit constants) and Theorem 3 (the FLPR99 recursive-matmul
    bandwidth, all four size regimes).

``repro.bounds.sequential``
    Corollary 2.3 (two-level Cholesky bounds) and the per-algorithm
    Table 1 predictions the benches compare measurements against.

``repro.bounds.parallel``
    Corollary 2.4 (2D parallel bounds) and the ScaLAPACK critical-path
    predictions of §3.3.1 (Table 2), exact in n, b, P.

``repro.bounds.multilevel``
    Corollary 3.2 (per-level hierarchy bounds).
"""

from repro.bounds.matmul import (
    matmul_bandwidth_lower_bound,
    matmul_latency_lower_bound,
    rmatmul_bandwidth_theta,
)
from repro.bounds.sequential import (
    cholesky_bandwidth_lower_bound,
    cholesky_latency_lower_bound,
    table1_predictions,
)
from repro.bounds.parallel import (
    parallel_bandwidth_lower_bound,
    parallel_flops_lower_bound,
    parallel_latency_lower_bound,
    scalapack_messages,
    scalapack_words,
)
from repro.bounds.multilevel import multilevel_bounds
from repro.bounds.pebble import (
    analyze_trace,
    segment_capacity,
    segment_lower_bound,
    triple_count,
)

__all__ = [
    "analyze_trace",
    "segment_capacity",
    "segment_lower_bound",
    "triple_count",
    "matmul_bandwidth_lower_bound",
    "matmul_latency_lower_bound",
    "rmatmul_bandwidth_theta",
    "cholesky_bandwidth_lower_bound",
    "cholesky_latency_lower_bound",
    "table1_predictions",
    "parallel_bandwidth_lower_bound",
    "parallel_latency_lower_bound",
    "parallel_flops_lower_bound",
    "scalapack_messages",
    "scalapack_words",
    "multilevel_bounds",
]
