"""Matrix-multiplication communication bounds (Theorems 2 and 3).

Theorem 2 ([ITT04]): any classical multiplication of ``n×m`` by
``m×r`` on P processors with local memory M moves, on some processor,
at least

    nmr / (2·sqrt(2)·P·sqrt(M)) − M          words,

and by the message-size argument (Corollary 2.1) at least

    nmr / (2·sqrt(2)·P·M^{3/2}) − 1          messages.

Theorem 3 ([FLPR99]): the recursive multiplication's bandwidth is

    Θ(nmr/sqrt(M) + nm + mr + nr)

with four regimes depending on which dimensions exceed Θ(sqrt(M)).
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def matmul_bandwidth_lower_bound(
    n: int, m: int | None = None, r: int | None = None,
    *, M: int, P: int = 1,
) -> float:
    """Theorem 2's word lower bound (can be ≤ 0 for tiny problems).

    ``m`` and ``r`` default to ``n`` (square multiplication).
    """
    m = n if m is None else m
    r = n if r is None else r
    check_positive_int("M", M)
    check_positive_int("P", P)
    return n * m * r / (2.0 * math.sqrt(2.0) * P * math.sqrt(M)) - M


def matmul_latency_lower_bound(
    n: int, m: int | None = None, r: int | None = None,
    *, M: int, P: int = 1,
) -> float:
    """Corollary 2.1's message lower bound (can be ≤ 0 for tiny problems)."""
    m = n if m is None else m
    r = n if r is None else r
    check_positive_int("M", M)
    check_positive_int("P", P)
    return n * m * r / (2.0 * math.sqrt(2.0) * P * M**1.5) - 1.0


def rmatmul_bandwidth_theta(m: int, n: int, r: int, M: int) -> float:
    """The Θ-form of Theorem 3 evaluated without hidden constants:
    ``mnr/sqrt(M) + mn + nr + mr``.

    Useful as the reference curve for the E5 bench; measurements
    should track this within a constant factor in all four regimes.
    """
    check_positive_int("M", M)
    return m * n * r / math.sqrt(M) + m * n + n * r + m * r


def theorem3_regime(m: int, n: int, r: int, M: int, alpha: float = 1.0) -> int:
    """Which of Theorem 3's four cases (I–IV) a size triple falls in.

    ``alpha`` is the proof's fitting constant: a dimension is 'large'
    when it exceeds ``alpha·sqrt(M)``.  Returns 1..4 = number the
    paper's proof uses (I: all large … IV: all small).
    """
    t = alpha * math.sqrt(M)
    large = sum(d > t for d in (m, n, r))
    return {3: 1, 2: 2, 1: 3, 0: 4}[large]
