"""Sequential Cholesky bounds and Table 1 predictions.

Corollary 2.3: with fast memory M,

    bandwidth = Ω(n³ / sqrt(M)),    latency = Ω(n³ / M^{3/2}).

The reduction behind it embeds an (n/3)-sized multiplication, so the
*explicit-constant* bound exported here is Theorem 2's bound evaluated
at n/3 — the honest number Algorithm 1 actually certifies, used by the
reduction benches.

``table1_predictions`` evaluates every row of Table 1 (each
algorithm × storage class) as a concrete reference value at given
(n, M), so the harness can print measured/predicted ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.matmul import (
    matmul_bandwidth_lower_bound,
    matmul_latency_lower_bound,
)
from repro.util.validation import check_positive_int


def cholesky_bandwidth_lower_bound(n: int, M: int) -> float:
    """Ω-reference for words: ``n³ / sqrt(M)`` (Corollary 2.3)."""
    check_positive_int("n", n)
    check_positive_int("M", M)
    return n**3 / math.sqrt(M)


def cholesky_latency_lower_bound(n: int, M: int) -> float:
    """Ω-reference for messages: ``n³ / M^{3/2}`` (Corollary 2.3)."""
    check_positive_int("n", n)
    check_positive_int("M", M)
    return n**3 / M**1.5


def cholesky_bandwidth_certified(n: int, M: int) -> float:
    """The constant-explicit bound Algorithm 1 certifies: Theorem 2's
    word bound for an (n/3)-sized multiplication, minus the O(n²)
    set-up cost of constructing T' and extracting L₃₂ᵀ."""
    k = n // 3
    if k < 1:
        return 0.0
    setup = 19 * (k * k)  # 18k² construction + k² extraction (Cor. 2.3)
    return matmul_bandwidth_lower_bound(k, M=M) - setup


def cholesky_latency_certified(n: int, M: int) -> float:
    """Message analogue of :func:`cholesky_bandwidth_certified`."""
    k = n // 3
    if k < 1:
        return 0.0
    return matmul_latency_lower_bound(k, M=M)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: an algorithm on a storage class."""

    algorithm: str
    storage: str
    bandwidth: float  # predicted words (Θ/O-form evaluated, no constants)
    latency: float  # predicted messages
    cache_oblivious: bool


def table1_predictions(n: int, M: int) -> list[Table1Row]:
    """Evaluate every Table 1 row's Θ/O-form at concrete (n, M).

    Values carry no hidden constants — they are the reference curves
    the measured counts are ratioed against in the T1 bench; the
    paper's claim is that each measurement/prediction ratio stays
    bounded as (n, M) sweep.
    """
    check_positive_int("n", n)
    check_positive_int("M", M)
    rootM = math.sqrt(M)
    log2n = math.log2(n) if n > 1 else 1.0
    rows = [
        Table1Row("lower-bound", "any", n**3 / rootM, n**3 / M**1.5, True),
        Table1Row("naive-left", "column-major", n**3 / 6, n**2 / 2, True),
        Table1Row("naive-right", "column-major", n**3 / 3, n**2, True),
        Table1Row("lapack", "column-major", n**3 / rootM, n**3 / M, False),
        Table1Row(
            "lapack", "blocked", n**3 / rootM, n**3 / M**1.5, False
        ),
        Table1Row(
            "toledo",
            "column-major",
            n**3 / rootM + n**2 * log2n,
            n**3 / M,
            True,
        ),
        Table1Row(
            "toledo",
            "morton",
            n**3 / rootM + n**2 * log2n,
            n**2,
            True,
        ),
        Table1Row(
            "square-recursive",
            "recursive-packed-hybrid",
            n**3 / rootM,
            n**3 / M,
            True,
        ),
        Table1Row(
            "square-recursive", "column-major", n**3 / rootM, n**3 / M, True
        ),
        Table1Row(
            "square-recursive", "morton", n**3 / rootM, n**3 / M**1.5, True
        ),
    ]
    return rows
