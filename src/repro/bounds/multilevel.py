"""Multi-level hierarchy bounds (Corollary 3.2).

For levels ``M_1 < ... < M_d``, the two-level argument applies to
every boundary independently: traffic across the boundary above level
``i`` obeys the two-level bounds with ``M = M_i``.  This module
evaluates those per-level references, optionally weighted by per-level
inverse bandwidths β_i and latencies α_i to produce the cost sums of
equations (11)–(12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class LevelBound:
    """Lower-bound references for one hierarchy boundary."""

    capacity: int
    bandwidth: float  # Ω(n³/√M_i − M_i), clamped at 0
    latency: float  # Ω(n³/M_i^{3/2})


def multilevel_bounds(n: int, capacities: Sequence[int]) -> list[LevelBound]:
    """Per-level lower-bound references of Corollary 3.2."""
    check_positive_int("n", n)
    out = []
    for M in capacities:
        check_positive_int("capacity", M)
        out.append(
            LevelBound(
                capacity=M,
                bandwidth=max(0.0, n**3 / math.sqrt(M) - M),
                latency=n**3 / M**1.5,
            )
        )
    return out


def weighted_bandwidth_cost(
    n: int, capacities: Sequence[int], betas: Sequence[float]
) -> float:
    """Equation (11): Σ β_i · (n³/√M_i − M_i), clamped at 0 per level."""
    bounds = multilevel_bounds(n, capacities)
    if len(betas) != len(bounds):
        raise ValueError("one β per level required")
    return sum(b * lb.bandwidth for b, lb in zip(betas, bounds))


def weighted_latency_cost(
    n: int, capacities: Sequence[int], alphas: Sequence[float]
) -> float:
    """Equation (12): Σ α_i · n³/M_i^{3/2}."""
    bounds = multilevel_bounds(n, capacities)
    if len(alphas) != len(bounds):
        raise ValueError("one α per level required")
    return sum(a * lb.latency for a, lb in zip(alphas, bounds))
