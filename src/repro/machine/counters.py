"""Communication counters and memory-level bookkeeping.

Terminology follows the paper exactly:

* **bandwidth** (a count, not a rate): total number of *words* moved
  between a pair of adjacent memory levels;
* **latency** (a count): total number of *messages* moved, where a
  message is a bundle of consecutively stored words of size at most
  the receiving memory's capacity.

Reads (slow → fast) and writes (fast → slow) are tracked separately
because several of the paper's exact counts (e.g. the naïve
algorithms in §3.1.4–3.1.5) distinguish them; ``words`` and
``messages`` report the totals used in Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CommCounters:
    """Mutable word/message counters for one memory boundary."""

    words_read: int = 0
    words_written: int = 0
    messages_read: int = 0
    messages_written: int = 0

    @property
    def words(self) -> int:
        """Total bandwidth cost (read + write), in words."""
        return self.words_read + self.words_written

    @property
    def messages(self) -> int:
        """Total latency cost (read + write), in messages."""
        return self.messages_read + self.messages_written

    def add_read(self, words: int, messages: int) -> None:
        """Charge a slow-to-fast transfer of ``words`` in ``messages``."""
        if words < 0 or messages < 0:
            raise ValueError("counter increments must be non-negative")
        self.words_read += words
        self.messages_read += messages

    def add_write(self, words: int, messages: int) -> None:
        """Charge a fast-to-slow transfer of ``words`` in ``messages``."""
        if words < 0 or messages < 0:
            raise ValueError("counter increments must be non-negative")
        self.words_written += words
        self.messages_written += messages

    def add_batch(
        self,
        read_words: int,
        read_messages: int,
        write_words: int,
        write_messages: int,
    ) -> None:
        """Charge a whole transfer batch's totals in one call.

        Equivalent to one :meth:`add_read` plus one :meth:`add_write`;
        exists so the batched fast path charges a batch of any size
        with O(1) counter work.
        """
        if min(read_words, read_messages, write_words, write_messages) < 0:
            raise ValueError("counter increments must be non-negative")
        self.words_read += read_words
        self.messages_read += read_messages
        self.words_written += write_words
        self.messages_written += write_messages

    def merge(self, other: "CommCounters") -> None:
        """Accumulate another counter set into this one."""
        self.words_read += other.words_read
        self.words_written += other.words_written
        self.messages_read += other.messages_read
        self.messages_written += other.messages_written

    def snapshot(self) -> "CommCounters":
        """An independent copy (used by benches to diff phases)."""
        return CommCounters(
            self.words_read,
            self.words_written,
            self.messages_read,
            self.messages_written,
        )

    def __sub__(self, other: "CommCounters") -> "CommCounters":
        return CommCounters(
            self.words_read - other.words_read,
            self.words_written - other.words_written,
            self.messages_read - other.messages_read,
            self.messages_written - other.messages_written,
        )


@dataclass
class MemoryLevel:
    """One fast-memory level of the hierarchy.

    ``capacity`` is the level's size M in words.  ``counters`` counts
    the traffic crossing the boundary between this level and the next
    slower one.  ``peak_resident`` records the largest explicit
    working set the algorithm ever held, so benches can report
    capacity violations (the LAPACK tuning dilemma of §3.2.2) instead
    of silently under-counting.
    """

    capacity: int
    name: str = ""
    counters: CommCounters = field(default_factory=CommCounters)
    peak_resident: int = 0
    fitted_scope_depth: int | None = None  # internal: ideal-cache cutoff marker

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"level capacity must be >= 1, got {self.capacity}")
        if not self.name:
            self.name = f"M={self.capacity}"

    @property
    def words(self) -> int:
        return self.counters.words

    @property
    def messages(self) -> int:
        return self.counters.messages

    @property
    def capacity_violated(self) -> bool:
        """Whether the explicit working set ever exceeded this level."""
        return self.peak_resident > self.capacity

    def note_resident(self, words: int) -> None:
        """Record a working-set size (tracks the peak)."""
        if words > self.peak_resident:
            self.peak_resident = words
