"""Memory-model substrate: the machines on which algorithms are counted.

The paper measures algorithms in three machine models; this package
implements all of them as instrumented simulators:

``repro.machine.core``
    The sequential two-level DAM machine (``SequentialMachine``) and
    the d-level hierarchical machine (``HierarchicalMachine``).  Both
    count *words* (bandwidth) and *messages* (latency; a message is a
    maximal contiguous run of slow-memory addresses, capped at the
    fast-memory size), enforce fast-memory capacity, and support
    ideal-cache *scopes* for charging cache-oblivious recursions at
    the recursion frontier where a subproblem first fits in a level.

``repro.machine.lru``
    An element-granularity fully associative LRU cache simulator used
    to cross-validate the explicit machine on small instances.

``repro.machine.stack_distance``
    LRU stack-distance analysis: one pass over an address trace yields
    the miss count for *every* capacity simultaneously, which is how
    the multilevel cross-validation avoids re-simulating per level.

``repro.machine.tracing``
    Optional event recording (every transfer and scope) for debugging
    and for the layout/figure reports.
"""

from repro.machine.counters import CommCounters, MemoryLevel
from repro.machine.core import (
    CapacityError,
    HierarchicalMachine,
    ModelError,
    SequentialMachine,
)
from repro.machine.lru import LRUCache
from repro.machine.stack_distance import StackDistanceAnalyzer
from repro.machine.tracing import (
    BatchEvent,
    MachineTrace,
    ReadEvent,
    ScopeEvent,
    TraceOverflow,
    WriteEvent,
)

__all__ = [
    "CommCounters",
    "MemoryLevel",
    "SequentialMachine",
    "HierarchicalMachine",
    "CapacityError",
    "ModelError",
    "LRUCache",
    "StackDistanceAnalyzer",
    "MachineTrace",
    "ReadEvent",
    "WriteEvent",
    "ScopeEvent",
    "BatchEvent",
    "TraceOverflow",
]
