"""LRU stack-distance analysis.

For a fully associative LRU cache, an access hits in a cache of
capacity M exactly when its *stack distance* — the number of distinct
addresses touched since the previous access to the same address — is
less than M.  One pass over a trace therefore yields the miss count
for **every** capacity simultaneously, which is how the multilevel
cross-validation (Corollary 3.2 experiments) checks all hierarchy
levels from a single replay.

The classic Bennett–Kruskal / Olken algorithm is used: keep the time
of each address's previous access, and a Fenwick (binary indexed)
tree over time slots marking which slots are the *most recent* access
to their address; the stack distance is then a suffix sum.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List


class _Fenwick:
    """Fenwick tree over ``n`` slots supporting point update / prefix sum."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots ``[0, i)``."""
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi)``."""
        return self.prefix(hi) - self.prefix(lo)


class StackDistanceAnalyzer:
    """Computes the stack-distance histogram of an address trace.

    Distances are recorded per access; cold (first-touch) accesses are
    counted separately as compulsory misses.
    """

    def __init__(self) -> None:
        self.distances: List[int] = []
        self.cold_misses: int = 0

    def analyze(self, addresses: Iterable[int]) -> "StackDistanceAnalyzer":
        """Process a trace (any iterable of integer addresses)."""
        trace = list(addresses)
        n = len(trace)
        tree = _Fenwick(n)
        last_seen: Dict[int, int] = {}
        for t, addr in enumerate(trace):
            prev = last_seen.get(addr)
            if prev is None:
                self.cold_misses += 1
            else:
                # distinct addresses touched strictly after prev:
                # exactly the "most recent" markers in (prev, t).
                self.distances.append(tree.range_sum(prev + 1, t))
                tree.add(prev, -1)
            tree.add(t, +1)
            last_seen[addr] = t
        return self

    @property
    def accesses(self) -> int:
        return self.cold_misses + len(self.distances)

    def misses(self, capacity: int) -> int:
        """Miss count for an LRU cache of the given capacity.

        An access with stack distance ``d`` hits iff ``d < capacity``;
        cold accesses always miss.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not hasattr(self, "_sorted"):
            self._sorted = sorted(self.distances)
        # number of recorded distances >= capacity
        idx = bisect_right(self._sorted, capacity - 1)
        return self.cold_misses + (len(self._sorted) - idx)

    def miss_curve(self, capacities: Iterable[int]) -> Dict[int, int]:
        """Miss counts for several capacities from the one histogram."""
        return {m: self.misses(m) for m in capacities}
