"""LRU stack-distance analysis.

For a fully associative LRU cache, an access hits in a cache of
capacity M exactly when its *stack distance* — the number of distinct
addresses touched since the previous access to the same address — is
less than M.  One pass over a trace therefore yields the miss count
for **every** capacity simultaneously, which is how the multilevel
cross-validation (Corollary 3.2 experiments) checks all hierarchy
levels from a single replay.

The classic Bennett–Kruskal / Olken algorithm is used: keep the time
of each address's previous access, and a Fenwick (binary indexed)
tree over time slots marking which slots are the *most recent* access
to their address; the stack distance is then a suffix sum.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np


class _Fenwick:
    """Fenwick tree over ``n`` slots supporting point update / prefix sum."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots ``[0, i)``."""
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``[lo, hi)``."""
        return self.prefix(hi) - self.prefix(lo)


class StackDistanceAnalyzer:
    """Computes the stack-distance histogram of an address trace.

    Distances are recorded per access; cold (first-touch) accesses are
    counted separately as compulsory misses.
    """

    def __init__(self) -> None:
        self.distances: List[int] = []
        self.cold_misses: int = 0
        self._sorted: "np.ndarray | None" = None

    def analyze(self, addresses: Iterable[int]) -> "StackDistanceAnalyzer":
        """Process a trace (any iterable of integer addresses)."""
        trace = list(addresses)
        n = len(trace)
        tree = _Fenwick(n)
        last_seen: Dict[int, int] = {}
        for t, addr in enumerate(trace):
            prev = last_seen.get(addr)
            if prev is None:
                self.cold_misses += 1
            else:
                # distinct addresses touched strictly after prev:
                # exactly the "most recent" markers in (prev, t).
                self.distances.append(tree.range_sum(prev + 1, t))
                tree.add(prev, -1)
            tree.add(t, +1)
            last_seen[addr] = t
        self._sorted = None
        return self

    def analyze_runs(
        self, runs: Iterable[tuple[int, int]]
    ) -> "StackDistanceAnalyzer":
        """Process ``(start, stop)`` address runs — bulk form of ``analyze``.

        The runs are expanded to the equivalent flat address stream
        (each run touched in ascending order) in one NumPy pass, so
        callers holding interval batches never build per-word Python
        lists themselves.
        """
        parts = [
            np.arange(start, stop, dtype=np.int64)
            for start, stop in runs
            if stop > start
        ]
        if not parts:
            return self
        return self.analyze(np.concatenate(parts).tolist())

    def analyze_schedule(
        self, schedule, level: int = 0
    ) -> "StackDistanceAnalyzer":
        """Process a compiled :class:`~repro.schedule.TransferSchedule`.

        Feeds the schedule's runs charged at hierarchy ``level``, in
        recorded order, through :meth:`analyze_runs` — so one captured
        run yields its whole miss curve without re-walking the
        algorithm.
        """
        return self.analyze_runs(
            (start, stop) for start, stop, _w in schedule.level_runs(level)
        )

    @property
    def accesses(self) -> int:
        return self.cold_misses + len(self.distances)

    def _sorted_distances(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self.distances, dtype=np.int64))
        return self._sorted

    def misses(self, capacity: int) -> int:
        """Miss count for an LRU cache of the given capacity.

        An access with stack distance ``d`` hits iff ``d < capacity``;
        cold accesses always miss.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        arr = self._sorted_distances()
        # number of recorded distances >= capacity
        idx = int(np.searchsorted(arr, capacity, side="left"))
        return self.cold_misses + (len(arr) - idx)

    def miss_curve(self, capacities: Iterable[int]) -> Dict[int, int]:
        """Miss counts for several capacities from the one histogram.

        One vectorized ``searchsorted`` over the sorted histogram
        serves every capacity at once.
        """
        caps = list(capacities)
        for m in caps:
            if m < 1:
                raise ValueError(f"capacity must be >= 1, got {m}")
        arr = self._sorted_distances()
        idx = np.searchsorted(arr, np.asarray(caps, dtype=np.int64), "left")
        return {
            m: self.cold_misses + int(len(arr) - i) for m, i in zip(caps, idx)
        }
