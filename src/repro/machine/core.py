"""The sequential DAM machine and its multi-level generalization.

Model (paper, Section 1 and §3.2):

* Slow memory holds the matrix; fast memory holds ``M`` words.
* Communication = transferring words between the two.  *Bandwidth* is
  the number of words moved; *latency* is the number of messages,
  where one message carries a maximal run of consecutively stored
  words, at most ``M`` of them.
* In the hierarchical model there are levels ``M_1 < M_2 < ... < M_d``
  and an optimal algorithm must minimize the traffic across *every*
  adjacent pair simultaneously (Corollary 3.2).

Two charging disciplines coexist, mirroring the paper's analyses:

**Explicit transfers** (:meth:`HierarchicalMachine.read` /
:meth:`~HierarchicalMachine.write`) model algorithms that decide their
own data movement — the naïve algorithms, LAPACK's blocked POTRF, and
the per-column base cases of Toledo's recursion.  An explicit transfer
crosses the *entire* hierarchy (write-through), which is exactly how
the paper charges Toledo's leaf I/O at every level (the recurrence of
Claim 3.1 charges ``2m`` per leaf regardless of ``M``).  The machine
tracks the explicitly resident working set and enforces the fast
memory capacity, so an algorithm that claims to be blocked for size
``M`` is *checked*, not trusted.

**Ideal-cache scopes** (:meth:`HierarchicalMachine.scope`) model
cache-oblivious recursions (Algorithms 5–8).  A scope declares the
footprint of a recursive subproblem.  For each level, at the moment a
scope's footprint first fits in that level (and no enclosing scope
did), the scope's inputs are charged as reads and — when the scope
exits — its outputs as writes, both at that level only.  This is
precisely the paper's accounting: the recurrence base cases
("if n ≤ sqrt(M/3)") charge the subproblem's operands once, and
everything beneath the frontier is free at that level.

Numerical work is real: the algorithms compute actual factorizations
with NumPy once a subproblem fits the smallest level, so every
simulated run is verified against a reference Cholesky.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.counters import CommCounters, MemoryLevel
from repro.machine.tracing import (
    BatchEvent,
    MachineTrace,
    ReadEvent,
    ScopeEvent,
    WriteEvent,
)
from repro.observability.spans import NULL_PROFILER
from repro.util.fastpath import default_batched, fastpath_enabled
from repro.util.intervals import IntervalSet, RunBatch
from repro.util.validation import check_positive_int


class ModelError(RuntimeError):
    """An algorithm was run outside the regime its model supports."""


class CapacityError(ModelError):
    """The explicit working set exceeded the fast memory capacity."""


class _Scope:
    """Handle returned by :meth:`HierarchicalMachine.scope`.

    ``fits`` tells the algorithm whether the subproblem footprint fits
    the *fastest* level; once it does, no deeper recursion can incur
    any further charge at any level, so the algorithm may (and, for
    simulation speed, should) compute the subproblem directly with
    NumPy instead of recursing to scalar base cases.
    """

    __slots__ = ("fits", "depth", "_write_levels", "_mask")

    def __init__(self, fits: bool, depth: int) -> None:
        self.fits = fits
        self.depth = depth
        self._write_levels: list[MemoryLevel] = []
        self._mask: int = 0  # bitmask of newly-fitted levels (recorder)


class HierarchicalMachine:
    """A machine with ``d`` fast-memory levels above slow memory.

    Parameters
    ----------
    capacities:
        Level sizes in words, strictly increasing
        (``M_1 < M_2 < ... < M_d``).  A single entry gives the
        two-level DAM machine of Section 1.
    enforce_capacity:
        If true (default), exceeding the fastest level's capacity with
        explicitly resident data raises :class:`CapacityError`; if
        false, the violation is recorded on the affected levels
        (``level.capacity_violated``) and execution continues.  The
        multilevel benches use ``False`` to *demonstrate* LAPACK's
        tuning dilemma (§3.2.2) rather than crash on it.
    record_trace:
        If true, every transfer and scope is appended to
        :attr:`trace` for inspection.
    trace_max_events:
        Optional cap on recorded trace events: past it the trace
        stops growing and counts dropped events behind an explicit
        overflow marker (see :class:`~repro.machine.tracing.MachineTrace`).
        ``None`` (default) keeps the historical unbounded behaviour.
    batched:
        Whether algorithms should take the batched charging path
        (:meth:`charge_intervals` and friends) instead of per-transfer
        ``read``/``write`` calls.  The two paths are count-identical —
        the golden equality tests assert it — so this is purely a
        simulator-speed switch.  ``None`` (default) resolves from the
        environment: on unless ``REPRO_SLOW_PATH=1``.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        *,
        enforce_capacity: bool = True,
        record_trace: bool = False,
        trace_max_events: int | None = None,
        batched: bool | None = None,
    ) -> None:
        caps = [check_positive_int("capacity", c) for c in capacities]
        if not caps:
            raise ValueError("need at least one fast-memory level")
        if any(b <= a for a, b in zip(caps, caps[1:])):
            raise ValueError(
                f"capacities must be strictly increasing, got {caps}"
            )
        self.levels: tuple[MemoryLevel, ...] = tuple(
            MemoryLevel(capacity=c, name=f"L{i + 1}(M={c})")
            for i, c in enumerate(caps)
        )
        self.enforce_capacity = bool(enforce_capacity)
        self.flops: int = 0
        self.resident: IntervalSet = IntervalSet()
        self.trace: MachineTrace | None = (
            MachineTrace(max_events=trace_max_events) if record_trace else None
        )
        #: Phase-span recorder; the shared no-op unless
        #: :func:`repro.observability.observe` attaches a live one.
        self.profiler = NULL_PROFILER
        #: Live fault oracle, or ``None`` for the fault-free machine.
        self.faults: FaultInjector | None = None
        #: Live budget enforcer (:class:`repro.serving.budget.BudgetGuard`),
        #: or ``None`` for the unmetered machine.  The guard only *reads*
        #: the counters, so counts are bit-identical either way.
        self.guard = None
        #: Whether algorithms should use the batched charging APIs.
        self.batched: bool = default_batched() if batched is None else bool(batched)
        #: How many transfer batches took the O(#intervals) fast path.
        self.batch_hits: int = 0
        #: Live :class:`~repro.schedule.compiled.ScheduleRecorder`
        #: capturing this run into a replayable schedule, or ``None``.
        #: Attached by :func:`repro.schedule.compiled_session` around
        #: eligible runs; pure observation, counts are unchanged.
        self.recorder = None
        #: Live :class:`~repro.abft.ChecksumGuardian` protecting the
        #: current run, or ``None`` when ABFT is off.  Algorithms probe
        #: this attribute at their block boundaries; with it unset the
        #: probe is a single attribute test and counts are bit-identical
        #: to a machine that never heard of ABFT.
        self.abft = None
        self._read_seq: int = 0
        self._scope_depth: int = 0
        self._next_base: int = 0

    def attach_faults(
        self, plan: "FaultPlan | FaultInjector | None"
    ) -> FaultInjector | None:
        """Arm the machine with transient read faults from ``plan``.

        Only the plan's ``read_fault`` probability applies here (the
        rest describes networks); a plan that schedules no read faults
        leaves the machine on its zero-overhead path with counters
        bit-identical to a machine that never heard of faults.
        """
        if plan is None:
            self.faults = None
            return None
        injector = plan if isinstance(plan, FaultInjector) else None
        if injector is None:
            if plan.read_fault <= 0.0:
                self.faults = None
                return None
            injector = FaultInjector(plan)
        elif injector.plan.read_fault <= 0.0:
            self.faults = None
            return None
        self.faults = injector
        return injector

    def attach_guard(self, guard) -> None:
        """Arm the machine with a live budget enforcer (or disarm with None).

        The guard polls the fastest level's counters at every charging
        chokepoint and raises
        :class:`~repro.serving.budget.BudgetExceeded` the moment a cap
        is crossed.  With no guard attached the chokepoints cost a
        single pointer test and the counters stay bit-identical.
        """
        self.guard = guard

    # -- convenience accessors (fastest level) -------------------------

    @property
    def fast(self) -> MemoryLevel:
        """The fastest (smallest) level."""
        return self.levels[0]

    @property
    def M(self) -> int:
        """Fast memory size of the fastest level, in words."""
        return self.levels[0].capacity

    @property
    def words(self) -> int:
        """Words moved across the fastest boundary (Table 1 'Bandwidth')."""
        return self.levels[0].words

    @property
    def messages(self) -> int:
        """Messages across the fastest boundary (Table 1 'Latency')."""
        return self.levels[0].messages

    @property
    def counters(self) -> CommCounters:
        return self.levels[0].counters

    def snapshot(self) -> list[CommCounters]:
        """Per-level counter copies, for phase diffing in benches."""
        return [lvl.counters.snapshot() for lvl in self.levels]

    # -- explicit transfers ---------------------------------------------

    def read(self, ivs: IntervalSet) -> None:
        """Explicitly transfer ``ivs`` from slow memory into fast memory.

        Charges every level (write-through hierarchy), makes the
        addresses resident, and checks capacity.  Re-reading resident
        addresses still charges: the paper's explicit algorithms are
        counted by the transfers they *issue*.
        """
        if ivs.is_empty():
            return
        words = ivs.words
        for level in self.levels:
            level.counters.add_read(words, ivs.messages(cap=level.capacity))
        self.resident = self.resident | ivs
        self._note_resident()
        if self.recorder is not None:
            self.recorder.record_set(ivs, False)
        if self.trace is not None:
            self.trace.append(ReadEvent(ivs))
        if self.faults is not None:
            # transient read fault (ECC-detected garbage): the transfer
            # must be re-issued, and the retry is charged at every
            # level, exactly like the original
            seq = self._read_seq
            self._read_seq += 1
            if self.faults.read_faulted(seq):
                for level in self.levels:
                    level.counters.add_read(
                        words, ivs.messages(cap=level.capacity)
                    )
                self.faults.stats.read_retry_words += words
                self.faults.stats.read_retry_messages += ivs.messages(
                    cap=self.fast.capacity
                )
                if self.recorder is not None:
                    self.recorder.record_set(ivs, False)
                    self.recorder.record_fault(seq)
                if self.trace is not None:
                    self.trace.append(ReadEvent(ivs))
        if self.guard is not None:
            self.guard.check_machine(self)

    def write(self, ivs: IntervalSet) -> None:
        """Explicitly transfer ``ivs`` from fast memory back to slow memory.

        The addresses must be resident (an algorithm can only write
        back data it holds); they stay resident afterwards.
        """
        if ivs.is_empty():
            return
        if self.enforce_capacity and not ivs.issubset(self.resident):
            missing = ivs - self.resident
            raise CapacityError(
                f"write of non-resident addresses {missing!r}; "
                "explicit algorithms must read (or allocate) before writing"
            )
        self._charge_write(ivs)

    def _charge_write(self, ivs: IntervalSet) -> None:
        """Charge a write without the residency check (batch internals)."""
        words = ivs.words
        for level in self.levels:
            level.counters.add_write(words, ivs.messages(cap=level.capacity))
        if self.recorder is not None:
            self.recorder.record_set(ivs, True)
        if self.trace is not None:
            self.trace.append(WriteEvent(ivs))
        if self.guard is not None:
            self.guard.check_machine(self)

    # -- batched transfers ------------------------------------------------

    def charge_intervals(
        self, batch: RunBatch, *, peak_extra: int | None = None
    ) -> None:
        """Charge an ordered sequence of explicit transfers at once.

        ``batch`` holds one pre-merged interval set per transfer, in
        the exact order the element-wise path would have issued them;
        words and messages are charged per level with O(#intervals)
        array reductions, so the cost no longer scales with the number
        of transfers, let alone words.  Counters, trace expansion and
        fault schedules are identical to issuing the per-set
        ``read``/``write`` calls one by one — that identity is what the
        golden tests pin down.

        Batched transfers are *transient*: :attr:`resident` is left
        untouched, mirroring element-wise loops that release every set
        they stream.  ``peak_extra`` is the largest number of batch
        words the element-wise loop would have held resident at once
        (defaults to the largest single set, the
        one-set-at-a-time streaming pattern); it feeds the same
        peak-residency tracking and capacity enforcement the
        element-wise path performs.  Writes in a batch must cover only
        addresses read earlier in the same batch or already resident —
        the streaming discipline the element-wise twin enforces
        per-write.

        With a fault injector attached the batch falls back to per-set
        transfers so the read-sequence numbering (and therefore the
        realized fault schedule) stays identical to the element-wise
        path.
        """
        if batch.nsets == 0:
            return
        if peak_extra is None:
            peak_extra = batch.max_set_words()
        if self.faults is not None:
            for ivs, is_write in batch.items():
                if is_write:
                    self._charge_write(ivs)
                else:
                    self.read(ivs)
                    self.resident = self.resident - ivs
            self._note_batch_peak(int(peak_extra))
            return
        self.batch_hits += 1
        read_words, write_words = batch.direction_words()
        for level in self.levels:
            rm, wm = batch.direction_messages(cap=level.capacity)
            level.counters.add_batch(read_words, rm, write_words, wm)
        self._note_batch_peak(int(peak_extra))
        if self.recorder is not None:
            self.recorder.record_batch(batch)
        if self.trace is not None:
            self.trace.append(BatchEvent(batch))
        if self.guard is not None:
            self.guard.check_machine(self)

    def read_batch(
        self, batch: RunBatch, *, peak_extra: int | None = None
    ) -> None:
        """Charge every transfer of ``batch`` as a read (slow → fast)."""
        if batch.is_write.any():
            batch = batch.with_writes(False)
        self.charge_intervals(batch, peak_extra=peak_extra)

    def write_batch(
        self, batch: RunBatch, *, peak_extra: int | None = None
    ) -> None:
        """Charge every transfer of ``batch`` as a write (fast → slow)."""
        if not batch.is_write.all():
            batch = batch.with_writes(True)
        self.charge_intervals(batch, peak_extra=peak_extra)

    def _note_batch_peak(self, extra: int) -> None:
        """Track (and enforce) the transient peak of a batched charge."""
        words = self.resident.words + extra
        for level in self.levels:
            level.note_resident(words)
        if self.enforce_capacity and words > self.fast.capacity:
            raise CapacityError(
                f"batched working set of {words} words exceeds fast memory "
                f"capacity M={self.fast.capacity}"
            )

    def allocate(self, ivs: IntervalSet) -> None:
        """Make addresses resident *without* a read (freshly computed data).

        Used when an algorithm creates output in fast memory (e.g. a
        factor block it is about to write back) rather than loading it.
        Counts against capacity but moves no words.
        """
        if ivs.is_empty():
            return
        self.resident = self.resident | ivs
        self._note_resident()

    def release(self, ivs: IntervalSet) -> None:
        """Evict addresses from fast memory (no traffic for clean data).

        Dirty data must be written back with :meth:`write` *before*
        being released; the machine cannot tell dirty from clean, so
        that discipline is the algorithm's responsibility (and is
        what the paper's counts assume).
        """
        if ivs.is_empty():
            return
        self.resident = self.resident - ivs

    def release_all(self) -> None:
        """Evict everything (end of an algorithm phase)."""
        self.resident = IntervalSet()

    def _note_resident(self) -> None:
        words = self.resident.words
        for level in self.levels:
            level.note_resident(words)
        if self.enforce_capacity and words > self.fast.capacity:
            raise CapacityError(
                f"resident set of {words} words exceeds fast memory "
                f"capacity M={self.fast.capacity}"
            )

    # -- ideal-cache scopes ----------------------------------------------

    @contextmanager
    def scope(
        self,
        read_ivs: IntervalSet,
        write_ivs: IntervalSet | None = None,
        *,
        write_covered: bool = False,
    ) -> Iterator[_Scope]:
        """Declare a cache-oblivious recursive subproblem.

        Parameters
        ----------
        read_ivs:
            Addresses the subproblem consumes (its whole input
            footprint, including any accumulated-into output).
        write_ivs:
            Addresses the subproblem produces; defaults to none.
        write_covered:
            Caller's promise that ``write_ivs`` is a subset of
            ``read_ivs`` (true for every accumulate-into-output kernel,
            whose read footprint includes the output).  Skips the
            ``read | write`` union, which would be a no-op merge.
            Honored only while the count-neutral fast path is enabled,
            so ``REPRO_SLOW_PATH=1`` still exercises the full union.

        For each level whose capacity first covers the footprint here
        (ideal-cache frontier), ``read_ivs`` is charged as a read now
        and ``write_ivs`` as a write when the scope exits.  The scope
        handle's ``fits`` flag reports whether the footprint fits the
        fastest level — the signal to stop recursing and compute.
        """
        footprint = (
            read_ivs
            if write_ivs is None
            or write_ivs is read_ivs
            or (write_covered and fastpath_enabled())
            else (read_ivs | write_ivs)
        )
        fwords = footprint.words
        self._scope_depth += 1
        handle = _Scope(
            fits=fwords <= self.fast.capacity, depth=self._scope_depth
        )
        for i, level in enumerate(self.levels):
            if level.fitted_scope_depth is None and fwords <= level.capacity:
                level.fitted_scope_depth = self._scope_depth
                level.counters.add_read(
                    read_ivs.words, read_ivs.messages(cap=level.capacity)
                )
                level.note_resident(fwords)
                handle._write_levels.append(level)
                handle._mask |= 1 << i
        if self.recorder is not None and handle._mask:
            self.recorder.record_set(read_ivs, False, handle._mask)
        if self.trace is not None:
            self.trace.append(
                ScopeEvent(footprint, fitted=[l.name for l in handle._write_levels])
            )
        if self.guard is not None:
            self.guard.check_machine(self)
        try:
            yield handle
        finally:
            for level in handle._write_levels:
                if write_ivs is not None and not write_ivs.is_empty():
                    level.counters.add_write(
                        write_ivs.words, write_ivs.messages(cap=level.capacity)
                    )
                level.fitted_scope_depth = None
            if (
                self.recorder is not None
                and handle._mask
                and write_ivs is not None
                and not write_ivs.is_empty()
            ):
                self.recorder.record_set(write_ivs, True, handle._mask)
            self._scope_depth -= 1
            if self.guard is not None and handle._write_levels:
                self.guard.check_machine(self)

    def leaf_charge(
        self,
        read_ivs: IntervalSet,
        write_ivs: IntervalSet | None = None,
        *,
        write_covered: bool = False,
    ) -> bool:
        """Charge a fitting recursion leaf in one shot (batched scopes).

        The batched twin of an ``sc.fits`` scope: when the footprint
        fits the fastest level, this charges exactly what entering and
        exiting :meth:`scope` around the leaf computation would — the
        same newly-fitted levels, the same reads/writes/peaks, one
        :class:`ScopeEvent` — and returns ``True`` so the caller can
        compute the leaf directly.  When the footprint does not fit it
        charges nothing and returns ``False``; the caller falls back
        to a full :meth:`scope` (which may still charge outer levels)
        and recursion.  Counts are identical to the element-wise scope
        path either way; the golden suite pins that.  Each successful
        leaf counts one :attr:`batch_hits`.
        """
        footprint = (
            read_ivs
            if write_ivs is None
            or write_ivs is read_ivs
            or (write_covered and fastpath_enabled())
            else (read_ivs | write_ivs)
        )
        fwords = footprint.words
        if fwords > self.fast.capacity:
            return False
        self._scope_depth += 1
        try:
            fitted: list[MemoryLevel] = []
            mask = 0
            for i, level in enumerate(self.levels):
                if (
                    level.fitted_scope_depth is None
                    and fwords <= level.capacity
                ):
                    level.fitted_scope_depth = self._scope_depth
                    level.counters.add_read(
                        read_ivs.words, read_ivs.messages(cap=level.capacity)
                    )
                    level.note_resident(fwords)
                    fitted.append(level)
                    mask |= 1 << i
            self.batch_hits += 1
            if self.recorder is not None and mask:
                self.recorder.record_set(read_ivs, False, mask)
            if self.trace is not None:
                self.trace.append(
                    ScopeEvent(footprint, fitted=[l.name for l in fitted])
                )
            if self.guard is not None:
                self.guard.check_machine(self)
            write = write_ivs is not None and not write_ivs.is_empty()
            for level in fitted:
                if write:
                    level.counters.add_write(
                        write_ivs.words, write_ivs.messages(cap=level.capacity)
                    )
                level.fitted_scope_depth = None
            if self.recorder is not None and mask and write:
                self.recorder.record_set(write_ivs, True, mask)
            if self.guard is not None and fitted:
                self.guard.check_machine(self)
        finally:
            self._scope_depth -= 1
        return True

    # -- compiled replay ---------------------------------------------------

    def replay_schedule(self, schedule) -> None:
        """Fold a compiled :class:`~repro.schedule.TransferSchedule`
        into this machine in one shot.

        The bulk-charging entry point of the schedule JIT: per-level
        counter totals, peak residency, flops, batch hits, the read
        sequence and (with a matching fault plan armed) the realized
        fault schedule all land exactly as the captured run left them.
        Validation happens before any mutation — on
        :class:`~repro.schedule.ScheduleError` the machine is
        untouched.
        """
        schedule.apply(self)

    # -- address-space management ------------------------------------------

    def reserve_address_space(self, words: int) -> int:
        """Reserve a slow-memory region of ``words`` addresses.

        Returns the base address.  Matrices sharing one machine (e.g.
        the three operands of a matmul) call this so their address
        ranges — and hence their message runs — never overlap.
        """
        if words < 0:
            raise ValueError("cannot reserve a negative region")
        base = self._next_base
        self._next_base += words
        return base

    # -- arithmetic -------------------------------------------------------

    def add_flops(self, n: int) -> None:
        """Record ``n`` scalar floating-point operations (§3.1.3)."""
        if n < 0:
            raise ValueError("flop count must be non-negative")
        self.flops += n
        if self.guard is not None:
            self.guard.check_machine(self)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero all counters and evict everything (reuse between runs)."""
        for level in self.levels:
            level.counters = CommCounters()
            level.peak_resident = 0
            level.fitted_scope_depth = None
        self.flops = 0
        self.batch_hits = 0
        self.recorder = None
        self.resident = IntervalSet()
        self._scope_depth = 0
        self._read_seq = 0
        if self.faults is not None:
            # fresh injector, same plan: a reused machine replays the
            # same deterministic fault schedule a fresh one would
            self.faults = FaultInjector(self.faults.plan)
        if self.trace is not None:
            self.trace = MachineTrace(max_events=self.trace.max_events)

    def bandwidth_cost(self, betas: Sequence[float]) -> float:
        """Weighted bandwidth cost ``Σ β_i · words_i`` — the measured
        side of Corollary 3.2's Equation (11)."""
        if len(betas) != len(self.levels):
            raise ValueError(
                f"need one β per level ({len(self.levels)}), got {len(betas)}"
            )
        return sum(b * lvl.words for b, lvl in zip(betas, self.levels))

    def latency_cost(self, alphas: Sequence[float]) -> float:
        """Weighted latency cost ``Σ α_i · messages_i`` — the measured
        side of Corollary 3.2's Equation (12)."""
        if len(alphas) != len(self.levels):
            raise ValueError(
                f"need one α per level ({len(self.levels)}), got {len(alphas)}"
            )
        return sum(a * lvl.messages for a, lvl in zip(alphas, self.levels))

    def summary(self) -> dict[str, object]:
        """A plain-dict report of all counters (for benches / JSON)."""
        return {
            "flops": self.flops,
            "levels": [
                {
                    "name": lvl.name,
                    "capacity": lvl.capacity,
                    "words": lvl.words,
                    "words_read": lvl.counters.words_read,
                    "words_written": lvl.counters.words_written,
                    "messages": lvl.messages,
                    "peak_resident": lvl.peak_resident,
                    "capacity_violated": lvl.capacity_violated,
                }
                for lvl in self.levels
            ],
        }

    def __repr__(self) -> str:
        caps = ", ".join(str(l.capacity) for l in self.levels)
        return f"{type(self).__name__}([{caps}])"


class SequentialMachine(HierarchicalMachine):
    """The two-level DAM machine of Section 1 (one fast level of size M)."""

    def __init__(
        self,
        M: int,
        *,
        enforce_capacity: bool = True,
        record_trace: bool = False,
        trace_max_events: int | None = None,
        batched: bool | None = None,
    ) -> None:
        super().__init__(
            [M],
            enforce_capacity=enforce_capacity,
            record_trace=record_trace,
            trace_max_events=trace_max_events,
            batched=batched,
        )
