"""Element-granularity LRU cache simulator.

The explicit machine (`repro.machine.core`) counts the transfers an
algorithm *issues*; a real cache counts the *misses* an address
stream incurs.  For the algorithms in the paper the two agree up to
constants (that is what makes the DAM analyses meaningful), and this
module lets the test suite check that agreement on small instances:
replay an algorithm's traced address stream through a fully
associative LRU cache of capacity M and compare miss traffic against
the machine's word counters.

The simulator is deliberately simple — word-granularity lines
(B = 1, as in the paper's footnote 1), fully associative, true LRU —
because that is the model the lower bounds are stated in.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.util.validation import check_positive_int


@dataclass
class LRUStats:
    """Counters produced by an LRU replay."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def traffic_words(self) -> int:
        """Words crossing the boundary: fills (misses) + write-backs."""
        return self.misses + self.writebacks


class LRUCache:
    """Fully associative LRU cache over word addresses.

    Parameters
    ----------
    capacity:
        Number of words the cache holds (the model's M).
    write_allocate:
        Whether a write miss first fills the line (default true,
        matching a cache that must hold a word to update it).
    """

    def __init__(self, capacity: int, *, write_allocate: bool = True) -> None:
        self.capacity = check_positive_int("capacity", capacity)
        self.write_allocate = bool(write_allocate)
        self._lines: OrderedDict[int, bool] = OrderedDict()  # addr -> dirty
        self.stats = LRUStats()

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, address: int) -> bool:
        return address in self._lines

    def access(self, address: int, is_write: bool = False) -> bool:
        """Touch one word; returns ``True`` on a hit."""
        self.stats.accesses += 1
        lines = self._lines
        if address in lines:
            self.stats.hits += 1
            dirty = lines.pop(address)
            lines[address] = dirty or is_write
            return True
        self.stats.misses += 1
        if is_write and not self.write_allocate:
            # write-around: goes straight to slow memory
            self.stats.writebacks += 1
            return False
        if len(lines) >= self.capacity:
            _victim, victim_dirty = lines.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
        lines[address] = is_write
        return False

    def access_run(self, start: int, stop: int, is_write: bool = False) -> int:
        """Touch the contiguous address run ``[start, stop)`` in order.

        Exactly equivalent to calling :meth:`access` once per address
        (same final cache state, same stats); returns the hit count.
        When no run address is resident — the common case for the
        machine's batched transfers — the whole run is charged in
        aggregate instead of per word.
        """
        length = stop - start
        if length <= 0:
            return 0
        lines = self._lines
        if any(a in lines for a in range(start, stop)):
            # Resident overlap: hits reorder lines and evictions may
            # land on run members, so interleaving matters — replay
            # the exact per-address protocol.
            hits = 0
            for a in range(start, stop):
                if self.access(a, is_write):
                    hits += 1
            return hits
        stats = self.stats
        stats.accesses += length
        stats.misses += length
        if is_write and not self.write_allocate:
            stats.writebacks += length
            return 0
        evictions = len(lines) + length - self.capacity
        if evictions > 0:
            spill = evictions - len(lines)
            if spill > 0:
                # The run alone overflows the cache: every current line
                # evicts, and the first ``spill`` run members are
                # inserted then evicted by later run members in turn.
                stats.writebacks += sum(1 for d in lines.values() if d)
                if is_write:
                    stats.writebacks += spill
                lines.clear()
                start = stop - self.capacity
            else:
                for _ in range(evictions):
                    _victim, victim_dirty = lines.popitem(last=False)
                    if victim_dirty:
                        stats.writebacks += 1
        for a in range(start, stop):
            lines[a] = is_write
        return 0

    def replay(self, stream: Iterable[tuple[int, bool]]) -> LRUStats:
        """Replay an ``(address, is_write)`` stream; returns the stats."""
        for address, is_write in stream:
            self.access(address, is_write)
        return self.stats

    def replay_runs(self, runs: Iterable[tuple[int, int, bool]]) -> LRUStats:
        """Replay ``(start, stop, is_write)`` runs via :meth:`access_run`."""
        for start, stop, is_write in runs:
            self.access_run(start, stop, is_write)
        return self.stats

    def replay_schedule(self, schedule, level: int = 0) -> LRUStats:
        """Replay a compiled :class:`~repro.schedule.TransferSchedule`.

        Folds the schedule's runs charged at hierarchy ``level`` into
        this cache in their recorded order — the bulk entry point the
        schedule JIT uses, equivalent to :meth:`replay_runs` over
        :meth:`~repro.schedule.TransferSchedule.level_runs`.
        """
        return self.replay_runs(schedule.level_runs(level))

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache.

        Returns the number of write-backs performed.  Algorithms end
        with their output in slow memory, so comparisons against the
        explicit machine should flush first.
        """
        dirty = sum(1 for d in self._lines.values() if d)
        self.stats.writebacks += dirty
        self._lines.clear()
        return dirty
