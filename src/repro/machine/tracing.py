"""Event recording for machine runs.

A :class:`MachineTrace` is an append-only list of the transfers and
scopes a machine performed.  Traces exist for three reasons:

1. debugging an algorithm's communication pattern;
2. feeding the LRU cross-validation (`repro.machine.lru`) with the
   exact address stream an explicit algorithm produced;
3. rendering the quantitative counterparts of the paper's Figures
   (which slow-memory runs a layout turns a block access into).

Tracing is off by default — the counters alone are O(1) memory, while
a trace grows with the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Sequence

from repro.util.intervals import IntervalSet, RunBatch


@dataclass(frozen=True)
class ReadEvent:
    """An explicit slow→fast transfer."""

    intervals: IntervalSet

    @property
    def words(self) -> int:
        return self.intervals.words


@dataclass(frozen=True)
class WriteEvent:
    """An explicit fast→slow transfer."""

    intervals: IntervalSet

    @property
    def words(self) -> int:
        return self.intervals.words


@dataclass(frozen=True)
class ScopeEvent:
    """Entry into an ideal-cache scope (cache-oblivious subproblem)."""

    footprint: IntervalSet
    fitted: Sequence[str] = ()

    @property
    def words(self) -> int:
        return self.footprint.words


@dataclass(frozen=True)
class BatchEvent:
    """A coalesced sequence of explicit transfers (one batched charge).

    The batched fast path records one event per
    :meth:`~repro.machine.core.HierarchicalMachine.charge_intervals`
    call instead of one per transfer.  :meth:`expand` recovers the
    per-transfer :class:`ReadEvent`/:class:`WriteEvent` sequence in the
    exact order the element-wise path would have issued it, which is
    what keeps trace consumers (LRU replay, heatmaps, message-cap
    ablations) path-agnostic — :meth:`MachineTrace.transfers` expands
    batches automatically.
    """

    batch: RunBatch

    @property
    def words(self) -> int:
        return self.batch.words

    def expand(self) -> "Iterator[ReadEvent | WriteEvent]":
        """Per-transfer events, in element-wise issue order."""
        for ivs, is_write in self.batch.items():
            yield WriteEvent(ivs) if is_write else ReadEvent(ivs)


@dataclass
class TraceOverflow:
    """Marker standing in for events dropped past ``max_events``.

    Appended once, in place, when a capped trace fills up; ``dropped``
    then counts every event that would have followed.  Transfer
    iteration (:meth:`MachineTrace.transfers`) skips it, so consumers
    of the *recorded* prefix keep working — but an overflowed trace is
    no longer the complete address stream, which
    :meth:`MachineTrace.address_stream` callers (the LRU
    cross-validator) must check via :attr:`MachineTrace.dropped`.
    """

    dropped: int = 0


Event = ReadEvent | WriteEvent | ScopeEvent | BatchEvent | TraceOverflow


class MachineTrace:
    """Record of machine events, optionally capped.

    ``max_events`` bounds memory: a long run with tracing enabled
    historically grew the event list without limit.  With a cap, the
    first ``max_events`` events are kept verbatim in a bounded deque,
    then a single :class:`TraceOverflow` marker absorbs (and counts)
    the rest in constant time — no per-append scan, no growth.
    """

    __slots__ = ("events", "max_events", "_overflow", "_room")

    def __init__(
        self,
        events: "Sequence[Event] | None" = None,
        max_events: int | None = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(
                f"max_events must be >= 1 or None, got {max_events}"
            )
        self.max_events = max_events
        # +1 leaves room for the overflow marker itself
        self.events: Deque[Event] = deque(
            maxlen=None if max_events is None else max_events + 1
        )
        self._overflow: TraceOverflow | None = None
        self._room = float("inf") if max_events is None else max_events
        for ev in events or ():
            self.append(ev)

    def append(self, event: Event) -> None:
        """Record one event (or count it as dropped past the cap)."""
        if self._room > 0:
            self.events.append(event)
            self._room -= 1
            return
        if self._overflow is None:
            self._overflow = TraceOverflow()
            self.events.append(self._overflow)
        self._overflow.dropped += 1

    def clear(self) -> None:
        """Drop all recorded events (reuse the trace between phases)."""
        self.events.clear()
        self._overflow = None
        self._room = float("inf") if self.max_events is None else self.max_events

    @property
    def dropped(self) -> int:
        """How many events were dropped past ``max_events`` (0 if none)."""
        return 0 if self._overflow is None else self._overflow.dropped

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def transfers(self) -> Iterator[ReadEvent | WriteEvent]:
        """Only the explicit transfer events, in order.

        Coalesced :class:`BatchEvent` records are expanded back into
        their per-transfer events, so consumers see the same stream on
        both charging paths.
        """
        for ev in self.events:
            if isinstance(ev, (ReadEvent, WriteEvent)):
                yield ev
            elif isinstance(ev, BatchEvent):
                yield from ev.expand()

    def address_stream(self) -> Iterator[tuple[int, bool]]:
        """Flatten explicit transfers into ``(address, is_write)`` pairs.

        This is the stream the LRU cross-validator replays.  Scope
        events are skipped: scopes describe charging frontiers, not
        individual word touches.
        """
        for ev in self.transfers():
            is_write = isinstance(ev, WriteEvent)
            for addr in ev.intervals.addresses():
                yield addr, is_write

    def total_words(self) -> int:
        """Total explicit words transferred (reads + writes)."""
        return sum(ev.words for ev in self.transfers())
