"""Event recording for machine runs.

A :class:`MachineTrace` is an append-only list of the transfers and
scopes a machine performed.  Traces exist for three reasons:

1. debugging an algorithm's communication pattern;
2. feeding the LRU cross-validation (`repro.machine.lru`) with the
   exact address stream an explicit algorithm produced;
3. rendering the quantitative counterparts of the paper's Figures
   (which slow-memory runs a layout turns a block access into).

Tracing is off by default — the counters alone are O(1) memory, while
a trace grows with the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.util.intervals import IntervalSet


@dataclass(frozen=True)
class ReadEvent:
    """An explicit slow→fast transfer."""

    intervals: IntervalSet

    @property
    def words(self) -> int:
        return self.intervals.words


@dataclass(frozen=True)
class WriteEvent:
    """An explicit fast→slow transfer."""

    intervals: IntervalSet

    @property
    def words(self) -> int:
        return self.intervals.words


@dataclass(frozen=True)
class ScopeEvent:
    """Entry into an ideal-cache scope (cache-oblivious subproblem)."""

    footprint: IntervalSet
    fitted: Sequence[str] = ()

    @property
    def words(self) -> int:
        return self.footprint.words


Event = ReadEvent | WriteEvent | ScopeEvent


@dataclass
class MachineTrace:
    """Append-only record of machine events."""

    events: List[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Record one event."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def transfers(self) -> Iterator[ReadEvent | WriteEvent]:
        """Only the explicit transfer events, in order."""
        for ev in self.events:
            if isinstance(ev, (ReadEvent, WriteEvent)):
                yield ev

    def address_stream(self) -> Iterator[tuple[int, bool]]:
        """Flatten explicit transfers into ``(address, is_write)`` pairs.

        This is the stream the LRU cross-validator replays.  Scope
        events are skipped: scopes describe charging frontiers, not
        individual word touches.
        """
        for ev in self.transfers():
            is_write = isinstance(ev, WriteEvent)
            for addr in ev.intervals.addresses():
                yield addr, is_write

    def total_words(self) -> int:
        """Total explicit words transferred (reads + writes)."""
        return sum(ev.words for ev in self.transfers())
