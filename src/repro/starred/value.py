"""The ``0*`` / ``1*`` masked scalars (paper, Table 3).

Arithmetic rules, with ``x, y`` real:

========  =========  =========  =========
op        1* (rhs)   0* (rhs)   y (rhs)
========  =========  =========  =========
1* ±      1*         1*         1*
0* ±      1*         0*         0*
x  ±      1*         0*         x ± y
1* ·      1*         0*         y
0* ·      0*         0          0
x  ·      x          0          x·y
1* /      1*         —          1/y
0* /      0*         —          0
x  /      x          —          x/y
√         1*         0*         √x
========  =========  =========  =========

Note the asymmetries the correctness proof leans on: ``0*`` *masks*
reals under ± (so it hides the ``A·Aᵀ`` that plagued the naïve
reduction), while ``0* · x = 0`` is a *real* zero (so products of one
masked and one real factor cannot contaminate the embedded product
block).  Division by ``0*`` is undefined and raising on it is a
correctness check: Lemma 2.2 proves a classical Cholesky never
attempts it.

The set is commutative and associative under + and ·, but **not
distributive** — which is exactly why the reduction only applies to
classical (non-Strassen) algorithms.
"""

from __future__ import annotations

import math
from typing import Union

Real = Union[int, float]
MaskedValue = Union["Star", Real]


class StarArithmeticError(ZeroDivisionError):
    """An operation undefined in Table 3 was attempted (division by 0*)."""


class Star:
    """One of the two masked scalars; use the singletons
    :data:`ZERO_STAR` and :data:`ONE_STAR`."""

    __slots__ = ("one",)

    def __init__(self, one: bool) -> None:
        self.one = bool(one)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _is_real(v: object) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    def __repr__(self) -> str:
        return "1*" if self.one else "0*"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Star):
            return self.one == other.one
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Star", self.one))

    def __neg__(self) -> "Star":
        # the paper defines −0* ≡ 0* and −1* ≡ 1*
        return self

    # -- addition / subtraction (masking) ------------------------------------

    def _addsub(self, other: MaskedValue) -> MaskedValue:
        if isinstance(other, Star):
            return ONE_STAR if (self.one or other.one) else ZERO_STAR
        if self._is_real(other):
            return self  # a star masks any real
        return NotImplemented

    def __add__(self, other: MaskedValue) -> MaskedValue:
        return self._addsub(other)

    def __radd__(self, other: MaskedValue) -> MaskedValue:
        return self._addsub(other)

    def __sub__(self, other: MaskedValue) -> MaskedValue:
        return self._addsub(other)

    def __rsub__(self, other: MaskedValue) -> MaskedValue:
        return self._addsub(other)

    # -- multiplication ----------------------------------------------------

    def __mul__(self, other: MaskedValue) -> MaskedValue:
        if isinstance(other, Star):
            if self.one and other.one:
                return ONE_STAR
            if self.one or other.one:
                return ZERO_STAR  # 1*·0* = 0*
            return 0.0  # 0*·0* = 0 (real!)
        if self._is_real(other):
            return float(other) if self.one else 0.0
        return NotImplemented

    def __rmul__(self, other: MaskedValue) -> MaskedValue:
        return self.__mul__(other)  # multiplication table is symmetric

    # -- division ------------------------------------------------------------

    def __truediv__(self, other: MaskedValue) -> MaskedValue:
        if isinstance(other, Star):
            if not other.one:
                raise StarArithmeticError("division by 0* is undefined")
            return self  # anything / 1* is itself
        if self._is_real(other):
            if other == 0:
                raise ZeroDivisionError("division by real zero")
            # 1*/y = 1/y;  0*/y = 0  (both real results)
            return (1.0 / float(other)) if self.one else 0.0
        return NotImplemented

    def __rtruediv__(self, other: MaskedValue) -> MaskedValue:
        # real / star
        if self._is_real(other):
            if not self.one:
                raise StarArithmeticError("division by 0* is undefined")
            return float(other)
        return NotImplemented


ZERO_STAR = Star(one=False)
"""The masking zero ``0*``."""

ONE_STAR = Star(one=True)
"""The masking one ``1*``."""


def is_starred(v: object) -> bool:
    """Whether ``v`` is one of the masked scalars."""
    return isinstance(v, Star)


def ssqrt(v: MaskedValue) -> MaskedValue:
    """Square root extended to masked values (Table 3, last column)."""
    if isinstance(v, Star):
        return v
    x = float(v)
    if x < 0:
        raise ValueError(f"square root of negative real {x}")
    return math.sqrt(x)
