"""Strassen's multiplication over masked values — the executable
footnote on why the lower bound covers only *classical* algorithms.

The masked arithmetic of Table 3 is commutative and associative but
**not distributive**, and the reduction's correctness (Lemma 2.2)
leans on every computed product being a genuine ``a·b`` of operands
the dependency DAG provides.  Strassen's algorithm rewrites products
using distributivity — ``(a11 + a22)(b11 + b22)`` etc. — so over
masked values it computes *different* (wrong) results where a mask is
involved, while remaining correct on purely real inputs.

That asymmetry is exactly the paper's scoping statement: "our results
do not apply when using distributivity to reorganize the algorithm
(such as Strassen-like algorithms)".  The tests exhibit a concrete
masked input where :func:`strassen_matmul` and the classical
:func:`repro.starred.linalg.starred_matmul` disagree.
"""

from __future__ import annotations

import numpy as np

from repro.starred.linalg import starred_matmul
from repro.util.imath import is_pow2, next_pow2


def strassen_matmul(
    a: np.ndarray, b: np.ndarray, *, leaf: int = 1
) -> np.ndarray:
    """Strassen's algorithm over object (masked or real) matrices.

    Pads to a power of two with real zeros, recurses down to
    ``leaf × leaf`` blocks (multiplied classically), and combines with
    the seven Strassen products.  Correct for real inputs; *not*
    faithful for masked inputs — by design, see the module docstring.
    """
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError(f"need equal square operands, got {a.shape}, {b.shape}")
    size = n if is_pow2(n) else next_pow2(n)
    if size != n:
        a = _pad(a, size)
        b = _pad(b, size)
    out = _strassen(a, b, max(1, leaf))
    return out[:n, :n]


def _pad(m: np.ndarray, size: int) -> np.ndarray:
    out = np.empty((size, size), dtype=object)
    out[...] = 0.0
    out[: m.shape[0], : m.shape[1]] = m
    return out


def _strassen(a: np.ndarray, b: np.ndarray, leaf: int) -> np.ndarray:
    n = a.shape[0]
    if n <= leaf:
        return starred_matmul(a, b)
    h = n // 2
    a11, a12, a21, a22 = a[:h, :h], a[:h, h:], a[h:, :h], a[h:, h:]
    b11, b12, b21, b22 = b[:h, :h], b[:h, h:], b[h:, :h], b[h:, h:]
    # the seven products — every one of these sums *before multiplying*
    # is a distributivity rewrite the masked arithmetic does not license
    m1 = _strassen(a11 + a22, b11 + b22, leaf)
    m2 = _strassen(a21 + a22, b11, leaf)
    m3 = _strassen(a11, b12 - b22, leaf)
    m4 = _strassen(a22, b21 - b11, leaf)
    m5 = _strassen(a11 + a12, b22, leaf)
    m6 = _strassen(a21 - a11, b11 + b12, leaf)
    m7 = _strassen(a12 - a22, b21 + b22, leaf)
    out = np.empty((n, n), dtype=object)
    out[:h, :h] = m1 + m4 - m5 + m7
    out[:h, h:] = m3 + m5
    out[h:, :h] = m2 + m4
    out[h:, h:] = m1 - m2 + m3 + m6
    return out
