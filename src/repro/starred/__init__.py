"""The masked-value arithmetic of the lower-bound reduction (Table 3).

The paper's reduction embeds a matrix product inside a Cholesky
factorization by filling two diagonal blocks of the input with special
values ``0*`` and ``1*`` that behave like 0 and 1 under
multiplication/division but *mask* any real value under addition and
subtraction.  This package implements that arithmetic exactly:

* :data:`ZERO_STAR`, :data:`ONE_STAR` — the masked scalars, with
  operator overloads implementing Table 3 (and raising on the
  undefined divisions);
* :func:`ssqrt` — the square root extended to masked values;
* element-level linear algebra over object arrays: classical matmul,
  and the generic Cholesky of Equations (5)–(6) in several evaluation
  orders (Lemma 2.2 holds for *any* order respecting the dependency
  DAG, and the tests check several);
* :class:`StarredMatrix` — a machine-bound matrix of masked values,
  so the reduction's communication is *measured*, not just asserted.
"""

from repro.starred.value import (
    ONE_STAR,
    ZERO_STAR,
    Star,
    StarArithmeticError,
    is_starred,
    ssqrt,
)
from repro.starred.linalg import (
    starred_cholesky,
    starred_matmul,
    to_object_matrix,
)
from repro.starred.tracked import StarredMatrix

__all__ = [
    "Star",
    "ZERO_STAR",
    "ONE_STAR",
    "StarArithmeticError",
    "is_starred",
    "ssqrt",
    "starred_matmul",
    "starred_cholesky",
    "to_object_matrix",
    "StarredMatrix",
]
