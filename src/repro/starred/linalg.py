"""Element-level linear algebra over masked values.

Everything here works on NumPy *object* arrays whose entries are
Python floats or :class:`~repro.starred.value.Star` scalars, and
performs only classical operations: sums of products accumulated in an
explicit order, never distributivity rewrites (footnote 7 of the
paper: ``X·Y`` means the straightforward n³ algorithm — distributivity
does not hold for starred values, so the order of operations *is* the
semantics).

``starred_cholesky`` evaluates Equations (5)–(6) under three different
schedules (left-looking, right-looking, and the square-recursive
order).  Lemma 2.2 says any schedule respecting the dependency DAG
computes the same factor; the tests check all three agree — on real
inputs with the reference factor, and on reduction inputs with each
other.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.starred.value import MaskedValue, Star, ssqrt
from repro.util.imath import split_point


def to_object_matrix(a: Iterable) -> np.ndarray:
    """Build a 2-D object array of masked values (floats pass through)."""
    rows = [list(r) for r in a]
    n = len(rows)
    out = np.empty((n, len(rows[0]) if n else 0), dtype=object)
    for i, row in enumerate(rows):
        if len(row) != out.shape[1]:
            raise ValueError("ragged rows in matrix input")
        for j, v in enumerate(row):
            out[i, j] = v if isinstance(v, Star) else float(v)
    return out


def starred_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Classical ``A·B`` over masked values (explicit n³ loop).

    Accumulation runs over ``k`` in increasing order; with masked
    values the order matters in principle (no distributivity), and
    this fixed order is the one footnote 7's convention pins down.
    """
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    m, k = a.shape
    k2, r = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.empty((m, r), dtype=object)
    for i in range(m):
        for j in range(r):
            acc: MaskedValue = a[i, 0] * b[0, j] if k else 0.0
            for t in range(1, k):
                acc = acc + a[i, t] * b[t, j]
            out[i, j] = acc
    return out


def starred_transpose(a: np.ndarray) -> np.ndarray:
    """Transpose of an object matrix (copy)."""
    return np.asarray(a, dtype=object).T.copy()


def _dot(xs, ys) -> MaskedValue:
    """Ordered sum of elementwise products (empty sum is real 0)."""
    acc: MaskedValue = 0.0
    first = True
    for x, y in zip(xs, ys):
        p = x * y
        acc = p if first else acc + p
        first = False
    return acc


def starred_cholesky(t: np.ndarray, order: str = "left") -> np.ndarray:
    """Cholesky factor of an object matrix by Equations (5)–(6).

    Parameters
    ----------
    t:
        Square object matrix (only the lower triangle is referenced).
    order:
        Evaluation schedule: ``"left"`` (column at a time, lazily
        updated), ``"right"`` (eager trailing updates), or
        ``"recursive"`` (the Algorithm 6 order).  All respect the
        dependency DAG of Figure 1, so by Lemma 2.2 all produce the
        same factor.

    Returns the lower-triangular object matrix ``L`` (zeros above the
    diagonal as real ``0.0``).
    """
    t = np.asarray(t, dtype=object)
    n = t.shape[0]
    if t.shape != (n, n):
        raise ValueError(f"need a square matrix, got {t.shape}")
    if order == "left":
        return _chol_left(t.copy())
    if order == "right":
        return _chol_right(t.copy())
    if order == "recursive":
        work = t.copy()
        _chol_recursive(work, 0, n)
        return np.tril(work)
    raise ValueError(f"unknown order {order!r}")


def _chol_left(a: np.ndarray) -> np.ndarray:
    n = a.shape[0]
    L = np.empty_like(a)
    L[...] = 0.0
    for j in range(n):
        for i in range(j, n):
            s = a[i, j] - _dot(L[i, :j], L[j, :j]) if j else a[i, j]
            if i == j:
                L[j, j] = ssqrt(s)
            else:
                L[i, j] = s / L[j, j]
    return L


def _chol_right(a: np.ndarray) -> np.ndarray:
    a = a.copy()
    n = a.shape[0]
    for j in range(n):
        a[j, j] = ssqrt(a[j, j])
        for i in range(j + 1, n):
            a[i, j] = a[i, j] / a[j, j]
        for k in range(j + 1, n):
            for i in range(k, n):
                a[i, k] = a[i, k] - a[i, j] * a[k, j]
    for i in range(n):
        for j in range(i + 1, n):
            a[i, j] = 0.0
    return a


def _chol_recursive(a: np.ndarray, lo: int, hi: int) -> None:
    """In-place recursive order on ``a[lo:hi, lo:hi]``."""
    n = hi - lo
    if n == 1:
        a[lo, lo] = ssqrt(a[lo, lo])
        return
    k = lo + split_point(n)
    _chol_recursive(a, lo, k)
    # panel solve: L21 = A21 · L11^{-T} by forward substitution
    for i in range(k, hi):
        for j in range(lo, k):
            s = a[i, j] - _dot(a[i, lo:j], a[j, lo:j]) if j > lo else a[i, j]
            a[i, j] = s / a[j, j]
    # symmetric trailing update (lower triangle only)
    for i in range(k, hi):
        for j in range(k, i + 1):
            a[i, j] = a[i, j] - _dot(a[i, lo:k], a[j, lo:k])
    _chol_recursive(a, k, hi)
