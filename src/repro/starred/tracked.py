"""Machine-bound matrices of masked values.

The reduction (Algorithm 1) is not just a correctness construction —
its *communication* is the content of Theorem 1.  ``StarredMatrix``
binds an object-array matrix to a machine and a layout exactly like
:class:`repro.matrices.TrackedMatrix` does for floats, so the starred
Cholesky runs of the reduction produce measured word/message counts
comparable against the ITT04 matmul lower bound.

The paper notes the masked flag costs at most one extra bit per word
("increases the bandwidth by at most a constant factor", or zero extra
bits with signalling NaNs); the counters here charge one word per
entry, i.e. the signalling-NaN encoding.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import Layout
from repro.machine.core import HierarchicalMachine
from repro.starred.value import Star
from repro.util.intervals import IntervalSet


class StarredMatrix:
    """A slow-memory matrix of masked values bound to a machine."""

    def __init__(
        self,
        data: np.ndarray,
        layout: Layout,
        machine: HierarchicalMachine,
        *,
        name: str = "T",
    ) -> None:
        arr = np.asarray(data, dtype=object)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise ValueError(f"need a square matrix, got shape {arr.shape}")
        if layout.n != arr.shape[0]:
            raise ValueError(
                f"layout dimension {layout.n} != matrix dimension {arr.shape[0]}"
            )
        self.data = arr.copy()
        self.layout = layout
        self.machine = machine
        self.base = machine.reserve_address_space(layout.storage_words)
        self.name = name

    @property
    def n(self) -> int:
        return self.layout.n

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        """Global (base-shifted) address runs of a rectangle."""
        return self.layout.intervals(r0, r1, c0, c1).shift(self.base)

    # -- charged column access (what the naïve schedules need) ------------

    def load_column(self, c: int, r0: int, r1: int) -> np.ndarray:
        """Charged read of rows ``[r0, r1)`` of column ``c``."""
        ivs = self.intervals(r0, r1, c, c + 1)
        self.machine.read(ivs)
        return self.data[r0:r1, c].copy()

    def store_column(self, c: int, r0: int, r1: int, values: np.ndarray) -> None:
        """Charged write of rows ``[r0, r1)`` of column ``c``."""
        vals = np.asarray(values, dtype=object)
        if vals.shape != (r1 - r0,):
            raise ValueError(
                f"column values shape {vals.shape} != ({r1 - r0},)"
            )
        self.data[r0:r1, c] = vals
        self.machine.write(self.intervals(r0, r1, c, c + 1))

    def release_column(self, c: int, r0: int, r1: int) -> None:
        """Evict a column segment from fast memory (no traffic)."""
        self.machine.release(self.intervals(r0, r1, c, c + 1))

    def count_starred(self) -> int:
        """Number of masked entries (diagnostics for the reduction)."""
        return sum(1 for v in self.data.flat if isinstance(v, Star))

    def __repr__(self) -> str:
        return (
            f"StarredMatrix({self.name!r}, n={self.n}, "
            f"layout={self.layout.name})"
        )
