"""Vectorized masked arithmetic: the paper's "extra bit" encoding.

Section 2 describes the simplest realization of Alg′ (Algorithm 1,
step 1): "attach an extra bit to every numerical value, indicating
whether it is 'starred' or not, and modify every arithmetic operation
to first check this bit".  This module implements exactly that, as a
structure-of-arrays representation —

    values : float64[n, n]       flags : uint8[n, n]
    flag 0 = real (use value)    flag 1 = 0*    flag 2 = 1*

— with NumPy-vectorized Table 3 operations, so the reduction scales to
sizes the object-array backend cannot reach.  The tests cross-validate
every operation, and the full Algorithm 1 pipeline, against the
object backend (:mod:`repro.starred.value`).

The paper's remark that the extra bit "increases the bandwidth by at
most a constant factor" is directly visible here: a masked matrix is
9/8 the bytes of a real one (one flag byte per 8-byte word), and our
machine model charges one word per entry either way (the signalling-
NaN encoding, which needs no extra bits at all).
"""

from __future__ import annotations

import numpy as np

from repro.starred.value import (
    ONE_STAR,
    ZERO_STAR,
    Star,
    StarArithmeticError,
)

REAL = np.uint8(0)
FLAG_ZERO_STAR = np.uint8(1)
FLAG_ONE_STAR = np.uint8(2)


class BitFlagArray:
    """A masked-value array in value/flag representation."""

    __slots__ = ("values", "flags")

    def __init__(self, values: np.ndarray, flags: np.ndarray) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.flags = np.asarray(flags, dtype=np.uint8)
        if self.values.shape != self.flags.shape:
            raise ValueError(
                f"values {self.values.shape} and flags "
                f"{self.flags.shape} must have equal shapes"
            )
        if self.flags.size and self.flags.max(initial=0) > 2:
            raise ValueError("flags must be 0 (real), 1 (0*), or 2 (1*)")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.values.shape

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_real(cls, a: np.ndarray) -> "BitFlagArray":
        a = np.asarray(a, dtype=np.float64)
        return cls(a.copy(), np.zeros(a.shape, dtype=np.uint8))

    @classmethod
    def from_object(cls, obj: np.ndarray) -> "BitFlagArray":
        """Convert an object array of floats / Star scalars."""
        obj = np.asarray(obj, dtype=object)
        values = np.zeros(obj.shape, dtype=np.float64)
        flags = np.zeros(obj.shape, dtype=np.uint8)
        it = np.nditer(obj, flags=["multi_index", "refs_ok"])
        for cell in it:
            v = cell.item()
            idx = it.multi_index
            if isinstance(v, Star):
                flags[idx] = FLAG_ONE_STAR if v.one else FLAG_ZERO_STAR
            else:
                values[idx] = float(v)
        return cls(values, flags)

    def to_object(self) -> np.ndarray:
        out = np.empty(self.shape, dtype=object)
        it = np.nditer(self.flags, flags=["multi_index"])
        for f in it:
            idx = it.multi_index
            if f == FLAG_ONE_STAR:
                out[idx] = ONE_STAR
            elif f == FLAG_ZERO_STAR:
                out[idx] = ZERO_STAR
            else:
                out[idx] = float(self.values[idx])
        return out

    def copy(self) -> "BitFlagArray":
        return BitFlagArray(self.values.copy(), self.flags.copy())

    def __getitem__(self, key) -> "BitFlagArray":
        return BitFlagArray(self.values[key], self.flags[key])

    def __setitem__(self, key, other: "BitFlagArray") -> None:
        self.values[key] = other.values
        self.flags[key] = other.flags

    def is_real(self) -> np.ndarray:
        return self.flags == REAL


# -- elementwise Table 3 operations -------------------------------------------


def bf_addsub(x: BitFlagArray, y: BitFlagArray, sign: float) -> BitFlagArray:
    """``x ± y``: any 1* wins, else any 0* wins, else real arithmetic."""
    flags = np.maximum(x.flags, y.flags)  # 2 beats 1 beats 0 — Table 3's ±
    values = np.where(flags == REAL, x.values + sign * y.values, 0.0)
    return BitFlagArray(values, flags)


def bf_mul(x: BitFlagArray, y: BitFlagArray) -> BitFlagArray:
    """``x · y`` per Table 3 (note 0*·0* and 0*·x are *real* zeros)."""
    both_one = (x.flags == FLAG_ONE_STAR) & (y.flags == FLAG_ONE_STAR)
    one_zero = ((x.flags == FLAG_ONE_STAR) & (y.flags == FLAG_ZERO_STAR)) | (
        (x.flags == FLAG_ZERO_STAR) & (y.flags == FLAG_ONE_STAR)
    )
    flags = np.where(
        both_one, FLAG_ONE_STAR, np.where(one_zero, FLAG_ZERO_STAR, REAL)
    ).astype(np.uint8)
    # real value: 1* acts as identity, 0* annihilates to real 0
    xv = np.where(x.flags == FLAG_ONE_STAR, 1.0,
                  np.where(x.flags == FLAG_ZERO_STAR, 0.0, x.values))
    yv = np.where(y.flags == FLAG_ONE_STAR, 1.0,
                  np.where(y.flags == FLAG_ZERO_STAR, 0.0, y.values))
    values = np.where(flags == REAL, xv * yv, 0.0)
    return BitFlagArray(values, flags)


def bf_div(x: BitFlagArray, y: BitFlagArray) -> BitFlagArray:
    """``x / y`` per Table 3; raises on division by 0* or real 0."""
    if np.any(y.flags == FLAG_ZERO_STAR):
        raise StarArithmeticError("division by 0* is undefined")
    if np.any((y.flags == REAL) & (y.values == 0.0)):
        raise ZeroDivisionError("division by real zero")
    y_is_one = y.flags == FLAG_ONE_STAR
    # dividing by 1* leaves x unchanged (flags included)
    flags = np.where(y_is_one, x.flags, REAL).astype(np.uint8)
    xv = np.where(x.flags == FLAG_ONE_STAR, 1.0,
                  np.where(x.flags == FLAG_ZERO_STAR, 0.0, x.values))
    safe_y = np.where(y_is_one, 1.0, y.values)
    values = np.where(y_is_one, x.values, xv / safe_y)
    values = np.where(flags == REAL, values, 0.0)
    return BitFlagArray(values, flags)


def bf_sqrt(x: BitFlagArray) -> BitFlagArray:
    """Elementwise square root; masked values are fixed points."""
    real = x.flags == REAL
    if np.any(real & (x.values < 0)):
        raise ValueError("square root of a negative real value")
    values = np.where(real, np.sqrt(np.where(real, x.values, 0.0)), 0.0)
    return BitFlagArray(values, x.flags.copy())


def bf_dot_columns(a: BitFlagArray, b: BitFlagArray) -> BitFlagArray:
    """Row-wise ordered sums of products ``Σ_k a[:,k]·b[:,k]``.

    The accumulation runs over k in increasing order (distributivity
    does not hold, so the order is part of the semantics).
    """
    rows, k = a.shape
    if b.shape != (rows, k):
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    acc = bf_mul(a[:, 0], b[:, 0])
    for t in range(1, k):
        acc = bf_addsub(acc, bf_mul(a[:, t], b[:, t]), +1.0)
    return acc


def bitflag_cholesky(t: BitFlagArray) -> BitFlagArray:
    """Left-looking Cholesky over bit-flagged values (Equations 5–6).

    Column-vectorized: the inner products over previous columns run as
    whole-column masked operations, making the reduction practical at
    sizes where the object backend is minutes-slow.
    """
    n = t.shape[0]
    if t.shape != (n, n):
        raise ValueError(f"need a square matrix, got {t.shape}")
    L = BitFlagArray.from_real(np.zeros((n, n)))
    for j in range(n):
        col = t[j:n, j].copy()
        if j > 0:
            contrib = bf_dot_columns(L[j:n, :j], _bcast_row(L[j, :j], n - j))
            col = bf_addsub(col, contrib, -1.0)
        pivot = bf_sqrt(col[0:1])
        L[j : j + 1, j] = pivot
        if j + 1 < n:
            L[j + 1 : n, j] = bf_div(col[1:], _bcast_scalar(pivot, n - j - 1))
    return L


def _bcast_row(row: BitFlagArray, rows: int) -> BitFlagArray:
    """Tile a length-k row to (rows, k) without copying semantics."""
    return BitFlagArray(
        np.broadcast_to(row.values, (rows, row.shape[0])),
        np.broadcast_to(row.flags, (rows, row.shape[0])),
    )


def _bcast_scalar(s: BitFlagArray, count: int) -> BitFlagArray:
    return BitFlagArray(
        np.broadcast_to(s.values, (count,)),
        np.broadcast_to(s.flags, (count,)),
    )
