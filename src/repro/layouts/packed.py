"""'Old packed' triangular storage (LAPACK ``xPPTRF`` format).

Only the lower triangle is stored, column by column: column ``j``
holds rows ``j .. n-1`` consecutively.  Saves half the space of full
storage; like column-major, a block access costs one message per
column, so it belongs to the paper's column-major class.
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.intervals import IntervalSet


class PackedLayout(Layout):
    """Lower-triangular packed column storage.

    ``address(i, j) = (i - j) + j*n - j*(j-1)/2`` for ``i >= j``:
    the columns ``0 .. j-1`` before it occupy
    ``n + (n-1) + ... + (n-j+1) = j*n - j*(j-1)/2`` words.
    """

    name = "packed"
    block_contiguous = False
    packed = True

    @property
    def storage_words(self) -> int:
        return self.n * (self.n + 1) // 2

    def _column_start(self, j: int) -> int:
        return j * self.n - (j * (j - 1)) // 2

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(
                f"({i},{j}) not stored by lower packed layout (n={self.n})"
            )
        return self._column_start(j) + (i - j)

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        return self._column_run_intervals(r0, r1, c0, c1)
