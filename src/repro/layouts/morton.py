"""Recursive (Morton / bit-interleaved / space-filling-curve) storage.

The cache-*oblivious* member of the block-contiguous class: the matrix
is stored along a Z-order curve, so *every* power-of-two-aligned
square sub-block of every size is contiguous — no block-size parameter
to tune.  This is the 'recursive format' of Figure 2 and the storage
that makes the Ahmed–Pingali algorithm latency-optimal at every level
of the hierarchy (Conclusion 5).

The dimension is padded to the next power of two; padding addresses
exist but are never stored entries (``stores`` is false there), so the
words of an interval request count only real entries... *almost*: a
Z-order run over a fully covered quadrant includes padding holes.  To
keep word counts exact we subtract padded addresses during the
recursive descent — a quadrant is emitted as one run only when it
contains no padding.
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.intervals import IntervalSet, merge_intervals
from repro.util.imath import next_pow2


def interleave_bits(i: int, j: int) -> int:
    """Z-order key: bit ``k`` of ``i`` goes to bit ``2k+1``, of ``j`` to ``2k``."""
    out = 0
    k = 0
    while i or j:
        out |= ((j & 1) << (2 * k)) | ((i & 1) << (2 * k + 1))
        i >>= 1
        j >>= 1
        k += 1
    return out


class MortonLayout(Layout):
    """Bit-interleaved recursive full storage."""

    name = "morton"
    block_contiguous = True
    packed = False

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.padded = next_pow2(n)

    @property
    def storage_words(self) -> int:
        # address space including padding holes; stored entries are n*n
        return self.padded * self.padded

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(f"({i},{j}) outside {self.n}x{self.n} matrix")
        return interleave_bits(i, j)

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        if r1 <= r0 or c1 <= c0:
            return IntervalSet()
        runs: list[tuple[int, int]] = []
        n = self.n

        def descend(qr: int, qc: int, size: int, base: int) -> None:
            # intersection of the quadrant with the request and with
            # the real (un-padded) matrix
            lo_r, hi_r = max(qr, r0), min(qr + size, r1, n)
            lo_c, hi_c = max(qc, c0), min(qc + size, c1, n)
            if lo_r >= hi_r or lo_c >= hi_c:
                return
            if lo_r == qr and hi_r == qr + size and lo_c == qc and hi_c == qc + size:
                runs.append((base, base + size * size))
                return
            if size == 1:
                runs.append((base, base + 1))
                return
            half = size // 2
            sq = half * half
            # children in address order: (0,0), (0,1), (1,0), (1,1)
            descend(qr, qc, half, base)
            descend(qr, qc + half, half, base + sq)
            descend(qr + half, qc, half, base + 2 * sq)
            descend(qr + half, qc + half, half, base + 3 * sq)

        descend(0, 0, self.padded, 0)
        return IntervalSet(merge_intervals(runs))
