"""Rectangular Full Packed (RFP) storage.

RFP (Gustavson et al.; LAPACK ``xPFTRF``) stores the lower triangle of
an ``n × n`` matrix in a dense rectangle of exactly ``n(n+1)/2``
words, giving packed storage *and* uniform indexing: the leading
columns of the triangle are stored as columns, and the trailing
triangle is stored transposed into the otherwise-unused upper corner
of the same rectangle.

The paper lists RFP among the column-major class (Figure 2 top row):
block fetches still cost one message per column (or per row, in the
transposed corner), so RFP cannot make LAPACK latency-optimal either.

Mapping implemented here (``TRANSR='N'``, ``UPLO='L'``), with the RFP
rectangle stored column-major:

* n even, k = n/2, rectangle (n+1) × k:
  - ``j <  k``: ``A(i,j) -> RFP(i+1, j)``
  - ``j >= k``: ``A(i,j) -> RFP(j-k, i-k)`` (transposed corner)
* n odd, k = (n+1)/2, rectangle n × k:
  - ``j <  k``: ``A(i,j) -> RFP(i, j)``
  - ``j >= k``: ``A(i,j) -> RFP(j-k, i-k+1)``

Both maps are bijections onto ``[0, n(n+1)/2)`` (property-tested).
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.intervals import IntervalSet, merge_intervals


class RFPLayout(Layout):
    """Rectangular Full Packed lower-triangular storage."""

    name = "rfp"
    block_contiguous = False
    packed = True

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._even = n % 2 == 0
        #: split column: columns >= k live in the transposed corner
        self.k = n // 2 if self._even else (n + 1) // 2
        #: leading dimension of the RFP rectangle
        self.ld = n + 1 if self._even else n

    @property
    def storage_words(self) -> int:
        return self.n * (self.n + 1) // 2

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(
                f"({i},{j}) not stored by RFP layout (n={self.n})"
            )
        k, ld = self.k, self.ld
        if self._even:
            if j < k:
                return (i + 1) + j * ld
            return (j - k) + (i - k) * ld
        if j < k:
            return i + j * ld
        return (j - k) + (i - k + 1) * ld

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        k, ld = self.k, self.ld
        runs: list[tuple[int, int]] = []
        # leading part: one run per column (consecutive i)
        for c in range(c0, min(c1, k)):
            lo, hi = max(r0, c), r1
            if hi > lo:
                start = self.address(lo, c)
                runs.append((start, start + (hi - lo)))
        # transposed corner: one run per *row* (consecutive j)
        if c1 > k:
            for i in range(max(r0, k), r1):
                lo, hi = max(c0, k), min(c1, i + 1)
                if hi > lo:
                    start = self.address(i, lo)
                    runs.append((start, start + (hi - lo)))
        return IntervalSet(merge_intervals(runs))
