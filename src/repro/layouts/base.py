"""Layout base class.

A layout describes how an ``n × n`` matrix is serialized into slow
memory.  Algorithms never compute addresses themselves: they ask the
layout for the :class:`~repro.util.intervals.IntervalSet` of a
rectangle, and the machine turns those runs into words and messages.

Full layouts store every entry; triangular (packed) layouts store only
``i >= j`` (lower).  Requests are always *clipped to the stored
region*: asking a packed layout for a block that straddles the
diagonal yields the runs of the stored (lower) part, which is how the
paper's algorithms access symmetric matrices ("only half of the matrix
is referenced").  Asking for entries that are entirely outside the
stored region is an error — it would mean the algorithm reads data
that does not exist.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.util.intervals import IntervalSet, merge_intervals
from repro.util.validation import check_positive_int


class LayoutError(ValueError):
    """An access fell outside a layout's stored region."""


class Layout(ABC):
    """Maps matrix entries to linear addresses; see the module docstring.

    Parameters
    ----------
    n:
        Matrix dimension.
    """

    #: short machine-readable identifier (subclasses override)
    name: str = "abstract"
    #: whether an aligned block of any size is O(1) contiguous runs
    block_contiguous: bool = False
    #: whether only the lower triangle is stored
    packed: bool = False
    #: uniform distance between column starts when every column's rows
    #: are one contiguous run (column-major-style layouts); ``None``
    #: when no such stride exists.  The batched transfer builders use
    #: this to emit per-column runs in closed form.
    column_stride: "int | None" = None

    def __init__(self, n: int) -> None:
        self.n = check_positive_int("n", n)

    # -- abstract interface -------------------------------------------

    @property
    @abstractmethod
    def storage_words(self) -> int:
        """Total words of slow memory the layout occupies."""

    @abstractmethod
    def address(self, i: int, j: int) -> int:
        """Linear address of entry ``(i, j)``; raises LayoutError if
        the entry is not stored."""

    # -- stored-region geometry -----------------------------------------

    def stores(self, i: int, j: int) -> bool:
        """Whether entry ``(i, j)`` is represented in storage."""
        if not (0 <= i < self.n and 0 <= j < self.n):
            return False
        return (i >= j) if self.packed else True

    def _check_rect(self, r0: int, r1: int, c0: int, c1: int) -> None:
        if not (0 <= r0 <= r1 <= self.n and 0 <= c0 <= c1 <= self.n):
            raise LayoutError(
                f"rectangle [{r0},{r1})x[{c0},{c1}) is outside a "
                f"{self.n}x{self.n} matrix"
            )

    def _clip_column(self, c: int, r0: int, r1: int) -> tuple[int, int]:
        """Clip a column's row range to the stored region."""
        if self.packed:
            r0 = max(r0, c)
        return r0, r1

    def stored_cells(
        self, r0: int, r1: int, c0: int, c1: int
    ) -> Iterator[tuple[int, int]]:
        """All stored entries within the rectangle (column order)."""
        self._check_rect(r0, r1, c0, c1)
        for c in range(c0, c1):
            lo, hi = self._clip_column(c, r0, r1)
            for i in range(lo, hi):
                yield i, c

    def rect_words(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Number of stored entries within the rectangle."""
        self._check_rect(r0, r1, c0, c1)
        total = 0
        for c in range(c0, c1):
            lo, hi = self._clip_column(c, r0, r1)
            if hi > lo:
                total += hi - lo
        return total

    # -- interval computation --------------------------------------------

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        """Address runs of the stored entries of ``[r0,r1) × [c0,c1)``.

        The base implementation enumerates entries; subclasses override
        with analytic versions (and the tests check they agree).
        """
        self._check_rect(r0, r1, c0, c1)
        return IntervalSet(
            (a, a + 1)
            for a in (self.address(i, j) for i, j in self.stored_cells(r0, r1, c0, c1))
        )

    def column_intervals(self, c: int, r0: int, r1: int) -> IntervalSet:
        """Address runs of rows ``[r0, r1)`` of column ``c``."""
        return self.intervals(r0, r1, c, c + 1)

    def full_intervals(self) -> IntervalSet:
        """Address runs of the entire stored matrix."""
        return self.intervals(0, self.n, 0, self.n)

    # -- helpers shared by column-major-style subclasses ------------------

    def _column_run_intervals(
        self, r0: int, r1: int, c0: int, c1: int
    ) -> IntervalSet:
        """Build intervals from one contiguous run per (clipped) column.

        Valid for any layout in which each column's stored rows are
        consecutive addresses (column-major, old packed, parts of RFP).
        Subclasses using this must guarantee that property.
        """
        self._check_rect(r0, r1, c0, c1)
        runs = []
        for c in range(c0, c1):
            lo, hi = self._clip_column(c, r0, r1)
            if hi > lo:
                start = self.address(lo, c)
                runs.append((start, start + (hi - lo)))
        return IntervalSet(merge_intervals(runs))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"
