"""Matrix storage layouts (the paper's Figure 2).

A *layout* maps a matrix entry ``(i, j)`` to a linear slow-memory
address and — the part the latency analysis lives on — turns a
rectangular sub-block into the set of contiguous address runs that
storing it implies.  Whether fetching a ``b × b`` block costs one
message or ``b`` messages is entirely a layout property (Section
3.1.1), and it is what separates the "column-major" from the
"contiguous blocks" rows of Table 1.

Column-major class (one run per column crossing a block):

* :class:`ColumnMajorLayout` — full storage, Fortran order;
* :class:`RowMajorLayout` — full storage, C order;
* :class:`PackedLayout` — 'old packed' triangular storage;
* :class:`RFPLayout` — rectangular full packed.

Block-contiguous class (an aligned block is O(1) runs):

* :class:`BlockedLayout` — tiles of a fixed, cache-aware size;
* :class:`MortonLayout` — the cache-oblivious recursive / space-
  filling-curve ('bit interleaved') format;
* :class:`RecursivePackedLayout` — triangular recursive storage, in
  both the fully recursive flavour and the AGW01 hybrid whose
  rectangular sub-blocks are column-major (which is exactly why AGW01
  cannot reach the latency lower bound).

Every layout is a bijection from its stored entries onto
``[0, storage_words)`` (property-tested), and every layout's
``intervals`` agrees with per-element enumeration (property-tested).
"""

from repro.layouts.base import Layout, LayoutError
from repro.layouts.dense import ColumnMajorLayout, RowMajorLayout
from repro.layouts.packed import PackedLayout
from repro.layouts.rfp import RFPLayout
from repro.layouts.blocked import BlockedLayout
from repro.layouts.morton import MortonLayout
from repro.layouts.recursive_packed import RecursivePackedLayout
from repro.layouts.registry import available_layouts, make_layout

__all__ = [
    "Layout",
    "LayoutError",
    "ColumnMajorLayout",
    "RowMajorLayout",
    "PackedLayout",
    "RFPLayout",
    "BlockedLayout",
    "MortonLayout",
    "RecursivePackedLayout",
    "available_layouts",
    "make_layout",
]
