"""Blocked (tiled) contiguous storage.

The cache-*aware* member of the paper's block-contiguous class: the
matrix is cut into ``block × block`` tiles (edge tiles clipped), each
tile stored contiguously (column-major inside the tile), tiles ordered
column-major over the tile grid.  Fetching an aligned tile is a single
message, which is what lets LAPACK's POTRF reach the latency lower
bound when ``block = Θ(sqrt(M))`` (Conclusion 3).

The ``block`` parameter is machine-specific — exactly the tuning knob
whose multi-level dilemma §3.2.2 describes.
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.intervals import IntervalSet, merge_intervals
from repro.util.imath import ceil_div
from repro.util.validation import check_positive_int


class BlockedLayout(Layout):
    """Full storage in contiguous square tiles of a fixed size."""

    name = "blocked"
    block_contiguous = True
    packed = False

    def __init__(self, n: int, block: int) -> None:
        super().__init__(n)
        self.block = check_positive_int("block", block)
        if self.block > n:
            self.block = n
        self.tiles = ceil_div(n, self.block)
        # cumulative start offset of each tile, column-major tile order
        b, t = self.block, self.tiles
        heights = [min(b, n - it * b) for it in range(t)]
        widths = [min(b, n - jt * b) for jt in range(t)]
        self._heights = heights
        self._widths = widths
        offsets: list[int] = []
        acc = 0
        for jt in range(t):
            for it in range(t):
                offsets.append(acc)
                acc += heights[it] * widths[jt]
        self._offsets = offsets
        self._total = acc

    @property
    def storage_words(self) -> int:
        return self._total

    def _tile_offset(self, it: int, jt: int) -> int:
        return self._offsets[jt * self.tiles + it]

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(f"({i},{j}) outside {self.n}x{self.n} matrix")
        b = self.block
        it, jt = i // b, j // b
        li, lj = i - it * b, j - jt * b
        return self._tile_offset(it, jt) + li + lj * self._heights[it]

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        if r1 <= r0 or c1 <= c0:
            return IntervalSet()
        b = self.block
        runs: list[tuple[int, int]] = []
        for jt in range(c0 // b, ceil_div(c1, b)):
            w = self._widths[jt]
            lc0 = max(c0 - jt * b, 0)
            lc1 = min(c1 - jt * b, w)
            for it in range(r0 // b, ceil_div(r1, b)):
                h = self._heights[it]
                lr0 = max(r0 - it * b, 0)
                lr1 = min(r1 - it * b, h)
                off = self._tile_offset(it, jt)
                if lr0 == 0 and lr1 == h:
                    # full tile height: the covered columns are one run
                    runs.append((off + lc0 * h, off + lc1 * h))
                else:
                    for c in range(lc0, lc1):
                        runs.append(
                            (off + c * h + lr0, off + c * h + lr1)
                        )
        return IntervalSet(merge_intervals(runs))

    def __repr__(self) -> str:
        return f"BlockedLayout(n={self.n}, block={self.block})"
