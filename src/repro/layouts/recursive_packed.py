"""Recursive packed triangular storage (AGW01 / recursive full packed).

Stores only the lower triangle, laid out by the Cholesky recursion
itself: for a split ``n = k + (n-k)``,

    [ tri(A11) | rect(A21) | tri(A22) ]

are stored consecutively, with the triangles recursing.  Two flavours
of the rectangular ``A21`` block exist, and the difference is exactly
the paper's point about [AGW01]:

* ``rect_order='column'`` — the AGW01 hybrid 'recursive packed
  format': rectangular blocks are plain column-major so that BLAS3
  GEMM can be called on them.  Space-optimal and bandwidth-friendly,
  but a sub-block fetch costs one message per column, so the format
  *cannot* attain the latency lower bound (Table 1's
  "Recursive Packed Format" row).
* ``rect_order='recursive'`` — the fully recursive 'recursive full
  packed' format (Figure 2, bottom right): rectangles keep splitting
  their larger dimension, so aligned sub-blocks of every size are
  O(1) runs and latency optimality is preserved.
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.intervals import IntervalSet, merge_intervals
from repro.util.imath import ceil_div


def _tri_words(n: int) -> int:
    return n * (n + 1) // 2


class RecursivePackedLayout(Layout):
    """Recursive lower-triangular packed storage."""

    name = "recursive-packed"
    block_contiguous = True  # 'recursive' flavour; hybrid overrides below
    packed = True

    def __init__(self, n: int, rect_order: str = "recursive") -> None:
        super().__init__(n)
        if rect_order not in ("recursive", "column"):
            raise ValueError(
                f"rect_order must be 'recursive' or 'column', got {rect_order!r}"
            )
        self.rect_order = rect_order
        self.block_contiguous = rect_order == "recursive"
        self.name = (
            "recursive-packed"
            if rect_order == "recursive"
            else "recursive-packed-hybrid"
        )

    @property
    def storage_words(self) -> int:
        return _tri_words(self.n)

    # -- addresses ------------------------------------------------------

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(
                f"({i},{j}) not stored by {self.name} layout (n={self.n})"
            )
        return self._tri_address(i, j, 0, self.n, 0)

    def _tri_address(self, i: int, j: int, r: int, n: int, base: int) -> int:
        """Address within a diagonal triangle node at offset ``r``, size ``n``."""
        if n == 1:
            return base
        k = ceil_div(n, 2)
        if j < r + k:
            if i < r + k:
                return self._tri_address(i, j, r, k, base)
            return (
                base
                + _tri_words(k)
                + self._rect_address(i - (r + k), j - r, n - k, k)
            )
        return self._tri_address(
            i, j, r + k, n - k, base + _tri_words(k) + (n - k) * k
        )

    def _rect_address(self, li: int, lj: int, m: int, w: int) -> int:
        """Address within an ``m × w`` rectangle node (local coords)."""
        if self.rect_order == "column":
            return li + lj * m
        base = 0
        while not (m == 1 and w == 1):
            if m >= w:
                k = ceil_div(m, 2)
                if li < k:
                    m = k
                else:
                    base += k * w
                    li -= k
                    m -= k
            else:
                k = ceil_div(w, 2)
                if lj < k:
                    w = k
                else:
                    base += m * k
                    lj -= k
                    w -= k
        return base

    # -- intervals -------------------------------------------------------

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        runs: list[tuple[int, int]] = []
        self._tri_intervals(r0, r1, c0, c1, 0, self.n, 0, runs)
        return IntervalSet(merge_intervals(runs))

    def _tri_intervals(
        self,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        r: int,
        n: int,
        base: int,
        out: list[tuple[int, int]],
    ) -> None:
        lo_r, hi_r = max(r0, r), min(r1, r + n)
        lo_c, hi_c = max(c0, r), min(c1, r + n)
        if lo_r >= hi_r or lo_c >= hi_c or hi_r <= lo_c:
            return  # no stored entry of this triangle is requested
        if lo_r == r and hi_r == r + n and lo_c == r and hi_c == r + n:
            out.append((base, base + _tri_words(n)))
            return
        if n == 1:
            out.append((base, base + 1))
            return
        k = ceil_div(n, 2)
        self._tri_intervals(r0, r1, c0, c1, r, k, base, out)
        self._rect_intervals(
            r0, r1, c0, c1, r + k, r, n - k, k, base + _tri_words(k), out
        )
        self._tri_intervals(
            r0, r1, c0, c1, r + k, n - k, base + _tri_words(k) + (n - k) * k, out
        )

    def _rect_intervals(
        self,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        gr: int,
        gc: int,
        m: int,
        w: int,
        base: int,
        out: list[tuple[int, int]],
    ) -> None:
        lo_r, hi_r = max(r0, gr), min(r1, gr + m)
        lo_c, hi_c = max(c0, gc), min(c1, gc + w)
        if lo_r >= hi_r or lo_c >= hi_c:
            return
        if self.rect_order == "column":
            if lo_r == gr and hi_r == gr + m:
                out.append(
                    (base + (lo_c - gc) * m, base + (hi_c - gc) * m)
                )
            else:
                for c in range(lo_c, hi_c):
                    start = base + (c - gc) * m + (lo_r - gr)
                    out.append((start, start + (hi_r - lo_r)))
            return
        if lo_r == gr and hi_r == gr + m and lo_c == gc and hi_c == gc + w:
            out.append((base, base + m * w))
            return
        if m >= w and m > 1:
            k = ceil_div(m, 2)
            self._rect_intervals(r0, r1, c0, c1, gr, gc, k, w, base, out)
            self._rect_intervals(
                r0, r1, c0, c1, gr + k, gc, m - k, w, base + k * w, out
            )
        elif w > 1:
            k = ceil_div(w, 2)
            self._rect_intervals(r0, r1, c0, c1, gr, gc, m, k, base, out)
            self._rect_intervals(
                r0, r1, c0, c1, gr, gc + k, m, w - k, base + m * k, out
            )
        else:  # 1 x 1, partially covered is impossible here
            out.append((base, base + 1))

    def __repr__(self) -> str:
        return f"RecursivePackedLayout(n={self.n}, rect_order={self.rect_order!r})"
