"""Full (dense) column-major and row-major layouts.

These are the formats the paper calls "Column-Major Storage": best for
the naïve one-column-at-a-time algorithms, but a ``b × b`` block is
``b`` separate runs, which is where LAPACK's latency loses a factor of
``b ≈ sqrt(M)`` (Conclusion 3).
"""

from __future__ import annotations

from repro.layouts.base import Layout, LayoutError
from repro.util.fastpath import fastpath_enabled
from repro.util.intervals import IntervalSet, merge_intervals


class ColumnMajorLayout(Layout):
    """Fortran-order full storage: ``address(i, j) = i + j * n``."""

    name = "column-major"
    block_contiguous = False
    packed = False

    @property
    def storage_words(self) -> int:
        return self.n * self.n

    @property
    def column_stride(self) -> int:
        return self.n

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(f"({i},{j}) outside {self.n}x{self.n} matrix")
        return i + j * self.n

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        if r1 <= r0 or c1 <= c0:
            return IntervalSet()
        if r0 == 0 and r1 == self.n:
            # full columns are one contiguous run
            return IntervalSet.single(c0 * self.n, c1 * self.n)
        if fastpath_enabled():
            # partial-height columns never touch: the per-column runs
            # are already sorted, disjoint and non-adjacent
            return IntervalSet.from_strided((r0, r1), (c0, c1), self.n)
        n = self.n
        return IntervalSet(
            merge_intervals(
                (r0 + c * n, r1 + c * n) for c in range(c0, c1)
            )
        )


class RowMajorLayout(Layout):
    """C-order full storage: ``address(i, j) = i * n + j``.

    The mirror image of column-major; the paper notes every algorithm
    has a row-wise twin with identical counts, and the tests verify
    that symmetry.
    """

    name = "row-major"
    block_contiguous = False
    packed = False

    @property
    def storage_words(self) -> int:
        return self.n * self.n

    def address(self, i: int, j: int) -> int:
        if not self.stores(i, j):
            raise LayoutError(f"({i},{j}) outside {self.n}x{self.n} matrix")
        return i * self.n + j

    def intervals(self, r0: int, r1: int, c0: int, c1: int) -> IntervalSet:
        self._check_rect(r0, r1, c0, c1)
        if r1 <= r0 or c1 <= c0:
            return IntervalSet()
        if c0 == 0 and c1 == self.n:
            return IntervalSet.single(r0 * self.n, r1 * self.n)
        if fastpath_enabled():
            # transposed geometry: rows are the strided "columns"
            return IntervalSet.from_strided((c0, c1), (r0, r1), self.n)
        n = self.n
        return IntervalSet(
            merge_intervals(
                (r * n + c0, r * n + c1) for r in range(r0, r1)
            )
        )
